//! End-to-end trace replay: a workload exported to CSV and re-imported
//! must drive the platform to bit-identical results — the guarantee
//! that recorded traces are a faithful interchange format.

use df3::df3_core::{Platform, PlatformConfig};
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::dcc::{boinc_jobs, BoincConfig};
use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
use df3::workloads::traces::{from_csv, to_csv};
use df3::workloads::Flow;

#[test]
fn replayed_trace_reproduces_the_run_exactly() {
    let span = SimDuration::from_hours(2);
    let streams = RngStreams::new(2026);
    let original = location_service_jobs(
        LocationServiceConfig::map_serving(Flow::EdgeIndirect),
        span,
        &streams,
        0,
    )
    .merge(boinc_jobs(
        BoincConfig::standard(),
        span,
        &streams,
        1_000_000,
    ));

    let replayed = from_csv(&to_csv(&original)).expect("roundtrip");

    let mut cfg = PlatformConfig::small_winter();
    cfg.horizon = span;
    let a = Platform::new(cfg.clone()).run(&original);
    let b = Platform::new(cfg).run(&replayed);

    assert_eq!(a.events, b.events, "event counts must match");
    assert_eq!(a.stats.edge_completed.get(), b.stats.edge_completed.get());
    assert_eq!(a.stats.dcc_completed.get(), b.stats.dcc_completed.get());
    assert_eq!(
        a.stats.edge_deadline_met.get(),
        b.stats.edge_deadline_met.get()
    );
    // Response distributions are identical except for sub-microsecond
    // rounding of arrivals in the CSV (6 decimal places = exact µs).
    assert!(
        (a.stats.edge_response_ms.p99() - b.stats.edge_response_ms.p99()).abs() < 0.1,
        "p99 {} vs {}",
        a.stats.edge_response_ms.p99(),
        b.stats.edge_response_ms.p99()
    );
    assert_eq!(a.stats.df_total_kwh, b.stats.df_total_kwh);
}

#[test]
fn header_is_stable_public_api() {
    // Downstream tooling parses this header; changing it is a breaking
    // change and must be deliberate.
    assert_eq!(
        df3::workloads::traces::HEADER,
        "id,flow,arrival_s,work_gops,cores,deadline_ms,input_bytes,output_bytes,org"
    );
}
