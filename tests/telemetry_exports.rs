//! Property and golden tests on the telemetry exporters (PR 4).
//!
//! The flight recorder's contract is twofold: **inert** (an enabled
//! recorder never perturbs the simulation — no RNG draws, no model
//! state) and **reproducible** (identical seeded runs render
//! byte-identical export documents). On top of that, each exporter has
//! a shape contract: JSONL lines all parse and cover the golden record
//! schema, the Chrome trace is balanced and time-ordered, and every
//! Prometheus sample parses with coherent cumulative buckets.

use df3::df3_core::report::{ExportOptions, RunReport, WATCHDOGS};
use df3::df3_core::{Platform, PlatformConfig, PlatformOutcome};
use df3::simcore::telemetry::export::json;
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
use df3::workloads::Flow;
use proptest::prelude::*;

fn tiny_config(hours: i64, seed: u64, telemetry: bool) -> PlatformConfig {
    let mut cfg = PlatformConfig {
        n_clusters: 2,
        workers_per_cluster: 3,
        horizon: SimDuration::from_hours(hours),
        datacenter_cores: 32,
        seed,
        ..PlatformConfig::small_winter()
    };
    cfg.telemetry.enabled = telemetry;
    cfg
}

fn run_tiny(hours: i64, seed: u64, telemetry: bool) -> (PlatformConfig, PlatformOutcome) {
    let cfg = tiny_config(hours, seed, telemetry);
    let jobs = location_service_jobs(
        LocationServiceConfig::map_serving(Flow::EdgeIndirect),
        cfg.horizon,
        &RngStreams::new(seed),
        0,
    );
    let out = Platform::new(cfg.clone()).run(&jobs);
    (cfg, out)
}

fn fingerprint(out: &PlatformOutcome) -> (u64, u64, u64, u64, u64, u64) {
    let s = &out.stats;
    (
        out.events,
        s.edge_completed.get(),
        s.edge_terminal(),
        s.df_total_kwh.to_bits(),
        s.room_temp_c.summary().mean().to_bits(),
        s.edge_response_ms.p99().to_bits(),
    )
}

/// Pull every `"ts":<number>` out of a Chrome trace, in document order.
fn trace_timestamps(trace: &str) -> Vec<f64> {
    let mut ts = Vec::new();
    let mut rest = trace;
    while let Some(i) = rest.find("\"ts\":") {
        rest = &rest[i + 5..];
        let end = rest.find([',', '}']).expect("ts value terminated");
        ts.push(rest[..end].trim().parse::<f64>().expect("ts is a number"));
    }
    ts
}

#[test]
fn jsonl_golden_schema_is_stable() {
    let (cfg, out) = run_tiny(3, 0x7E1E, true);
    let report = RunReport::new("tiny", &cfg, &out);
    let doc = report.jsonl(&ExportOptions::full());
    json::validate_lines(&doc).expect("all lines parse");

    // Golden schema: the record kinds and their discriminating keys.
    // Extending the report is fine; silently dropping or renaming a
    // record kind is a breaking change this test pins down.
    let golden = [
        ("\"record\":\"meta\"", "\"peak_policy\":"),
        ("\"record\":\"meta\"", "\"seed\":"),
        ("\"record\":\"meta\"", "\"link_faults\":"),
        ("\"record\":\"counter\"", "\"name\":\"edge_arrived\""),
        (
            "\"record\":\"counter\"",
            "\"name\":\"fault_timeline_dropped\"",
        ),
        ("\"record\":\"gauge\"", "\"name\":\"pue\""),
        ("\"record\":\"gauge\"", "\"name\":\"edge_attainment\""),
        ("\"record\":\"watchdog\"", "\"trips\":"),
        ("\"record\":\"phase\"", "\"total_ns\":"),
        ("\"record\":\"telemetry\"", "\"dropped\":"),
    ];
    for (kind, key) in golden {
        assert!(
            doc.lines().any(|l| l.contains(kind) && l.contains(key)),
            "no {kind} line carrying {key}"
        );
    }
    // Every watchdog appears exactly once.
    for (name, _) in WATCHDOGS {
        assert_eq!(
            doc.lines()
                .filter(|l| l.contains("\"record\":\"watchdog\"")
                    && l.contains(&format!("\"name\":\"{name}\"")))
                .count(),
            1,
            "watchdog {name} not reported exactly once"
        );
    }
}

#[test]
fn chrome_trace_is_balanced_and_time_ordered() {
    let (cfg, out) = run_tiny(3, 0x7E1E, true);
    let report = RunReport::new("tiny", &cfg, &out);
    let trace = report.chrome_trace_json();
    json::validate(&trace).expect("trace is valid JSON");
    let b = trace.matches("\"ph\":\"B\"").count();
    let e = trace.matches("\"ph\":\"E\"").count();
    assert_eq!(b, e, "unbalanced B/E span events");
    assert!(b > 0, "expected job spans in a 3 h run");
    let ts = trace_timestamps(&trace);
    assert!(!ts.is_empty());
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "trace timestamps not monotonically non-decreasing"
    );
    assert!(ts.iter().all(|&t| t >= 0.0), "negative sim-time timestamp");
}

#[test]
fn prometheus_snapshot_parses_with_coherent_buckets() {
    let (cfg, out) = run_tiny(3, 0x7E1E, true);
    let report = RunReport::new("tiny", &cfg, &out);
    let prom = report.prometheus();
    let mut last_bucket: Option<u64> = None;
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            last_bucket = None;
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value: {line}"
        );
        if name.contains("_bucket{le=") {
            let count: u64 = value.parse().expect("bucket counts are integers");
            if let Some(prev) = last_bucket {
                assert!(
                    count >= prev,
                    "cumulative bucket decreased: {line} after {prev}"
                );
            }
            last_bucket = Some(count);
        } else {
            last_bucket = None;
        }
    }
    assert!(prom.contains("df3_edge_response_ms_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("# TYPE df3_pue gauge"));
}

proptest! {
    /// Telemetry is provably inert: an enabled recorder + profiler
    /// never draws RNG and never touches model state, so the enabled
    /// and disabled runs agree bit for bit on every sim statistic.
    #[test]
    fn enabled_telemetry_never_perturbs_the_run(seed in 1u64..1_000_000) {
        let (_, off) = run_tiny(1, seed, false);
        let (_, on) = run_tiny(1, seed, true);
        prop_assert_eq!(fingerprint(&off), fingerprint(&on));
        prop_assert!(off.telemetry.recorder.is_empty());
        prop_assert!(!on.telemetry.recorder.is_empty());
    }

    /// Identical seeds render byte-identical deterministic exports:
    /// recorder tag interning, ring order, and every formatter are
    /// reproducible end to end.
    #[test]
    fn identical_seeds_render_byte_identical_exports(seed in 1u64..1_000_000) {
        let (cfg_a, out_a) = run_tiny(1, seed, true);
        let (cfg_b, out_b) = run_tiny(1, seed, true);
        let a = RunReport::new("p", &cfg_a, &out_a);
        let b = RunReport::new("p", &cfg_b, &out_b);
        let opts = ExportOptions::deterministic();
        prop_assert_eq!(a.jsonl(&opts), b.jsonl(&opts));
        prop_assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        prop_assert_eq!(a.prometheus(), b.prometheus());
    }
}
