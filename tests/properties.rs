//! Workspace-level property tests on cross-crate invariants.

use df3::df3_core::regulator::HeatRegulator;
use df3::dfhw::dvfs::DvfsLadder;
use df3::sched::fairness::jain_index;
use df3::simcore::metrics::{Histogram, Summary};
use df3::simcore::time::{SimDuration, SimTime};
use df3::thermal::room::{Room, RoomParams};
use proptest::prelude::*;

proptest! {
    /// The regulator never produces more heat than requested (overshoot
    /// is discomfort) and never budgets more cores than exist.
    #[test]
    fn regulator_never_overshoots(
        demand in 0.0f64..=1.0,
        backlog in 0usize..64,
    ) {
        let reg = HeatRegulator::for_qrad();
        let ladder = DvfsLadder::desktop_i7();
        let d = reg.decide(&ladder, demand, backlog);
        prop_assert!(d.usable_cores <= 16);
        prop_assert!(d.total_heat_w() <= demand * 500.0 + 1e-9);
        prop_assert!(d.heat_budget_w <= 500.0 + 1e-9);
        if !d.powered {
            prop_assert_eq!(d.usable_cores, 0);
        }
    }

    /// A room's temperature always moves monotonically toward its
    /// equilibrium, never past it, for any step size.
    #[test]
    fn room_never_overshoots_equilibrium(
        start in -5.0f64..35.0,
        outdoor in -15.0f64..30.0,
        heater in 0.0f64..1500.0,
        hours in 1i64..200,
    ) {
        let mut room = Room::new(RoomParams::typical_apartment_room(), start);
        let eq = room.equilibrium_c(outdoor, heater);
        let before = room.temperature_c();
        room.step(SimDuration::from_hours(hours), outdoor, heater);
        let after = room.temperature_c();
        if before <= eq {
            prop_assert!(after >= before - 1e-9 && after <= eq + 1e-9);
        } else {
            prop_assert!(after <= before + 1e-9 && after >= eq - 1e-9);
        }
    }

    /// Histogram quantiles are monotone and bracketed by min/max.
    #[test]
    fn histogram_quantiles_are_monotone(
        values in proptest::collection::vec(0.0f64..1000.0, 10..300),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let mut h = Histogram::new(0.0, 1000.0, 200);
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = qs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantiles: Vec<f64> = sorted.iter().map(|&q| h.quantile(q)).collect();
        for w in quantiles.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
        prop_assert!(h.quantile(1.0) <= h.max() + 5.0 + 1e-9); // ≤ one bin width past max
        prop_assert!(h.quantile(0.0) >= 0.0);
    }

    /// Summary::merge is associative-equivalent to sequential observation.
    #[test]
    fn summary_merge_associativity(
        a in proptest::collection::vec(-100.0f64..100.0, 1..50),
        b in proptest::collection::vec(-100.0f64..100.0, 1..50),
        c in proptest::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let fold = |xs: &[f64]| {
            let mut s = Summary::new();
            for &x in xs {
                s.observe(x);
            }
            s
        };
        let mut left = fold(&a);
        left.merge(&fold(&b));
        left.merge(&fold(&c));
        let mut all = Vec::new();
        all.extend(&a);
        all.extend(&b);
        all.extend(&c);
        let whole = fold(&all);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
        prop_assert_eq!(left.count(), whole.count());
    }

    /// Jain's index is scale-invariant and bounded in [1/n, 1].
    #[test]
    fn jain_index_bounds_and_scale_invariance(
        xs in proptest::collection::vec(0.01f64..100.0, 1..20),
        k in 0.1f64..10.0,
    ) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9 && j <= 1.0 + 1e-9);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-9);
    }

    /// Deadline checks are consistent: a response at exactly the
    /// deadline is met; one microsecond later is missed.
    #[test]
    fn deadline_boundary(arrival_s in 0i64..10_000, deadline_ms in 1i64..100_000) {
        use df3::workloads::{Flow, Job, JobId};
        let job = Job {
            id: JobId(1),
            flow: Flow::EdgeDirect,
            arrival: SimTime::from_secs(arrival_s),
            work_gops: 1.0,
            cores: 1,
            deadline: Some(SimDuration::from_millis(deadline_ms)),
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        };
        let d = job.absolute_deadline().unwrap();
        prop_assert!(job.meets_deadline(d));
        prop_assert!(!job.meets_deadline(d + SimDuration::MICROSECOND));
    }
}
