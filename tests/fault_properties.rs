//! Property tests on the fault-injection engine (PR 3).
//!
//! Three invariants the chaos machinery must hold for *any* plan:
//! exact work conservation (no job silently dropped or invented),
//! bit-identical determinism of repeated runs, and non-perturbation —
//! an inert plan (every window beyond the horizon, recovery disabled)
//! produces bit-identical output to no plan at all.

use df3::df3_core::faults::{FaultPlan, RecoveryPolicy, SensorFaultKind, Window};
use df3::df3_core::{Platform, PlatformConfig, PlatformOutcome};
use df3::dfnet::link::{Degradation, LinkClass};
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
use df3::workloads::job::JobStream;
use df3::workloads::Flow;
use proptest::prelude::*;

/// A deliberately tiny fleet: 2 buildings × 3 Q.rads over a short
/// horizon, so 128 proptest cases stay fast while still exercising
/// churn, outages, spillover and retries.
fn tiny_config(hours: i64, seed: u64) -> PlatformConfig {
    PlatformConfig {
        n_clusters: 2,
        workers_per_cluster: 3,
        horizon: SimDuration::from_hours(hours),
        datacenter_cores: 32,
        seed,
        ..PlatformConfig::small_winter()
    }
}

fn edge_stream(hours: i64, seed: u64) -> JobStream {
    location_service_jobs(
        LocationServiceConfig::map_serving(Flow::EdgeIndirect),
        SimDuration::from_hours(hours),
        &RngStreams::new(seed),
        0,
    )
}

/// Build a random-but-valid plan from proptest draws. `mask` switches
/// each injector on or off, so the suite covers every combination from
/// the empty plan to everything-at-once.
#[allow(clippy::too_many_arguments)]
fn random_plan(
    mask: u32,
    mtbf_mins: i64,
    repair_s: i64,
    out_start_h: i64,
    out_len_h: i64,
    stuck_c: f64,
    recovery_on: bool,
    hours: i64,
) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if mask & 1 != 0 {
        plan = plan.with_churn(
            SimDuration::from_secs(mtbf_mins * 60),
            SimDuration::from_secs(repair_s),
        );
    }
    if mask & 2 != 0 {
        let end = (out_start_h + out_len_h).min(hours);
        plan = plan.with_cluster_outage(1, Window::from_hours(out_start_h, end));
    }
    if mask & 4 != 0 {
        plan = plan.with_master_outage(Window::from_hours(0, 1));
    }
    if mask & 8 != 0 {
        plan = plan.with_link_fault(
            LinkClass::Fiber,
            Window::from_hours(0, hours),
            Degradation::brownout(),
            mask & 16 != 0,
        );
    }
    if mask & 32 != 0 {
        plan = plan.with_sensor_fault(
            0,
            None,
            Window::from_hours(0, hours),
            if mask & 64 != 0 {
                SensorFaultKind::StuckAt(stuck_c)
            } else {
                SensorFaultKind::Dropout
            },
        );
    }
    if recovery_on {
        plan = plan.with_recovery(RecoveryPolicy::standard());
    } else {
        plan = plan.with_recovery(RecoveryPolicy::disabled());
    }
    plan
}

fn run_tiny(plan: FaultPlan, hours: i64, seed: u64, roc: bool) -> PlatformOutcome {
    let mut cfg = tiny_config(hours, seed);
    cfg.roc_fallback_direct = roc;
    cfg.faults = plan;
    Platform::new(cfg).run(&edge_stream(hours, seed))
}

/// The full bit-level fingerprint of a run: event count plus every
/// float path that faults could perturb. Two runs are "the same run"
/// iff these match exactly (`==` on f64, no tolerance).
fn fingerprint(out: &PlatformOutcome) -> (u64, u64, u64, u64, f64, f64, f64, f64) {
    let s = &out.stats;
    (
        out.events,
        s.edge_completed.get(),
        s.edge_terminal(),
        s.dcc_completed.get(),
        s.df_total_kwh,
        s.room_temp_c.summary().mean(),
        s.edge_response_ms.p99(),
        s.wasted_core_s,
    )
}

proptest! {
    /// Whatever the plan, the job ledger closes exactly: every arrival
    /// is completed, rejected, expired, abandoned, or still in flight.
    /// Nothing is lost, nothing is double-counted.
    #[test]
    fn conservation_holds_under_random_fault_plans(
        mask in 0u32..128,
        mtbf_mins in 20i64..120,
        repair_s in 60i64..1800,
        out_start_h in 0i64..2,
        out_len_h in 1i64..2,
        stuck_c in 0.0f64..40.0,
        recovery_sel in 0u32..2,
    ) {
        let hours = 2;
        let plan = random_plan(
            mask, mtbf_mins, repair_s, out_start_h, out_len_h,
            stuck_c, recovery_sel == 1, hours,
        );
        let out = run_tiny(plan, hours, 0xFA01, true);
        let s = &out.stats;
        prop_assert_eq!(
            s.edge_arrived.get(),
            s.edge_terminal() + s.edge_in_flight_end
        );
        prop_assert_eq!(
            s.dcc_arrived.get(),
            s.dcc_completed.get() + s.dcc_rejected.get() + s.dcc_in_flight_end
        );
        let att = s.edge_attainment();
        prop_assert!((0.0..=1.0).contains(&att), "attainment {}", att);
        prop_assert!(s.wasted_core_s >= 0.0);
    }

    /// Two runs of the same seeded config + plan are bit-identical —
    /// the whole point of *deterministic* fault injection.
    #[test]
    fn seeded_chaos_runs_are_bit_identical(
        mask in 0u32..128,
        mtbf_mins in 20i64..120,
        seed in 1u64..1_000_000,
    ) {
        let hours = 1;
        let plan = random_plan(mask, mtbf_mins, 300, 0, 1, 25.0, true, hours);
        let a = run_tiny(plan.clone(), hours, seed, false);
        let b = run_tiny(plan, hours, seed, false);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// A plan whose every window lies beyond the horizon (and whose
    /// recovery layer is disabled) must not perturb the simulation at
    /// all: same events, same floats, bit for bit. Fault RNG draws on
    /// dedicated streams, so merely *carrying* a plan is free.
    #[test]
    fn inert_plans_do_not_perturb_the_run(
        seed in 1u64..1_000_000,
        far_h in 100i64..10_000,
    ) {
        let hours = 1;
        let inert = FaultPlan::none()
            .with_cluster_outage(0, Window::from_hours(far_h, far_h + 1))
            .with_master_outage(Window::from_hours(far_h, far_h + 1))
            .with_link_fault(
                LinkClass::Wan,
                Window::from_hours(far_h, far_h + 1),
                Degradation::brownout(),
                true,
            )
            .with_sensor_fault(
                1,
                Some(0),
                Window::from_hours(far_h, far_h + 1),
                SensorFaultKind::Dropout,
            )
            .with_recovery(RecoveryPolicy::disabled());
        let base = run_tiny(FaultPlan::none(), hours, seed, false);
        let carried = run_tiny(inert, hours, seed, false);
        prop_assert_eq!(fingerprint(&base), fingerprint(&carried));
    }
}
