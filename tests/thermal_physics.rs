//! Cross-crate physics checks: energy conservation through the
//! worker's thermal loop, and comfort equivalence between a Q.rad and
//! a resistive heater (the paper's Figure 4 parity argument).

use df3::baselines::electric_heater::{simulate, ElectricHeater};
use df3::df3_core::regulator::HeatRegulator;
use df3::df3_core::worker::WorkerSim;
use df3::dfhw::dvfs::DvfsLadder;
use df3::simcore::time::{Calendar, SimDuration, SimTime};
use df3::simcore::RngStreams;
use df3::thermal::room::{Room, RoomParams};
use df3::thermal::thermostat::{ModulatingThermostat, SetpointSchedule};
use df3::thermal::weather::{Weather, WeatherConfig};
use std::sync::Arc;

fn winter_weather(days: i64, seed: u64) -> Weather {
    Weather::generate(
        WeatherConfig::paris(Calendar::NOVEMBER_EPOCH),
        SimDuration::from_days(days),
        &RngStreams::new(seed),
    )
}

#[test]
fn worker_energy_equals_integrated_power() {
    let weather = winter_weather(7, 21);
    let mut w = WorkerSim::new(
        0,
        Arc::new(DvfsLadder::desktop_i7()),
        HeatRegulator::for_qrad(),
        ModulatingThermostat::new(SetpointSchedule::constant(20.0), 1.5),
    );
    let mut room = Room::new(RoomParams::typical_apartment_room(), 17.0);
    let step = SimDuration::from_secs(600);
    let mut t = SimTime::ZERO;
    let mut manual_j = 0.0;
    while t < SimTime::ZERO + SimDuration::from_days(7) {
        // Power over [t, t+step) is what control_tick(t+step) integrates.
        w.control_tick(t, weather.outdoor_c(t), 100, &mut room);
        manual_j += w.power_w() * step.as_secs_f64();
        t += step;
    }
    w.control_tick(t, weather.outdoor_c(t), 100, &mut room);
    let meter_kwh = w.energy_kwh();
    let manual_kwh = manual_j / 3.6e6;
    assert!(
        (meter_kwh - manual_kwh).abs() / manual_kwh < 0.01,
        "meter {meter_kwh} vs integral {manual_kwh}"
    );
    assert!(meter_kwh > 5.0, "a winter week heats: {meter_kwh} kWh");
}

#[test]
fn qrad_and_convector_reach_the_same_comfort() {
    // The §III-A claim behind Figure 4: DF heating ≈ electric heating.
    let weather = winter_weather(14, 22);
    let schedule = SetpointSchedule::constant(20.0);

    // Q.rad loop.
    let mut w = WorkerSim::new(
        0,
        Arc::new(DvfsLadder::desktop_i7()),
        HeatRegulator::for_qrad(),
        ModulatingThermostat::new(schedule, 1.5),
    );
    let mut room = Room::new(RoomParams::typical_apartment_room(), 17.0);
    let step = SimDuration::from_secs(600);
    let mut t = SimTime::ZERO;
    let mut qrad_mean = 0.0;
    let mut n = 0;
    while t < SimTime::ZERO + SimDuration::from_days(14) {
        w.control_tick(t, weather.outdoor_c(t), 100, &mut room);
        qrad_mean += room.temperature_c();
        n += 1;
        t += step;
    }
    qrad_mean /= n as f64;

    // Convector in the same weather.
    let conv = simulate(
        ElectricHeater::convector_1kw(),
        Room::new(RoomParams::typical_apartment_room(), 17.0),
        schedule,
        &weather,
        SimDuration::from_days(14),
        step,
    );

    assert!(
        (qrad_mean - conv.mean_temp_c).abs() < 1.5,
        "Q.rad mean {qrad_mean} vs convector {}",
        conv.mean_temp_c
    );
    assert!((18.0..21.0).contains(&qrad_mean));
}

#[test]
fn colder_weather_draws_more_energy() {
    let paris = winter_weather(7, 23);
    let stockholm = Weather::generate(
        WeatherConfig::stockholm(Calendar::NOVEMBER_EPOCH),
        SimDuration::from_days(7),
        &RngStreams::new(23),
    );
    let run = |weather: &Weather| {
        let mut w = WorkerSim::new(
            0,
            Arc::new(DvfsLadder::desktop_i7()),
            HeatRegulator::for_qrad(),
            ModulatingThermostat::new(SetpointSchedule::constant(20.0), 1.5),
        );
        let mut room = Room::new(RoomParams::typical_apartment_room(), 17.0);
        let step = SimDuration::from_secs(600);
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + SimDuration::from_days(7) {
            w.control_tick(t, weather.outdoor_c(t), 100, &mut room);
            t += step;
        }
        w.control_tick(t, weather.outdoor_c(t), 100, &mut room);
        w.energy_kwh()
    };
    let paris_kwh = run(&paris);
    let stockholm_kwh = run(&stockholm);
    assert!(
        stockholm_kwh > paris_kwh,
        "Stockholm {stockholm_kwh} kWh should exceed Paris {paris_kwh} kWh"
    );
}
