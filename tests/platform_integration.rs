//! Cross-crate integration: the full DF3 platform driven by mixed
//! workloads from every generator, checked for accounting invariants.

use df3::df3_core::{ArchClass, Platform, PlatformConfig};
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::alarm::{alarm_jobs, AlarmPipeline};
use df3::workloads::dcc::{boinc_jobs, finance_jobs, BoincConfig, FinanceConfig};
use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
use df3::workloads::job::JobStream;
use df3::workloads::Flow;

fn mixed_workload(hours: i64, seed: u64) -> JobStream {
    let span = SimDuration::from_hours(hours);
    let streams = RngStreams::new(seed);
    let mut jobs = location_service_jobs(
        LocationServiceConfig::map_serving(Flow::EdgeIndirect),
        span,
        &streams,
        0,
    );
    jobs = jobs.merge(location_service_jobs(
        LocationServiceConfig::traffic_estimation(Flow::EdgeDirect),
        span,
        &streams,
        10_000_000,
    ));
    let (alarms, _) = alarm_jobs(
        AlarmPipeline::standard(),
        span,
        &streams,
        0,
        20_000_000,
        Flow::EdgeDirect,
    );
    jobs = jobs.merge(alarms);
    jobs = jobs.merge(boinc_jobs(
        BoincConfig::standard(),
        span,
        &streams,
        30_000_000,
    ));
    jobs.merge(finance_jobs(
        FinanceConfig::bank(),
        span,
        &streams,
        40_000_000,
    ))
}

fn config(hours: i64) -> PlatformConfig {
    let mut cfg = PlatformConfig::small_winter();
    cfg.horizon = SimDuration::from_hours(hours);
    cfg
}

#[test]
fn mixed_flows_coexist_with_high_edge_quality() {
    let jobs = mixed_workload(4, 11);
    let out = Platform::new(config(4)).run(&jobs);
    let s = &out.stats;
    assert!(
        s.edge_completed.get() > 10_000,
        "edge volume: {}",
        s.edge_completed.get()
    );
    assert!(
        s.dcc_completed.get() > 50,
        "dcc volume: {}",
        s.dcc_completed.get()
    );
    assert!(
        s.edge_attainment() > 0.9,
        "edge attainment under mixed load: {}",
        s.edge_attainment()
    );
}

#[test]
fn completions_never_exceed_arrivals() {
    let jobs = mixed_workload(3, 12);
    let arrived_by_horizon = jobs
        .window(
            df3::simcore::time::SimTime::ZERO,
            df3::simcore::time::SimTime::ZERO + SimDuration::from_hours(3),
        )
        .count() as u64;
    let out = Platform::new(config(3)).run(&jobs);
    let s = &out.stats;
    let accounted = s.edge_completed.get()
        + s.edge_rejected.get()
        + s.edge_expired.get()
        + s.dcc_completed.get()
        + s.dcc_rejected.get();
    assert!(
        accounted <= arrived_by_horizon,
        "accounted {accounted} > arrived {arrived_by_horizon}"
    );
    // The vast majority of a feasible load is accounted for by the end.
    assert!(
        accounted as f64 > 0.9 * arrived_by_horizon as f64,
        "accounted {accounted} of {arrived_by_horizon}"
    );
}

#[test]
fn determinism_across_full_stack() {
    let jobs = mixed_workload(2, 13);
    let a = Platform::new(config(2)).run(&jobs);
    let b = Platform::new(config(2)).run(&jobs);
    assert_eq!(a.events, b.events);
    assert_eq!(a.stats.edge_completed.get(), b.stats.edge_completed.get());
    assert_eq!(a.stats.dcc_completed.get(), b.stats.dcc_completed.get());
    assert_eq!(a.stats.df_total_kwh, b.stats.df_total_kwh);
    assert_eq!(
        a.stats.edge_response_ms.p99(),
        b.stats.edge_response_ms.p99()
    );
}

#[test]
fn energy_splits_are_consistent() {
    let jobs = mixed_workload(3, 14);
    let out = Platform::new(config(3)).run(&jobs);
    let s = &out.stats;
    assert!(s.df_total_kwh > 0.0);
    assert!(
        s.df_compute_kwh <= s.df_total_kwh + 1e-9,
        "compute {} > total {}",
        s.df_compute_kwh,
        s.df_total_kwh
    );
    assert!(s.pue() >= 1.0);
    assert!(s.dc_facility_kwh >= s.dc_it_kwh);
}

#[test]
fn architecture_b_isolates_edge_capacity() {
    let jobs = mixed_workload(3, 15);
    let mut cfg_b = config(3);
    cfg_b.arch = ArchClass::DedicatedEdge {
        edge_workers: 6,
        vpn_overhead: SimDuration::from_micros(400),
    };
    let out = Platform::new(cfg_b).run(&jobs);
    assert!(
        out.stats.edge_attainment() > 0.9,
        "B attainment {}",
        out.stats.edge_attainment()
    );
    // Edge work must have been served despite the partition.
    assert!(out.stats.edge_work_gops > 0.0);
    assert!(out.stats.dcc_work_gops > 0.0);
}

#[test]
fn org_accounting_covers_all_flows() {
    let jobs = mixed_workload(2, 16);
    let out = Platform::new(config(2)).run(&jobs);
    let total_served: f64 = out.stats.org_served_gops.values().sum();
    let expected = out.stats.edge_work_gops + out.stats.dcc_work_gops;
    assert!(
        (total_served - expected).abs() < 1e-6 * expected.max(1.0),
        "per-org sum {total_served} vs flow sum {expected}"
    );
    // Orgs from multiple generators are present.
    assert!(out.stats.org_served_gops.len() >= 3);
}

#[test]
fn worker_failures_degrade_gracefully() {
    use df3::simcore::time::SimTime;
    let jobs = mixed_workload(4, 17);
    // Aggressive failure injection: MTBF of 12 h per worker with 1 h
    // repairs — on a 64-worker fleet that is ~20 failures in 4 h.
    let mut cfg = config(4);
    cfg.worker_mtbf = Some(SimDuration::from_hours(12));
    cfg.worker_repair_time = SimDuration::from_hours(1);
    let out = Platform::new(cfg).run(&jobs);
    let s = &out.stats;
    assert!(
        s.worker_failures.get() >= 5,
        "failures should occur: {}",
        s.worker_failures.get()
    );
    // Orphaned work is requeued, not lost: completion accounting still
    // covers the large majority of the load.
    let arrived = jobs
        .window(SimTime::ZERO, SimTime::ZERO + SimDuration::from_hours(4))
        .count() as u64;
    let accounted = s.edge_completed.get()
        + s.edge_rejected.get()
        + s.edge_expired.get()
        + s.dcc_completed.get()
        + s.dcc_rejected.get();
    assert!(
        accounted as f64 > 0.85 * arrived as f64,
        "accounted {accounted} of {arrived} despite failures"
    );
    // Edge quality dips but does not collapse (spare workers absorb it).
    assert!(
        s.edge_attainment() > 0.8,
        "attainment under churn: {}",
        s.edge_attainment()
    );
}

#[test]
fn failure_free_config_reports_zero_failures() {
    let jobs = mixed_workload(2, 18);
    let out = Platform::new(config(2)).run(&jobs);
    assert_eq!(out.stats.worker_failures.get(), 0);
}
