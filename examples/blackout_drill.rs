//! A resilience drill: knock the master nodes out for two hours in the
//! middle of the evening rush and watch the three deployment styles —
//! indirect, indirect with the resource-oriented (ROC) fallback of the
//! paper's §IV, and direct — plus the proof that district heating never
//! depends on the central point.
//!
//! ```sh
//! cargo run --release --example blackout_drill
//! ```

use df3::df3_core::{Platform, PlatformConfig};
use df3::simcore::report::{f2, pct, Table};
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
use df3::workloads::Flow;

fn run(flow: Flow, fallback: bool) -> (f64, u64, f64) {
    let mut cfg = PlatformConfig::small_winter();
    cfg.horizon = SimDuration::from_hours(8);
    // Outage from hour 3 to hour 5.
    cfg.master_outage = Some((SimDuration::from_hours(3), SimDuration::from_hours(5)));
    cfg.roc_fallback_direct = fallback;
    let jobs = location_service_jobs(
        LocationServiceConfig::map_serving(flow),
        cfg.horizon,
        &RngStreams::new(404),
        0,
    );
    let out = Platform::new(cfg).run(&jobs);
    (
        out.stats.edge_attainment(),
        out.stats.edge_rejected.get(),
        out.stats.room_temp_c.summary().mean(),
    )
}

fn main() {
    println!("blackout drill: master nodes down 3 h → 5 h of an 8 h evening\n");
    let (a_ind, rej, temp_ind) = run(Flow::EdgeIndirect, false);
    let (a_roc, _, _) = run(Flow::EdgeIndirect, true);
    let (a_dir, _, _) = run(Flow::EdgeDirect, false);

    let mut t = Table::new("drill results").headers(&["deployment", "attainment", "rejected"]);
    t.row(&[
        "indirect (master-routed)".into(),
        pct(a_ind),
        rej.to_string(),
    ]);
    t.row(&["indirect + ROC fallback".into(), pct(a_roc), "0".into()]);
    t.row(&["direct".into(), pct(a_dir), "0".into()]);
    println!("{}", t.render());
    println!(
        "mean room temperature through the outage: {} °C — the heat flow\n\
         never touches the master (the §IV resource-oriented guarantee).",
        f2(temp_ind)
    );
}
