//! A district-heating operator's year: synthesise a housing stock's
//! heat demand, recover its thermosensitivity, derive the smart-grid
//! manager's monthly capacity offers, and price them — the seasonal
//! economics of the paper's §IV.
//!
//! ```sh
//! cargo run --release --example district_heating_year
//! ```

use df3::df3_core::smartgrid::{monthly_offers, seasonality_ratio, FleetProfile};
use df3::economics::pricing::CapacityPricer;
use df3::predict::thermo;
use df3::simcore::report::{f2, Table};
use df3::simcore::time::{Calendar, SimDuration};
use df3::simcore::RngStreams;
use df3::thermal::demand::{generate_trace, DemandModel};
use df3::thermal::weather::{Weather, WeatherConfig};

fn main() {
    let streams = RngStreams::new(365);
    let cal = Calendar::JANUARY_EPOCH;
    let weather = Weather::generate(WeatherConfig::paris(cal), SimDuration::YEAR, &streams);

    // 800 homes heated by Q.rads.
    let model = DemandModel::residential(800);
    let trace = generate_trace(model, &weather, SimDuration::HOUR, &streams);
    println!(
        "generated {} hourly demand samples for 800 homes",
        trace.len()
    );

    // Recover thermosensitivity from evening samples (§III-C).
    let samples: Vec<(f64, f64)> = trace
        .iter()
        .filter(|s| (18.0..22.0).contains(&s.t.hour_of_day()))
        .map(|s| (s.outdoor_c, s.demand_w))
        .collect();
    let fit = thermo::fit(&samples, (10.0, 20.0));
    println!(
        "thermosensitivity: {:.0} W/K below {:.1} °C (r² {:.3})\n",
        fit.slope_w_per_k, fit.base_c, fit.r2
    );

    // Monthly mean outdoor temperatures from the generated weather.
    let mut monthly_outdoor = [0.0f64; 12];
    for (m, slot) in monthly_outdoor.iter_mut().enumerate() {
        let a = cal.month_start(m as u32);
        let b = cal.month_start(m as u32 + 1);
        *slot = weather.mean_outdoor_c(a, b - SimDuration::HOUR);
    }

    // Smart-grid offers + pricing for a fleet sized to the stock.
    let fleet = FleetProfile::qrad_fleet(800);
    let offers = monthly_offers(&fit, &monthly_outdoor, fleet);
    let pricer = CapacityPricer::standard();
    let demand_core_h = 2_000_000.0; // steady customer demand per month

    let mut t = Table::new("district heating year — capacity offers and prices").headers(&[
        "month",
        "outdoor (°C)",
        "duty",
        "offer (core-h)",
        "price (€/core-h)",
    ]);
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    for (m, offer) in offers.iter().enumerate() {
        let quote = pricer.quote(offer.core_hours, demand_core_h);
        t.row(&[
            MONTHS[m].into(),
            f2(monthly_outdoor[m]),
            f2(offer.duty),
            f2(offer.core_hours),
            format!("{:.4}", quote.price_eur_core_h),
        ]);
    }
    println!("{}", t.render());
    println!(
        "winter/summer capacity ratio: {:.1}×",
        seasonality_ratio(&offers)
    );
}
