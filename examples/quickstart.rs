//! Quickstart: stand up a small DF3 deployment and push a morning of
//! edge traffic through it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use df3::df3_core::{Platform, PlatformConfig};
use df3::simcore::report::{f2, pct, Table};
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
use df3::workloads::Flow;

fn main() {
    // Four buildings, 16 Q.rads each, winter weather, hybrid peak policy.
    let mut config = PlatformConfig::small_winter();
    config.horizon = SimDuration::from_hours(8);

    // City map-serving requests, routed through each cluster's master
    // node (the "indirect" local flow of the paper's §II-C).
    let jobs = location_service_jobs(
        LocationServiceConfig::map_serving(Flow::EdgeIndirect),
        config.horizon,
        &RngStreams::new(7),
        0,
    );
    println!(
        "running {} edge requests through {} DF cores for {}…",
        jobs.len(),
        config.total_df_cores(),
        config.horizon
    );

    let outcome = Platform::new(config).run(&jobs);
    let s = &outcome.stats;

    let mut t = Table::new("quickstart results").headers(&["metric", "value"]);
    t.row(&[
        "edge requests completed".into(),
        s.edge_completed.get().to_string(),
    ]);
    t.row(&["deadline attainment".into(), pct(s.edge_attainment())]);
    t.row(&["response p50 (ms)".into(), f2(s.edge_response_ms.p50())]);
    t.row(&["response p99 (ms)".into(), f2(s.edge_response_ms.p99())]);
    t.row(&[
        "mean room temperature (°C)".into(),
        f2(s.room_temp_c.summary().mean()),
    ]);
    t.row(&["fleet energy (kWh)".into(), f2(s.df_total_kwh)]);
    t.row(&["simulation events".into(), outcome.events.to_string()]);
    println!("{}", t.render());
}
