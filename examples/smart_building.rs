//! A smart building on DF3: Q.rads heat the rooms while serving two
//! in-situ edge workloads — audio alarm detection (ref [11]) and an
//! HVAC sense-compute-actuate loop — against a background of cloud
//! rendering work.
//!
//! ```sh
//! cargo run --release --example smart_building
//! ```

use df3::df3_core::{ArchClass, Platform, PlatformConfig};
use df3::simcore::report::{f2, pct, Table};
use df3::simcore::time::SimDuration;
use df3::simcore::RngStreams;
use df3::workloads::alarm::{alarm_jobs, AlarmPipeline};
use df3::workloads::dcc::{boinc_jobs, BoincConfig};
use df3::workloads::edge::{sense_actuate_jobs, SenseActuateConfig};
use df3::workloads::job::JobStream;
use df3::workloads::Flow;

fn main() {
    let horizon = SimDuration::from_hours(12);
    let streams = RngStreams::new(2018);

    // One building: 16 Q.rads, architecture B — 4 heaters dedicated to
    // edge work inside a VPN, the §III-B class with a QoS guarantee.
    let mut config = PlatformConfig::small_winter();
    config.n_clusters = 1;
    config.workers_per_cluster = 16;
    config.arch = ArchClass::DedicatedEdge {
        edge_workers: 4,
        vpn_overhead: SimDuration::from_micros(400),
    };
    config.horizon = horizon;

    // Workload 1: 8 microphones running alarm detection.
    let pipeline = AlarmPipeline::standard();
    let mut jobs = JobStream::new(vec![]);
    let mut expected_events = 0;
    for mic in 0..8u64 {
        let (s, events) = alarm_jobs(
            pipeline,
            horizon,
            &streams,
            mic,
            mic * 10_000_000,
            Flow::EdgeDirect,
        );
        expected_events += events;
        jobs = jobs.merge(s);
    }

    // Workload 2: 12 HVAC control loops (10 s period).
    for dev in 0..12u64 {
        let s = sense_actuate_jobs(
            SenseActuateConfig::hvac_loop(Flow::EdgeDirect),
            horizon,
            &streams,
            dev,
            100_000_000 + dev * 10_000_000,
        );
        jobs = jobs.merge(s);
    }

    // Background: opportunistic batch compute keeps the heaters warm.
    let boinc = boinc_jobs(BoincConfig::standard(), horizon, &streams, 900_000_000);
    let jobs = jobs.merge(boinc);

    println!(
        "smart building: {} requests over {horizon} ({} alarm events expected)",
        jobs.len(),
        expected_events
    );
    let outcome = Platform::new(config).run(&jobs);
    let s = &outcome.stats;

    let mut t = Table::new("smart building (architecture B)").headers(&["metric", "value"]);
    t.row(&[
        "edge requests completed".into(),
        s.edge_completed.get().to_string(),
    ]);
    t.row(&[
        "edge attainment (500 ms / 10 s budgets)".into(),
        pct(s.edge_attainment()),
    ]);
    t.row(&["edge p99 (ms)".into(), f2(s.edge_response_ms.p99())]);
    t.row(&[
        "DCC tasks completed".into(),
        s.dcc_completed.get().to_string(),
    ]);
    t.row(&[
        "mean room temperature (°C)".into(),
        f2(s.room_temp_c.summary().mean()),
    ]);
    t.row(&["building energy (kWh)".into(), f2(s.df_total_kwh)]);
    t.row(&["of which compute (kWh)".into(), f2(s.df_compute_kwh)]);
    println!("{}", t.render());
}
