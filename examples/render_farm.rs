//! Replay a scaled version of the 2016 Qarnot rendering year (§III:
//! "1100 users … 600,000 images … 11,000,000 hours of computations")
//! through a DF fleet with datacenter overflow.
//!
//! ```sh
//! cargo run --release --example render_farm
//! ```

use df3::df3_core::{Platform, PlatformConfig};
use df3::simcore::report::{f2, pct, Table};
use df3::simcore::time::{Calendar, SimDuration};
use df3::simcore::RngStreams;
use df3::workloads::render::{RenderCalibration, RenderYear};

fn main() {
    let scale = 0.02; // 12 000 images on a proportionally scaled fleet
    let year = RenderYear::generate_with(
        RenderCalibration::qarnot_2016(),
        &RngStreams::new(2016),
        scale,
    );
    println!(
        "rendering year at scale {scale}: {} batches, {} frames, {:.0} CPU-hours",
        year.stream.len(),
        year.total_frames(),
        year.total_cpu_hours()
    );

    let mut config = PlatformConfig::small_winter();
    config.calendar = Calendar::JANUARY_EPOCH;
    config.horizon = SimDuration::YEAR;
    config.workers_per_cluster = 12; // 4 × 12 × 16 = 768 DF cores
    config.control_period = SimDuration::from_secs(1_800);
    config.peak_policy = df3::sched::PeakPolicy::VerticalFirst;
    config.datacenter_cores = 256;

    let outcome = Platform::new(config).run(&year.stream);
    let s = &outcome.stats;

    let mut t = Table::new("render farm year").headers(&["metric", "value"]);
    t.row(&[
        "batches completed".into(),
        s.dcc_completed.get().to_string(),
    ]);
    t.row(&[
        "CPU-hours completed".into(),
        f2(s.dcc_work_gops / 2.4 / 3_600.0),
    ]);
    t.row(&["mean slowdown".into(), f2(s.dcc_slowdown.mean())]);
    t.row(&["datacenter overflow share".into(), pct(s.dc_share())]);
    t.row(&[
        "vertical offloads".into(),
        s.offload_vertical.get().to_string(),
    ]);
    t.row(&["fleet energy (kWh)".into(), f2(s.df_total_kwh)]);
    t.row(&["platform PUE (conservative)".into(), f2(s.pue())]);
    println!("{}", t.render());

    // Monthly capacity: the seasonality the render farm rides on.
    let mut months = Table::new("mean usable DF cores by month").headers(&["month", "cores"]);
    for m in s
        .usable_cores
        .monthly(Calendar::JANUARY_EPOCH)
        .iter()
        .take(12)
    {
        months.row(&[m.month_name.into(), f2(m.stats.mean())]);
    }
    println!("{}", months.render());
}
