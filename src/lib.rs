//! # df3 — Data Furnace in Three Flows
//!
//! A simulation framework reproducing
//! *"How Future Buildings Could Redefine Distributed Computing"*
//! (Ngoko, Sainthérant, Cérin, Trystram — IEEE IPDPS Workshops 2018):
//! one platform servicing **district heating**, **edge computing**, and
//! **distributed cloud computing** from the same fleet of data-furnace
//! servers.
//!
//! This crate is the facade: it re-exports every subsystem crate under
//! one name. See the README for a tour and `DESIGN.md` for the
//! paper-to-module map.
//!
//! ## Quick start
//!
//! ```
//! use df3::df3_core::{Platform, PlatformConfig};
//! use df3::workloads::edge::{location_service_jobs, LocationServiceConfig};
//! use df3::workloads::Flow;
//! use df3::simcore::{RngStreams, time::SimDuration};
//!
//! // A small winter deployment: 4 buildings × 16 Q.rads.
//! let mut config = PlatformConfig::small_winter();
//! config.horizon = SimDuration::from_hours(2);
//!
//! // A city's map-serving edge traffic, routed through master nodes.
//! let jobs = location_service_jobs(
//!     LocationServiceConfig::map_serving(Flow::EdgeIndirect),
//!     config.horizon,
//!     &RngStreams::new(42),
//!     0,
//! );
//!
//! let outcome = Platform::new(config).run(&jobs);
//! assert!(outcome.stats.edge_attainment() > 0.9);
//! ```

pub use baselines;
pub use df3_core;
pub use dfhw;
pub use dfnet;
pub use economics;
pub use predict;
pub use sched;
pub use simcore;
pub use thermal;
pub use workloads;
