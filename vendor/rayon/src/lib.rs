//! Offline vendored subset of the rayon API.
//!
//! Implements exactly the chains this workspace uses —
//! `(0..n).into_par_iter().map(f).collect()` and
//! `slice.par_iter().enumerate().map(f).collect()` — with **real
//! parallelism** over `std::thread::scope` and an atomic work-stealing
//! index, so Monte-Carlo replications and parameter sweeps still fan out
//! across cores. Results are always returned in input order, preserving
//! the determinism guarantees `simcore::runner` documents.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-count override installed by [`set_num_threads`]; 0 = auto
/// (one worker per available core).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the worker count for subsequent parallel calls (0 restores
/// auto). The upstream crate scopes this to a `ThreadPool`; this subset
/// keeps one global knob, which is all the workspace's determinism
/// tests need — results must not depend on the value.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// Dynamic scheduling: each worker claims the next unprocessed index, so
/// heterogeneous per-item costs (e.g. parameter sweeps where load grows
/// with the point) still balance. Falls back to a sequential loop for
/// tiny inputs or single-core hosts.
fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        pinned => pinned,
    }
    .min(n);
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item claimed twice");
                let result = f(item);
                *out[i].lock().unwrap() = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker died before finishing")
        })
        .collect()
}

/// A materialized parallel iterator (items pending fan-out).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }
}

/// The result of `.map(f)`: terminal, consumed by `.collect()`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Entry point for owned collections/ranges: `into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Entry point for borrowed slices: `par_iter()`.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn slice_par_iter_enumerate() {
        let points = [10, 20, 30, 40];
        let v: Vec<(usize, i32)> = points
            .par_iter()
            .enumerate()
            .map(|(i, &p)| (i, p + 1))
            .collect();
        assert_eq!(v, vec![(0, 11), (1, 21), (2, 31), (3, 41)]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let e: Vec<u64> = (0..0u64).into_par_iter().map(|x| x).collect();
        assert!(e.is_empty());
        let s: Vec<u64> = (5..6u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(s, vec![25]);
    }

    #[test]
    fn actually_runs_concurrently_or_at_least_correctly() {
        // Heavier load: results must still come back in order.
        let v: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|i| (0..10_000).fold(i, |a, b| a.wrapping_add(b * i)))
            .collect();
        let w: Vec<u64> = (0..64u64)
            .map(|i| (0..10_000).fold(i, |a, b| a.wrapping_add(b * i)))
            .collect();
        assert_eq!(v, w);
    }
}
