//! Offline vendored no-op serde derives.
//!
//! The workspace derives `Serialize`/`Deserialize` on many model structs
//! but never actually serializes them (there is no serde_json or other
//! format crate in the dependency tree). These derives therefore expand
//! to nothing; they exist so the annotations — including `#[serde(...)]`
//! helper attributes — keep compiling offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
