//! Offline vendored serde facade.
//!
//! Re-exports the no-op derive macros and declares the marker traits so
//! `use serde::{Deserialize, Serialize};` resolves in both the trait and
//! macro namespaces, exactly as with upstream serde. Nothing in this
//! workspace performs actual serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
