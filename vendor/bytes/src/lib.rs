//! Offline vendored subset of the `bytes` crate: an [`Arc`]-backed,
//! cheaply cloneable byte buffer whose [`Bytes::slice`] produces
//! zero-copy views sharing the parent allocation — the property
//! `dfnet::message` relies on for O(fragments) payload fragmentation.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A reference-counted immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view; shares the underlying allocation.
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn as_ptr(&self) -> *const u8 {
        self.data[self.start..self.end].as_ptr()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        v.to_vec().into()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_allocation() {
        let b = Bytes::from((0..100u8).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(&s[..], &(10..20u8).collect::<Vec<u8>>()[..]);
        let base = b.as_ptr() as usize;
        let sp = s.as_ptr() as usize;
        assert_eq!(sp, base + 10);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3]).slice(1..4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }
}
