//! Offline vendored property-testing harness.
//!
//! Implements the `proptest!` / `prop_assert!` / `prop_assert_eq!` macro
//! surface and the range/`collection::vec` strategies this workspace's
//! property tests use. Each property runs [`CASES`] deterministic random
//! cases seeded from the test's name (no time/entropy dependence, so CI
//! failures always reproduce locally). Unlike upstream proptest there is
//! no shrinking: the failing case's inputs are printed instead.

use std::ops::{Range, RangeInclusive};

/// Number of random cases per property.
pub const CASES: u32 = 128;

/// Deterministic splitmix64 generator for test-case inputs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded from the property's name: stable across runs and machines.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // 2^53 grid over [lo, hi]; endpoints reachable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, i64, i32);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and
    /// elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests. Syntax-compatible with upstream proptest's
/// common form:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}; "),*), $(&$arg),*);
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, $crate::CASES, __msg, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure reports the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                __a, __b
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in -3.0f64..7.0,
            n in 1usize..40,
            k in 0.0f64..=1.0,
        ) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..40).contains(&n));
            prop_assert!((0.0..=1.0).contains(&k));
        }

        #[test]
        fn vec_strategy_sizes(
            xs in collection::vec(0.1f64..100.0, 1..40),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            prop_assert!(xs.iter().all(|&v| (0.1..100.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
