//! Offline vendored ChaCha8 RNG.
//!
//! A faithful ChaCha stream cipher core (Bernstein 2008, 8 rounds) driven
//! as a random-number generator: 256-bit seed as the key, 64-bit block
//! counter, zero nonce. Cryptographic-quality diffusion, platform-stable
//! output, `Clone`-able state — the three properties `simcore::rng`'s
//! named-stream design relies on. Bit-streams are pinned by this
//! repository's own tests, not by the upstream `rand_chacha` crate.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const WORDS: usize = 16;

/// The ChaCha8 random-number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    input: [u32; WORDS],
    /// Current keystream block.
    buf: [u32; WORDS],
    /// Next unread word in `buf` (WORDS = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..(ROUNDS / 2) {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(self.input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12-13.
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Full generator state — input block, current keystream block, and
    /// the cursor into it — for external checkpointing. Together with
    /// [`ChaCha8Rng::from_state`] this round-trips a generator at any
    /// position, including mid-block.
    pub fn state(&self) -> ([u32; WORDS], [u32; WORDS], usize) {
        (self.input, self.buf, self.idx)
    }

    /// Rebuild a generator from a [`ChaCha8Rng::state`] triple. An `idx`
    /// past the block end is clamped to "exhausted" (the next draw
    /// refills), which is also what `from_seed` starts with.
    pub fn from_state(input: [u32; WORDS], buf: [u32; WORDS], idx: usize) -> Self {
        ChaCha8Rng {
            input,
            buf,
            idx: idx.min(WORDS),
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut input = [0u32; WORDS];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for i in 0..8 {
            input[4 + i] = u32::from_le_bytes([
                seed[i * 4],
                seed[i * 4 + 1],
                seed[i * 4 + 2],
                seed[i * 4 + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            input,
            buf: [0; WORDS],
            idx: WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([2; 32]);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 2);
    }

    #[test]
    fn stream_continues_across_blocks() {
        // 16 words per block; crossing the boundary must not repeat.
        let mut r = ChaCha8Rng::from_seed([9; 32]);
        let words: Vec<u32> = (0..64).map(|_| r.next_u32()).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 60, "keystream words should not collide");
    }

    #[test]
    fn clone_preserves_position() {
        let mut r = ChaCha8Rng::from_seed([3; 32]);
        for _ in 0..7 {
            r.next_u32();
        }
        let mut c = r.clone();
        for _ in 0..100 {
            assert_eq!(r.next_u64(), c.next_u64());
        }
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many uniform u8s should be near 127.5.
        let mut r = ChaCha8Rng::from_seed([5; 32]);
        let mut buf = [0u8; 4096];
        r.fill_bytes(&mut buf);
        let mean = buf.iter().map(|&b| b as f64).sum::<f64>() / buf.len() as f64;
        assert!((mean - 127.5).abs() < 5.0, "mean {mean}");
    }
}
