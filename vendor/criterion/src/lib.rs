//! Offline vendored micro-benchmark harness, API-compatible with the
//! subset of criterion this workspace uses: `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Two modes, selected the same way upstream criterion does:
//!
//! - **Bench mode** (`cargo bench` passes `--bench`): warm up, then take
//!   timed samples and report median ns/iter with spread.
//! - **Test mode** (`cargo test` runs harness-less bench binaries with no
//!   `--bench` flag): run each benchmark body once so benches can't
//!   bit-rot, without burning CI time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point, one per bench binary.
pub struct Criterion {
    bench_mode: bool,
    /// Substring filters from the command line (criterion convention).
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let bench_mode = args.iter().any(|a| a == "--bench");
        let filters = args.into_iter().filter(|a| !a.starts_with("--")).collect();
        Criterion {
            bench_mode,
            filters,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut b = Bencher {
            bench_mode: self.bench_mode,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.bench_mode {
            b.report(name);
        } else {
            println!("test-mode ok: {name}");
        }
        self
    }

    /// Start a named group; benchmark ids are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (upstream groups also share sampling
/// configuration; here `sample_size` is accepted and ignored since the
/// harness sizes samples by wall-clock budget).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` runs and times the closure.
pub struct Bencher {
    bench_mode: bool,
    /// Per-sample mean ns/iter.
    samples: Vec<f64>,
}

/// Wall-clock budget per benchmark in bench mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);
const TARGET_SAMPLES: usize = 24;

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if !self.bench_mode {
            black_box(f());
            return;
        }
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            iters_done += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / iters_done as f64).max(1.0);
        // Size each sample so TARGET_SAMPLES of them fill the budget.
        let sample_ns = MEASURE_BUDGET.as_nanos() as f64 / TARGET_SAMPLES as f64;
        let iters_per_sample = ((sample_ns / est_ns) as u64).max(1);
        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let lo = s[s.len() / 20];
        let hi = s[s.len() - 1 - s.len() / 20];
        println!("{name:<44} time: [{lo:>12.1} ns {median:>12.1} ns {hi:>12.1} ns] /iter");
    }

    /// Median ns/iter of the collected samples (bench mode only).
    pub fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(s[s.len() / 2])
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            bench_mode: false,
            filters: vec![],
        };
        let mut runs = 0;
        c.bench_function("x", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut b = Bencher {
            bench_mode: true,
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.median_ns().is_some());
    }
}
