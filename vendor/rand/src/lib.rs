//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range`, and `gen_bool`. Sampling algorithms follow the upstream
//! conventions (53-bit mantissa floats, Lemire-style bounded integers)
//! so distributions keep their statistical properties; exact bit-streams
//! are pinned by this repository's own tests, not by upstream.

use std::ops::Range;

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a seed from a single `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift (Lemire) with rejection of the biased zone.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            // Fast path: unbiased without the modulo check.
            return (m >> 64) as u64;
        }
        if low >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Lcg(42);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Lcg(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn bounded_integers_cover_domain() {
        let mut r = Lcg(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
