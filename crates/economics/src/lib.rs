//! # economics — seasonal pricing, tariffs, SLAs, compensation
//!
//! §IV: "data furnace introduces another dimension to classical cloud
//! pricing models: the seasonality. … in winter, the heat demand
//! increases the computing power that is then reduced in the summer.
//! We are convinced that for SLAs designers, data furnace is a field of
//! research that can still lead to very innovative proposals."
//!
//! - [`tariff`]: electricity tariffs (seasonal, peak/off-peak).
//! - [`pricing`]: capacity-indexed DF pricing — the seasonal supply
//!   curve meets a demand curve and clears a price per core-hour.
//! - [`compensation`]: the Qarnot host deal ("the hosts of DF servers
//!   do not pay electricity", §III-C) and what it is worth against a
//!   resistive electric heater.
//! - [`sla`]: availability/deadline SLOs with penalty accounting,
//!   including seasonal capacity commitments.
//! - [`compare`]: total-cost-of-compute comparison between a DF fleet
//!   (capex reuses buildings, no cooling) and a classical datacenter.
//! - [`mining`]: crypto-heater unit economics (§II-B.3/§IV): mining
//!   revenue plus the displaced-heating credit.

pub mod compare;
pub mod compensation;
pub mod mining;
pub mod pricing;
pub mod sla;
pub mod tariff;

pub use pricing::{CapacityPricer, PriceQuote};
pub use sla::{SlaReport, SlaTarget};
pub use tariff::Tariff;
