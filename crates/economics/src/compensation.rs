//! Host compensation.
//!
//! §III-C: "in the Qarnot computing model, the hosts of DF servers do
//! not pay electricity. Consequently, during the winter, these hosts
//! generally keep the same target temperature." The host's gain is the
//! electricity a resistive heater would have drawn to deliver the same
//! heat — which is exactly the DF server's consumption, since both are
//! resistive loads at the wall. The operator's cost is the same energy
//! at the operator's tariff, offset by compute revenue.

use crate::tariff::Tariff;
use serde::{Deserialize, Serialize};
use simcore::time::SimTime;

/// Ledger of one host over an accounting window.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct HostLedger {
    /// Heat delivered to the host, kWh.
    pub heat_kwh: f64,
    /// Electricity the operator paid for, kWh (= heat for DF servers).
    pub electricity_kwh: f64,
    /// What the host would have paid to heat resistively, €.
    pub avoided_heating_cost_eur: f64,
    /// What the operator paid for the electricity, €.
    pub operator_cost_eur: f64,
}

impl HostLedger {
    /// Record one period of DF heating: `kwh` consumed at time `t`,
    /// valued at the host's tariff (avoided cost) and the operator's.
    pub fn record(&mut self, t: SimTime, kwh: f64, host_tariff: &Tariff, op_tariff: &Tariff) {
        assert!(kwh >= 0.0);
        self.heat_kwh += kwh;
        self.electricity_kwh += kwh;
        self.avoided_heating_cost_eur += host_tariff.cost_eur(t, kwh);
        self.operator_cost_eur += op_tariff.cost_eur(t, kwh);
    }

    /// The host's effective subsidy, €.
    pub fn host_gain_eur(&self) -> f64 {
        self.avoided_heating_cost_eur
    }

    /// Operator's net position given compute revenue earned on this
    /// host's server, €.
    pub fn operator_net_eur(&self, compute_revenue_eur: f64) -> f64 {
        compute_revenue_eur - self.operator_cost_eur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn at(day: i64, hour: i64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(day) + SimDuration::from_hours(hour)
    }

    #[test]
    fn host_gain_equals_resistive_heating_bill() {
        let mut l = HostLedger::default();
        let host = Tariff::flat(0.22);
        let op = Tariff::flat(0.15); // operator buys wholesale
        l.record(at(10, 12), 100.0, &host, &op);
        assert!((l.host_gain_eur() - 22.0).abs() < 1e-9);
        assert!((l.operator_cost_eur - 15.0).abs() < 1e-9);
        assert_eq!(l.heat_kwh, 100.0);
    }

    #[test]
    fn operator_profitable_when_compute_revenue_covers_energy() {
        let mut l = HostLedger::default();
        let t = Tariff::flat(0.15);
        l.record(at(10, 12), 360.0, &t, &t); // a winter month of one Q.rad
                                             // 360 kWh ≈ 720 core-hours-at-full-tilt; at 0.10 €/core-h revenue:
        let revenue = 720.0 * 0.10;
        assert!(l.operator_net_eur(revenue) > 0.0);
        // At spot-floor prices the same energy is a loss.
        let cheap_revenue = 720.0 * 0.005;
        assert!(l.operator_net_eur(cheap_revenue) < 0.0);
    }

    #[test]
    fn winter_peak_heating_is_worth_more_to_the_host() {
        let host = Tariff::france();
        let op = Tariff::flat(0.15);
        let mut winter_evening = HostLedger::default();
        let mut summer_noon = HostLedger::default();
        winter_evening.record(at(330, 19), 10.0, &host, &op);
        summer_noon.record(at(150, 12), 10.0, &host, &op);
        assert!(winter_evening.host_gain_eur() > summer_noon.host_gain_eur());
    }
}
