//! Electricity tariffs.

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;

/// A residential/industrial electricity tariff with peak/off-peak hours
/// and a winter surcharge (French EJP/Tempo-style shape).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Tariff {
    /// Base price, €/kWh.
    pub base_eur_kwh: f64,
    /// Multiplier during peak hours.
    pub peak_multiplier: f64,
    /// Peak window start hour (inclusive).
    pub peak_start_h: f64,
    /// Peak window end hour (exclusive).
    pub peak_end_h: f64,
    /// Multiplier applied across the winter months (Nov–Mar).
    pub winter_multiplier: f64,
    /// Day-of-year window considered winter: wraps around new year,
    /// `(start_doy, end_doy)` with start > end meaning a wrap.
    pub winter_window: (u32, u32),
}

impl Tariff {
    /// A France-like tariff: 0.20 €/kWh base, 1.5× on 18–22 h peaks,
    /// 1.2× in winter (Nov 1 – Mar 31).
    pub fn france() -> Self {
        Tariff {
            base_eur_kwh: 0.20,
            peak_multiplier: 1.5,
            peak_start_h: 18.0,
            peak_end_h: 22.0,
            winter_multiplier: 1.2,
            winter_window: (304, 90), // doy 304 (Nov 1) .. doy 90 (Mar 31)
        }
    }

    /// A flat tariff (ablation baseline).
    pub fn flat(eur_kwh: f64) -> Self {
        Tariff {
            base_eur_kwh: eur_kwh,
            peak_multiplier: 1.0,
            peak_start_h: 0.0,
            peak_end_h: 0.0,
            winter_multiplier: 1.0,
            winter_window: (0, 0),
        }
    }

    fn is_winter(&self, t: SimTime) -> bool {
        let (a, b) = self.winter_window;
        if a == b {
            return false;
        }
        let doy = t.day_of_year();
        if a <= b {
            (a..=b).contains(&doy)
        } else {
            doy >= a || doy <= b
        }
    }

    fn is_peak(&self, t: SimTime) -> bool {
        let h = t.hour_of_day();
        h >= self.peak_start_h && h < self.peak_end_h
    }

    /// Price at time `t`, €/kWh. Note: `t`'s day-of-year is relative to
    /// the calendar epoch; use a January epoch for tariff studies.
    pub fn price_eur_kwh(&self, t: SimTime) -> f64 {
        let mut p = self.base_eur_kwh;
        if self.is_peak(t) {
            p *= self.peak_multiplier;
        }
        if self.is_winter(t) {
            p *= self.winter_multiplier;
        }
        p
    }

    /// Cost of an energy amount consumed entirely at time `t`, €.
    pub fn cost_eur(&self, t: SimTime, kwh: f64) -> f64 {
        assert!(kwh >= 0.0);
        self.price_eur_kwh(t) * kwh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn at(day: i64, hour: i64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(day) + SimDuration::from_hours(hour)
    }

    #[test]
    fn peak_hours_cost_more() {
        let t = Tariff::france();
        let off = t.price_eur_kwh(at(150, 10)); // summer morning
        let peak = t.price_eur_kwh(at(150, 19)); // summer evening peak
        assert!((off - 0.20).abs() < 1e-12);
        assert!((peak - 0.30).abs() < 1e-12);
    }

    #[test]
    fn winter_surcharge_applies_and_wraps_new_year() {
        let t = Tariff::france();
        // Day 310 (mid-November) and day 30 (late January) are winter.
        assert!((t.price_eur_kwh(at(310, 10)) - 0.24).abs() < 1e-12);
        assert!((t.price_eur_kwh(at(30, 10)) - 0.24).abs() < 1e-12);
        // Day 150 (late May) is not.
        assert!((t.price_eur_kwh(at(150, 10)) - 0.20).abs() < 1e-12);
        // Winter evening peak stacks both multipliers.
        assert!((t.price_eur_kwh(at(30, 19)) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn flat_tariff_is_flat() {
        let t = Tariff::flat(0.15);
        for (d, h) in [(0, 0), (100, 12), (340, 19)] {
            assert_eq!(t.price_eur_kwh(at(d, h)), 0.15);
        }
    }

    #[test]
    fn cost_scales_with_energy() {
        let t = Tariff::flat(0.10);
        assert!((t.cost_eur(at(0, 0), 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_energy_rejected() {
        Tariff::france().cost_eur(at(0, 0), -1.0);
    }
}
