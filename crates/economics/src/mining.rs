//! Crypto-heater economics (§II-B.3, §IV).
//!
//! "Digital heaters are receiving a growing interest in the community
//! of coin miners. Comino and the Qarnot crypto-heater are special
//! servers, built to serve both as a space heater and a crypto
//! currency miner" — and §IV adds that "data furnace could disrupt
//! blockchain … DF servers constitute a significant computing power."
//!
//! The unit economics: a mining rig's margin is
//! `revenue − electricity`; a crypto-*heater*'s margin is
//! `revenue − electricity + heat value`, where the heat value is the
//! heating bill it displaces — but only in heating season. The model
//! quantifies when the heat credit rescues otherwise-unprofitable
//! mining.

use crate::tariff::Tariff;
use serde::{Deserialize, Serialize};
use simcore::time::SimTime;

/// A mining device's performance characteristics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MiningRig {
    /// Hash rate, MH/s (Ethash-class units).
    pub hashrate_mh: f64,
    /// Electrical power at the wall, W.
    pub power_w: f64,
}

impl MiningRig {
    /// The Qarnot crypto-heater QC1: 2 GPUs, 650 W (§II-B), ~60 MH/s
    /// Ethash-class.
    pub fn qarnot_qc1() -> Self {
        MiningRig {
            hashrate_mh: 60.0,
            power_w: 650.0,
        }
    }

    /// Mining efficiency, MH/s per W.
    pub fn efficiency(&self) -> f64 {
        self.hashrate_mh / self.power_w
    }
}

/// Market conditions for the coin being mined.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoinMarket {
    /// Revenue per MH/s per day, €.
    pub eur_per_mh_day: f64,
}

impl CoinMarket {
    /// A lean market where raw mining barely breaks even at retail
    /// electricity prices (the regime where the heat credit decides).
    pub fn lean() -> Self {
        CoinMarket {
            eur_per_mh_day: 0.032,
        }
    }

    /// A bull market where mining is profitable regardless.
    pub fn bull() -> Self {
        CoinMarket {
            eur_per_mh_day: 0.10,
        }
    }
}

/// One day of crypto-heater accounting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MiningDay {
    /// Gross mining revenue, €.
    pub revenue_eur: f64,
    /// Electricity cost, €.
    pub electricity_eur: f64,
    /// Heat credit (displaced heating bill), €.
    pub heat_credit_eur: f64,
}

impl MiningDay {
    /// Margin of a pure mining rig (no heat use), €.
    pub fn rig_margin_eur(&self) -> f64 {
        self.revenue_eur - self.electricity_eur
    }

    /// Margin of a crypto-heater (heat displaces a heating bill), €.
    pub fn heater_margin_eur(&self) -> f64 {
        self.revenue_eur - self.electricity_eur + self.heat_credit_eur
    }
}

/// Account one day of operation at time `t`.
///
/// `heat_utilisation ∈ [0, 1]` is the fraction of the rig's heat that
/// displaces real heating demand that day (≈1 in winter, ≈0 in summer;
/// take it from a thermostat or a thermosensitivity model).
pub fn account_day(
    rig: MiningRig,
    market: CoinMarket,
    tariff: &Tariff,
    t: SimTime,
    heat_utilisation: f64,
) -> MiningDay {
    assert!((0.0..=1.0).contains(&heat_utilisation));
    let kwh = rig.power_w * 24.0 / 1_000.0;
    let electricity = tariff.cost_eur(t, kwh);
    MiningDay {
        revenue_eur: rig.hashrate_mh * market.eur_per_mh_day,
        electricity_eur: electricity,
        // Displaced heating is valued at the same tariff: a resistive
        // heater would have drawn exactly the utilised fraction.
        heat_credit_eur: electricity * heat_utilisation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn at_day(d: i64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(d) + SimDuration::from_hours(12)
    }

    #[test]
    fn qc1_specs_match_paper() {
        let rig = MiningRig::qarnot_qc1();
        assert_eq!(rig.power_w, 650.0);
        assert!(rig.efficiency() > 0.05);
    }

    #[test]
    fn lean_market_mining_loses_without_heat_credit() {
        let day = account_day(
            MiningRig::qarnot_qc1(),
            CoinMarket::lean(),
            &Tariff::flat(0.20),
            at_day(150),
            0.0, // summer: heat is wasted
        );
        assert!(
            day.rig_margin_eur() < 0.0,
            "lean-market rig margin {} should be negative",
            day.rig_margin_eur()
        );
        assert_eq!(day.heater_margin_eur(), day.rig_margin_eur());
    }

    #[test]
    fn heat_credit_rescues_winter_mining() {
        let day = account_day(
            MiningRig::qarnot_qc1(),
            CoinMarket::lean(),
            &Tariff::flat(0.20),
            at_day(20),
            1.0, // deep winter: all heat displaces the heating bill
        );
        assert!(day.rig_margin_eur() < 0.0);
        assert!(
            day.heater_margin_eur() > 0.0,
            "with the heat credit the crypto-heater profits: {}",
            day.heater_margin_eur()
        );
    }

    #[test]
    fn bull_market_profits_regardless() {
        let day = account_day(
            MiningRig::qarnot_qc1(),
            CoinMarket::bull(),
            &Tariff::flat(0.20),
            at_day(150),
            0.0,
        );
        assert!(day.rig_margin_eur() > 0.0);
    }

    #[test]
    fn heat_credit_never_exceeds_electricity() {
        for util in [0.0, 0.3, 1.0] {
            let day = account_day(
                MiningRig::qarnot_qc1(),
                CoinMarket::lean(),
                &Tariff::france(),
                at_day(340),
                util,
            );
            assert!(day.heat_credit_eur <= day.electricity_eur + 1e-9);
            assert!(day.heat_credit_eur >= 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn utilisation_out_of_range_panics() {
        account_day(
            MiningRig::qarnot_qc1(),
            CoinMarket::lean(),
            &Tariff::flat(0.2),
            at_day(0),
            1.5,
        );
    }
}
