//! SLAs over a seasonal platform.
//!
//! §IV: "for SLAs designers, data furnace is a field of research that
//! can still lead to very innovative proposals." The twist: committed
//! capacity can honestly vary by season. [`SlaTarget`] carries both a
//! deadline SLO for edge and a seasonal capacity commitment for DCC;
//! [`SlaReport`] measures attainment and computes penalties.

use serde::{Deserialize, Serialize};

/// Service-level targets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SlaTarget {
    /// Fraction of edge requests that must meet their deadline.
    pub edge_deadline_attainment: f64,
    /// Committed DCC capacity per month, core-hours — may differ by
    /// month (the seasonal SLA §IV suggests).
    pub monthly_capacity_core_h: [f64; 12],
    /// Penalty per violated percentage point of edge attainment, €.
    pub edge_penalty_eur_per_pp: f64,
    /// Penalty per missing committed core-hour, €.
    pub capacity_penalty_eur_per_core_h: f64,
}

impl SlaTarget {
    /// A flat SLA: the same commitment every month (the classical cloud
    /// SLA the paper says data furnace must move beyond).
    pub fn flat(capacity_core_h: f64) -> Self {
        SlaTarget {
            edge_deadline_attainment: 0.99,
            monthly_capacity_core_h: [capacity_core_h; 12],
            edge_penalty_eur_per_pp: 50.0,
            capacity_penalty_eur_per_core_h: 0.05,
        }
    }

    /// A seasonal SLA: commitments follow the heat-driven supply curve
    /// (index 0 = January). `winter` applies Nov–Mar, `summer` applies
    /// May–Sep, shoulder months interpolate.
    pub fn seasonal(winter: f64, summer: f64) -> Self {
        assert!(winter >= summer, "winter capacity should dominate");
        let mut m = [0.0; 12];
        for (i, slot) in m.iter_mut().enumerate() {
            *slot = match i {
                0 | 1 | 2 | 10 | 11 => winter, // Jan Feb Mar Nov Dec
                4..=8 => summer,               // May..Sep
                _ => (winter + summer) / 2.0,  // Apr, Oct
            };
        }
        SlaTarget {
            edge_deadline_attainment: 0.99,
            monthly_capacity_core_h: m,
            edge_penalty_eur_per_pp: 50.0,
            capacity_penalty_eur_per_core_h: 0.05,
        }
    }
}

/// Measured outcomes for one month.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MonthOutcome {
    /// Calendar month, 0 = January.
    pub month: usize,
    /// Edge requests served / meeting deadline.
    pub edge_total: u64,
    pub edge_met: u64,
    /// DCC core-hours actually delivered.
    pub delivered_core_h: f64,
}

/// Attainment report across months.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlaReport {
    pub target: SlaTarget,
    pub months: Vec<MonthOutcome>,
}

impl SlaReport {
    pub fn new(target: SlaTarget) -> Self {
        SlaReport {
            target,
            months: Vec::new(),
        }
    }

    pub fn push(&mut self, m: MonthOutcome) {
        assert!(m.month < 12);
        assert!(m.edge_met <= m.edge_total);
        self.months.push(m);
    }

    /// Edge attainment over all months (1.0 when no edge traffic).
    pub fn edge_attainment(&self) -> f64 {
        let total: u64 = self.months.iter().map(|m| m.edge_total).sum();
        if total == 0 {
            return 1.0;
        }
        let met: u64 = self.months.iter().map(|m| m.edge_met).sum();
        met as f64 / total as f64
    }

    /// Capacity shortfall against the monthly commitments, core-hours.
    pub fn capacity_shortfall_core_h(&self) -> f64 {
        self.months
            .iter()
            .map(|m| (self.target.monthly_capacity_core_h[m.month] - m.delivered_core_h).max(0.0))
            .sum()
    }

    /// Total penalty, €.
    pub fn penalty_eur(&self) -> f64 {
        let att = self.edge_attainment();
        let edge_pp_missing = ((self.target.edge_deadline_attainment - att) * 100.0).max(0.0);
        edge_pp_missing * self.target.edge_penalty_eur_per_pp
            + self.capacity_shortfall_core_h() * self.target.capacity_penalty_eur_per_core_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn month(m: usize, delivered: f64) -> MonthOutcome {
        MonthOutcome {
            month: m,
            edge_total: 1_000,
            edge_met: 995,
            delivered_core_h: delivered,
        }
    }

    #[test]
    fn seasonal_sla_avoids_summer_penalties_that_flat_incurs() {
        // A fleet delivering 10 000 core-h in winter but 3 000 in summer.
        let flat = SlaTarget::flat(8_000.0);
        let seasonal = SlaTarget::seasonal(10_000.0, 3_000.0);
        let mut flat_r = SlaReport::new(flat);
        let mut seas_r = SlaReport::new(seasonal);
        for m in 0..12 {
            let delivered = match m {
                0 | 1 | 2 | 10 | 11 => 10_000.0,
                4..=8 => 3_000.0,
                _ => 6_500.0,
            };
            flat_r.push(month(m, delivered));
            seas_r.push(month(m, delivered));
        }
        assert!(flat_r.capacity_shortfall_core_h() > 0.0);
        assert_eq!(seas_r.capacity_shortfall_core_h(), 0.0);
        assert!(flat_r.penalty_eur() > seas_r.penalty_eur());
    }

    #[test]
    fn edge_attainment_penalty() {
        let mut r = SlaReport::new(SlaTarget::flat(0.0));
        r.push(MonthOutcome {
            month: 0,
            edge_total: 1_000,
            edge_met: 970, // 97 % < 99 % target
            delivered_core_h: 0.0,
        });
        assert!((r.edge_attainment() - 0.97).abs() < 1e-12);
        // 2 pp missing × 50 € = 100 €.
        assert!((r.penalty_eur() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn no_traffic_is_full_attainment() {
        let r = SlaReport::new(SlaTarget::flat(0.0));
        assert_eq!(r.edge_attainment(), 1.0);
        assert_eq!(r.penalty_eur(), 0.0);
    }

    #[test]
    fn seasonal_commitments_have_expected_shape() {
        let t = SlaTarget::seasonal(10_000.0, 2_000.0);
        assert_eq!(t.monthly_capacity_core_h[0], 10_000.0); // Jan
        assert_eq!(t.monthly_capacity_core_h[6], 2_000.0); // Jul
        assert_eq!(t.monthly_capacity_core_h[3], 6_000.0); // Apr shoulder
    }

    #[test]
    #[should_panic]
    fn met_cannot_exceed_total() {
        let mut r = SlaReport::new(SlaTarget::flat(0.0));
        r.push(MonthOutcome {
            month: 0,
            edge_total: 10,
            edge_met: 11,
            delivered_core_h: 0.0,
        });
    }
}
