//! Seasonal capacity pricing.
//!
//! §IV: with data furnace "the variability is also on the number of
//! computing capacity: in winter, the heat demand increases the
//! computing power that is then reduced in the summer." We model the
//! spot price of a DF core-hour as a constant-elasticity response to
//! scarcity: the scarcer the heat-driven supply relative to compute
//! demand, the higher the price, floored at marginal cost.

use serde::{Deserialize, Serialize};

/// Price quote for one accounting period.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PriceQuote {
    /// Offered (heat-driven) capacity, core-hours.
    pub supply_core_h: f64,
    /// Requested compute, core-hours.
    pub demand_core_h: f64,
    /// Clearing price, €/core-hour.
    pub price_eur_core_h: f64,
    /// Core-hours actually sold (min of supply and demand).
    pub sold_core_h: f64,
}

impl PriceQuote {
    pub fn revenue_eur(&self) -> f64 {
        self.price_eur_core_h * self.sold_core_h
    }
}

/// Constant-elasticity capacity pricer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CapacityPricer {
    /// Price when supply exactly meets demand, €/core-hour.
    pub reference_price: f64,
    /// Elasticity exponent: price ∝ (demand/supply)^elasticity.
    pub elasticity: f64,
    /// Marginal-cost floor, €/core-hour.
    pub floor: f64,
    /// Scarcity cap, €/core-hour.
    pub cap: f64,
}

impl CapacityPricer {
    /// Calibrated near public cloud spot prices: reference 0.02 €/core-h,
    /// floor 0.005, cap 0.20.
    pub fn standard() -> Self {
        CapacityPricer {
            reference_price: 0.02,
            elasticity: 0.8,
            floor: 0.005,
            cap: 0.20,
        }
    }

    /// Quote a period.
    pub fn quote(&self, supply_core_h: f64, demand_core_h: f64) -> PriceQuote {
        assert!(supply_core_h >= 0.0 && demand_core_h >= 0.0);
        let price = if supply_core_h <= 0.0 {
            self.cap
        } else if demand_core_h <= 0.0 {
            self.floor
        } else {
            (self.reference_price * (demand_core_h / supply_core_h).powf(self.elasticity))
                .clamp(self.floor, self.cap)
        };
        PriceQuote {
            supply_core_h,
            demand_core_h,
            price_eur_core_h: price,
            sold_core_h: supply_core_h.min(demand_core_h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_market_quotes_reference() {
        let p = CapacityPricer::standard();
        let q = p.quote(1_000.0, 1_000.0);
        assert!((q.price_eur_core_h - 0.02).abs() < 1e-12);
        assert_eq!(q.sold_core_h, 1_000.0);
    }

    #[test]
    fn winter_glut_cheapens_compute() {
        // Winter: heat demand creates 4× oversupply → price drops.
        let p = CapacityPricer::standard();
        let winter = p.quote(4_000.0, 1_000.0);
        let summer = p.quote(400.0, 1_000.0);
        assert!(winter.price_eur_core_h < 0.02);
        assert!(summer.price_eur_core_h > 0.02);
        assert!(summer.price_eur_core_h > 2.0 * winter.price_eur_core_h);
    }

    #[test]
    fn price_respects_floor_and_cap() {
        let p = CapacityPricer::standard();
        assert_eq!(p.quote(1e9, 1.0).price_eur_core_h, 0.005);
        assert_eq!(p.quote(1.0, 1e9).price_eur_core_h, 0.20);
        assert_eq!(p.quote(0.0, 100.0).price_eur_core_h, 0.20);
        assert_eq!(p.quote(100.0, 0.0).price_eur_core_h, 0.005);
    }

    #[test]
    fn sold_is_min_of_supply_demand() {
        let p = CapacityPricer::standard();
        assert_eq!(p.quote(500.0, 800.0).sold_core_h, 500.0);
        assert_eq!(p.quote(800.0, 500.0).sold_core_h, 500.0);
    }

    #[test]
    fn revenue_is_price_times_sold() {
        let q = CapacityPricer::standard().quote(1_000.0, 1_000.0);
        assert!((q.revenue_eur() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn elasticity_shapes_response() {
        let gentle = CapacityPricer {
            elasticity: 0.2,
            ..CapacityPricer::standard()
        };
        let steep = CapacityPricer {
            elasticity: 2.0,
            ..CapacityPricer::standard()
        };
        let scarcity = |p: &CapacityPricer| p.quote(500.0, 1_000.0).price_eur_core_h;
        assert!(scarcity(&steep) > scarcity(&gentle));
    }
}
