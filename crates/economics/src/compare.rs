//! Total cost of compute: DF fleet vs classical datacenter.
//!
//! §II-A: "the model makes it possible to build a datacenter by reusing
//! existing infrastructures (buildings, networks etc.)" and avoids
//! cooling energy. This module compares amortised €/core-hour.

use serde::{Deserialize, Serialize};

/// Cost structure of a compute fleet.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FleetCosts {
    /// Capital expenditure per core, €.
    pub capex_eur_per_core: f64,
    /// Amortisation period, years.
    pub amortisation_years: f64,
    /// Facility overhead ratio on energy (PUE − 1).
    pub energy_overhead_ratio: f64,
    /// Electricity price, €/kWh.
    pub electricity_eur_kwh: f64,
    /// Mean electrical power per busy core, W.
    pub watts_per_core: f64,
    /// Mean utilisation of the fleet (busy fraction).
    pub utilisation: f64,
    /// Fraction of the energy bill recovered by selling heat
    /// (DF: the host deal effectively transfers the heating value;
    /// datacenter: 0).
    pub heat_recovery_ratio: f64,
    /// Annual maintenance per core, € (DF pays distributed-maintenance
    /// logistics, §III-C).
    pub maintenance_eur_per_core_year: f64,
}

impl FleetCosts {
    /// A Q.rad fleet: no building capex (reuses homes), no cooling,
    /// energy offset by its heating value in season (~60 % of the year's
    /// energy lands during heat demand), higher per-unit maintenance.
    pub fn df_fleet() -> Self {
        FleetCosts {
            capex_eur_per_core: 120.0, // the server itself only
            amortisation_years: 5.0,
            energy_overhead_ratio: 0.03,
            electricity_eur_kwh: 0.15,
            watts_per_core: 28.0,
            utilisation: 0.45, // heat-demand bound
            heat_recovery_ratio: 0.60,
            maintenance_eur_per_core_year: 9.0,
        }
    }

    /// A classical datacenter: building + cooling capex, PUE 1.55,
    /// cheap pooled maintenance, high utilisation.
    pub fn datacenter() -> Self {
        FleetCosts {
            capex_eur_per_core: 300.0, // server + building + cooling plant
            amortisation_years: 5.0,
            energy_overhead_ratio: 0.55,
            electricity_eur_kwh: 0.12,
            watts_per_core: 25.0,
            utilisation: 0.70,
            heat_recovery_ratio: 0.0,
            maintenance_eur_per_core_year: 4.0,
        }
    }

    /// Amortised cost per *busy* core-hour, €.
    pub fn cost_per_core_hour(&self) -> f64 {
        assert!(self.utilisation > 0.0 && self.utilisation <= 1.0);
        let busy_hours_per_year = 8_760.0 * self.utilisation;
        let capex_hourly =
            self.capex_eur_per_core / (self.amortisation_years * busy_hours_per_year);
        let energy_per_busy_hour = self.watts_per_core / 1_000.0
            * (1.0 + self.energy_overhead_ratio)
            * self.electricity_eur_kwh
            * (1.0 - self.heat_recovery_ratio);
        let maintenance_hourly = self.maintenance_eur_per_core_year / busy_hours_per_year;
        capex_hourly + energy_per_busy_hour + maintenance_hourly
    }

    /// Annual energy per core, kWh (busy + idle at 20 % idle power).
    pub fn annual_energy_kwh_per_core(&self) -> f64 {
        let busy = 8_760.0 * self.utilisation * self.watts_per_core / 1_000.0;
        let idle = 8_760.0 * (1.0 - self.utilisation) * 0.2 * self.watts_per_core / 1_000.0;
        (busy + idle) * (1.0 + self.energy_overhead_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn df_core_hour_is_cheaper() {
        // The paper's economic argument: reused infrastructure + avoided
        // cooling + heat value beat the DC's scale advantages.
        let df = FleetCosts::df_fleet().cost_per_core_hour();
        let dc = FleetCosts::datacenter().cost_per_core_hour();
        assert!(
            df < dc,
            "DF {df:.4} €/core-h should undercut DC {dc:.4} €/core-h"
        );
        // Both are in a plausible absolute range (0.3–10 ¢/core-h).
        for c in [df, dc] {
            assert!((0.003..0.10).contains(&c), "cost {c} out of range");
        }
    }

    #[test]
    fn without_heat_recovery_df_loses_its_edge() {
        let mut df = FleetCosts::df_fleet();
        df.heat_recovery_ratio = 0.0;
        let dc = FleetCosts::datacenter();
        // The gap shrinks dramatically (energy dominates opex).
        let gap_with = dc.cost_per_core_hour() - FleetCosts::df_fleet().cost_per_core_hour();
        let gap_without = dc.cost_per_core_hour() - df.cost_per_core_hour();
        assert!(gap_without < gap_with);
    }

    #[test]
    fn datacenter_energy_overhead_shows_in_annual_energy() {
        let df = FleetCosts::df_fleet().annual_energy_kwh_per_core();
        let dc = FleetCosts::datacenter().annual_energy_kwh_per_core();
        // Per-core annual energy: DC's PUE overhead outweighs DF's lower
        // utilisation profile on this metric's overhead component.
        let df_overhead = df * 0.03 / 1.03;
        let dc_overhead = dc * 0.55 / 1.55;
        assert!(dc_overhead > 5.0 * df_overhead);
    }

    #[test]
    fn higher_utilisation_lowers_unit_cost() {
        let mut a = FleetCosts::df_fleet();
        a.utilisation = 0.3;
        let mut b = FleetCosts::df_fleet();
        b.utilisation = 0.8;
        assert!(b.cost_per_core_hour() < a.cost_per_core_hour());
    }

    #[test]
    #[should_panic]
    fn zero_utilisation_panics() {
        let mut c = FleetCosts::df_fleet();
        c.utilisation = 0.0;
        c.cost_per_core_hour();
    }
}
