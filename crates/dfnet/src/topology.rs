//! The typed network graph.
//!
//! Figure 3's components — connected devices, DF servers, master nodes,
//! the Internet, a datacenter — become nodes; links carry a [`Link`]
//! model. Routing is shortest-latency Dijkstra for a reference message
//! size; message timing then follows the selected path hop by hop.

use crate::link::Link;
use crate::protocol::Protocol;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use std::collections::BinaryHeap;
use std::fmt;

/// Why a route could not be produced. Carries the offending handles so
/// a failed lookup can be traced back to the node that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// A node handle does not name a node of this topology.
    NodeOutOfRange { node: NodeId, n_nodes: usize },
    /// Both endpoints exist but no link path connects them.
    NoRoute { src: NodeId, dst: NodeId },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RouteError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {} out of range ({n_nodes} nodes)", node.0)
            }
            RouteError::NoRoute { src, dst } => {
                write!(f, "no route from node {} to node {}", src.0, dst.0)
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A connected IoT device (sensor, actuator, phone).
    Device,
    /// A DF server (worker).
    DfServer,
    /// An edge gateway (receives local requests).
    EdgeGateway,
    /// A DCC gateway (receives Internet computing requests).
    DccGateway,
    /// A master node coordinating a local cluster (indirect requests).
    Master,
    /// An Internet exchange / metro PoP.
    InternetPop,
    /// A remote cloud datacenter.
    Datacenter,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge {
    to: NodeId,
    link: Link,
}

/// A network topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    adj: Vec<Vec<Edge>>,
}

impl Topology {
    pub fn new() -> Self {
        Topology::default()
    }

    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        NodeId(self.kinds.len() - 1)
    }

    pub fn kind(&self, n: NodeId) -> Option<NodeKind> {
        self.kinds.get(n.0).copied()
    }

    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Add a bidirectional link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert!(a != b, "self-loops are not meaningful");
        assert!(a.0 < self.n_nodes() && b.0 < self.n_nodes());
        self.adj[a.0].push(Edge { to: b, link });
        self.adj[b.0].push(Edge { to: a, link });
    }

    /// Nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, &k)| k == kind)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Shortest path from `src` to `dst` minimising one-way latency of a
    /// message of `payload_bytes`. Returns the hop list (excluding `src`)
    /// and the total time. Handles from another topology and unreachable
    /// destinations are errors, never panics — routes are computed from
    /// externally supplied endpoints.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> Result<(Vec<NodeId>, SimDuration), RouteError> {
        #[derive(PartialEq, Eq)]
        struct State {
            cost_us: i64,
            node: NodeId,
        }
        impl Ord for State {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.cost_us
                    .cmp(&self.cost_us)
                    .then_with(|| o.node.cmp(&self.node))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }

        let n = self.n_nodes();
        for node in [src, dst] {
            if node.0 >= n {
                return Err(RouteError::NodeOutOfRange { node, n_nodes: n });
            }
        }
        let mut dist = vec![i64::MAX; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.0] = 0;
        heap.push(State {
            cost_us: 0,
            node: src,
        });
        while let Some(State { cost_us, node }) = heap.pop() {
            if node == dst {
                break;
            }
            if cost_us > dist[node.0] {
                continue;
            }
            for e in &self.adj[node.0] {
                let w = e.link.transfer_time(payload_bytes).as_micros();
                let next = cost_us + w;
                if next < dist[e.to.0] {
                    dist[e.to.0] = next;
                    prev[e.to.0] = Some(node);
                    heap.push(State {
                        cost_us: next,
                        node: e.to,
                    });
                }
            }
        }
        if dist[dst.0] == i64::MAX {
            return Err(RouteError::NoRoute { src, dst });
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = prev[cur.0] {
            if p != src {
                path.push(p);
            }
            cur = p;
        }
        path.reverse();
        Ok((path, SimDuration::from_micros(dist[dst.0])))
    }

    /// One-way latency between two nodes.
    pub fn latency(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> Result<SimDuration, RouteError> {
        Ok(self.route(src, dst, payload_bytes)?.1)
    }
}

/// A ready-made building cluster topology, per Figure 3/5:
/// devices —(low-power)— edge gateway —(LAN)— workers —(LAN)— master,
/// master —(fiber)— Internet PoP —(WAN)— datacenter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildingTopology {
    pub topo: Topology,
    pub devices: Vec<NodeId>,
    pub edge_gateway: NodeId,
    pub dcc_gateway: NodeId,
    pub master: NodeId,
    pub workers: Vec<NodeId>,
    pub pop: NodeId,
    pub datacenter: NodeId,
}

impl BuildingTopology {
    /// Build a cluster of `n_workers` DF servers and `n_devices` IoT
    /// devices, with `device_protocol` on the sensor side.
    pub fn new(n_workers: usize, n_devices: usize, device_protocol: Protocol) -> Self {
        assert!(n_workers > 0);
        let mut t = Topology::new();
        let edge_gateway = t.add_node(NodeKind::EdgeGateway);
        let dcc_gateway = t.add_node(NodeKind::DccGateway);
        let master = t.add_node(NodeKind::Master);
        let pop = t.add_node(NodeKind::InternetPop);
        let datacenter = t.add_node(NodeKind::Datacenter);
        let lan = Link::new(Protocol::EthernetLan);
        t.connect(edge_gateway, master, lan);
        t.connect(dcc_gateway, master, lan);
        // Master reaches the metro PoP by fiber (the Q.rad uplink of §II-B),
        // and the PoP reaches the remote datacenter over the WAN.
        t.connect(master, pop, Link::new(Protocol::Fiber));
        t.connect(pop, datacenter, Link::new(Protocol::WanInternet));
        let workers: Vec<NodeId> = (0..n_workers)
            .map(|_| {
                let w = t.add_node(NodeKind::DfServer);
                t.connect(w, master, lan);
                t.connect(w, edge_gateway, lan);
                t.connect(w, dcc_gateway, lan);
                w
            })
            .collect();
        let devices: Vec<NodeId> = (0..n_devices)
            .map(|_| {
                let d = t.add_node(NodeKind::Device);
                t.connect(d, edge_gateway, Link::new(device_protocol));
                d
            })
            .collect();
        BuildingTopology {
            topo: t,
            devices,
            edge_gateway,
            dcc_gateway,
            master,
            workers,
            pop,
            datacenter,
        }
    }

    /// Direct local request: device → worker (via the edge gateway LAN),
    /// one way (§II-C "the edge user has a direct connection").
    pub fn direct_latency(
        &self,
        device: NodeId,
        worker: NodeId,
        bytes: usize,
    ) -> Result<SimDuration, RouteError> {
        self.topo.latency(device, worker, bytes)
    }

    /// Indirect local request: device → master → worker (§II-C "the
    /// request is sent to the master node that will schedule it"). The
    /// master hop is forced even if a shorter path exists.
    pub fn indirect_latency(
        &self,
        device: NodeId,
        worker: NodeId,
        bytes: usize,
    ) -> Result<SimDuration, RouteError> {
        Ok(self.topo.latency(device, self.master, bytes)?
            + self.topo.latency(self.master, worker, bytes)?)
    }

    /// Cloud round-trip: device → datacenter → device.
    pub fn cloud_rtt(
        &self,
        device: NodeId,
        req_bytes: usize,
        rep_bytes: usize,
    ) -> Result<SimDuration, RouteError> {
        Ok(self.topo.latency(device, self.datacenter, req_bytes)?
            + self.topo.latency(self.datacenter, device, rep_bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn building() -> BuildingTopology {
        BuildingTopology::new(4, 2, Protocol::Wifi)
    }

    #[test]
    fn routing_finds_shortest_path() {
        let b = building();
        let (path, lat) = b
            .topo
            .route(b.devices[0], b.workers[0], 500)
            .expect("route exists");
        // device → edge gateway → worker.
        assert_eq!(path.len(), 2);
        assert!(lat > SimDuration::ZERO);
    }

    #[test]
    fn indirect_pays_the_master_hop() {
        // §II-C: "indirect requests ... imply to pay an additional
        // latency cost in the processing of requests."
        let b = building();
        let d = b.devices[0];
        let w = b.workers[1];
        let direct = b.direct_latency(d, w, 500).unwrap();
        let indirect = b.indirect_latency(d, w, 500).unwrap();
        assert!(
            indirect > direct,
            "indirect {indirect} must exceed direct {direct}"
        );
    }

    #[test]
    fn cloud_rtt_dwarfs_local() {
        let b = building();
        let d = b.devices[0];
        let local = b.direct_latency(d, b.workers[0], 1_000).unwrap();
        let cloud = b.cloud_rtt(d, 1_000, 1_000).unwrap();
        assert!(
            cloud.as_secs_f64() > 5.0 * local.as_secs_f64(),
            "cloud {cloud} vs local {local}"
        );
    }

    #[test]
    fn lora_device_much_slower_than_wifi_device() {
        let wifi = BuildingTopology::new(2, 1, Protocol::Wifi);
        let lora = BuildingTopology::new(2, 1, Protocol::Lora);
        let lw = wifi
            .direct_latency(wifi.devices[0], wifi.workers[0], 100)
            .unwrap();
        let ll = lora
            .direct_latency(lora.devices[0], lora.workers[0], 100)
            .unwrap();
        assert!(ll.as_secs_f64() > 10.0 * lw.as_secs_f64());
    }

    #[test]
    fn unreachable_and_unknown_nodes_are_typed_errors() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Device);
        let b = t.add_node(NodeKind::DfServer);
        assert_eq!(
            t.route(a, b, 10),
            Err(RouteError::NoRoute { src: a, dst: b })
        );
        let ghost = NodeId(99);
        assert_eq!(
            t.route(a, ghost, 10),
            Err(RouteError::NodeOutOfRange {
                node: ghost,
                n_nodes: 2
            })
        );
        assert_eq!(t.kind(ghost), None);
        assert_eq!(t.kind(a), Some(NodeKind::Device));
        for e in [
            RouteError::NoRoute { src: a, dst: b },
            RouteError::NodeOutOfRange {
                node: ghost,
                n_nodes: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn nodes_of_kind_filters() {
        let b = building();
        assert_eq!(b.topo.nodes_of_kind(NodeKind::DfServer).len(), 4);
        assert_eq!(b.topo.nodes_of_kind(NodeKind::Device).len(), 2);
        assert_eq!(b.topo.nodes_of_kind(NodeKind::Datacenter).len(), 1);
    }

    #[test]
    fn route_to_self_is_empty_and_free() {
        let b = building();
        let (path, lat) = b.topo.route(b.master, b.master, 100).unwrap();
        assert!(path.is_empty() || path == vec![b.master]);
        assert_eq!(lat, SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Device);
        t.connect(a, a, Link::new(Protocol::Wifi));
    }
}
