//! Point-to-point link timing.

use crate::protocol::Protocol;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// The four link roles of the platform's network model, addressable by
/// fault injectors (degradation and partition target a class, not a
/// concrete [`Link`] instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    /// Device ↔ worker access link (Wi-Fi).
    Device,
    /// Intra-building LAN (gateway/master hops).
    Lan,
    /// Inter-cluster fiber (horizontal offloads, DCC ingress).
    Fiber,
    /// WAN to the remote datacenter (vertical offloads).
    Wan,
}

impl LinkClass {
    /// Stable lowercase name for telemetry and run reports.
    pub fn label(&self) -> &'static str {
        match self {
            LinkClass::Device => "device",
            LinkClass::Lan => "lan",
            LinkClass::Fiber => "fiber",
            LinkClass::Wan => "wan",
        }
    }
}

/// A multiplicative service degradation applied to a [`Link`] while a
/// fault window is active: latency is stretched, bandwidth is derated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// Factor ≥ 1 applied to the link's total fixed latency.
    pub latency_factor: f64,
    /// Factor in `(0, 1]` applied to the link's effective data rate.
    pub bandwidth_factor: f64,
}

impl Degradation {
    /// The identity degradation (no effect).
    pub fn none() -> Self {
        Degradation {
            latency_factor: 1.0,
            bandwidth_factor: 1.0,
        }
    }

    /// A brown-out typical of a congested metro segment: 3× latency,
    /// 40 % of nominal bandwidth.
    pub fn brownout() -> Self {
        Degradation {
            latency_factor: 3.0,
            bandwidth_factor: 0.4,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if !(self.latency_factor >= 1.0 && self.latency_factor.is_finite()) {
            return Err(format!(
                "latency factor {} must be ≥ 1",
                self.latency_factor
            ));
        }
        if !(self.bandwidth_factor > 0.0 && self.bandwidth_factor <= 1.0) {
            return Err(format!(
                "bandwidth factor {} out of (0,1]",
                self.bandwidth_factor
            ));
        }
        Ok(())
    }
}

/// A unidirectional link using a [`Protocol`], with an optional extra
/// distance-dependent latency (metro/WAN spans) and a load factor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    pub protocol: Protocol,
    /// Additional one-way latency on top of the protocol base, s.
    pub extra_latency_s: f64,
    /// Fraction of the nominal data rate actually available (congestion,
    /// MAC efficiency), in `(0, 1]`.
    pub efficiency: f64,
}

impl Link {
    pub fn new(protocol: Protocol) -> Self {
        Link {
            protocol,
            extra_latency_s: 0.0,
            efficiency: 1.0,
        }
    }

    /// Add extra one-way latency (e.g. metro distance).
    pub fn with_extra_latency(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0);
        self.extra_latency_s = seconds;
        self
    }

    /// Derate the data rate.
    pub fn with_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency out of (0,1]: {eff}");
        self.efficiency = eff;
        self
    }

    /// Apply a [`Degradation`]: the total fixed latency (protocol
    /// base plus extra) is multiplied by `latency_factor` — the
    /// protocol base itself is immutable, so the stretch lands on
    /// `extra_latency_s` — and the effective data rate is derated by
    /// `bandwidth_factor`.
    pub fn degraded(mut self, d: Degradation) -> Self {
        d.validate()
            .unwrap_or_else(|e| panic!("bad degradation: {e}"));
        let base = self.protocol.base_latency_s();
        self.extra_latency_s =
            self.extra_latency_s * d.latency_factor + base * (d.latency_factor - 1.0);
        self.efficiency *= d.bandwidth_factor;
        self
    }

    /// Number of frames needed for `payload_bytes`.
    pub fn frames_for(&self, payload_bytes: usize) -> usize {
        match self.protocol.max_payload_bytes() {
            Some(max) => payload_bytes.div_ceil(max).max(1),
            None => 1,
        }
    }

    /// One-way delivery time of a message of `payload_bytes`:
    /// base latency + serialisation of payload + framing overhead,
    /// fragmenting if the protocol's payload limit requires it.
    pub fn transfer_time(&self, payload_bytes: usize) -> SimDuration {
        let frames = self.frames_for(payload_bytes);
        let total_bytes = payload_bytes + frames * self.protocol.frame_overhead_bytes();
        let rate = self.protocol.data_rate_bps() * self.efficiency;
        let serialisation = total_bytes as f64 * 8.0 / rate;
        SimDuration::from_secs_f64(
            self.protocol.base_latency_s() + self.extra_latency_s + serialisation,
        )
    }

    /// Round-trip time for a request of `req_bytes` and reply of
    /// `rep_bytes` over this link (same link both ways).
    pub fn round_trip(&self, req_bytes: usize, rep_bytes: usize) -> SimDuration {
        self.transfer_time(req_bytes) + self.transfer_time(rep_bytes)
    }

    /// Air time of the payload alone (used for duty-cycle accounting).
    pub fn air_time(&self, payload_bytes: usize) -> SimDuration {
        let frames = self.frames_for(payload_bytes);
        let total_bytes = payload_bytes + frames * self.protocol.frame_overhead_bytes();
        let rate = self.protocol.data_rate_bps() * self.efficiency;
        SimDuration::from_secs_f64(total_bytes as f64 * 8.0 / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_transfer_is_sub_millisecond() {
        let l = Link::new(Protocol::EthernetLan);
        let t = l.transfer_time(1_000);
        assert!(t < SimDuration::MILLISECOND, "LAN 1 kB took {t}");
    }

    #[test]
    fn lora_sensor_reading_is_tenths_of_seconds() {
        let l = Link::new(Protocol::Lora);
        let t = l.transfer_time(20); // a compact sensor frame
        let ms = t.as_millis_f64();
        assert!(
            (80.0..300.0).contains(&ms),
            "LoRa 20 B took {ms} ms — should be ~0.1 s"
        );
    }

    #[test]
    fn sigfox_is_seconds_per_message() {
        let l = Link::new(Protocol::Sigfox);
        let t = l.transfer_time(12);
        assert!(t.as_secs_f64() > 2.0);
    }

    #[test]
    fn fragmentation_multiplies_overhead() {
        let l = Link::new(Protocol::Zigbee);
        assert_eq!(l.frames_for(50), 1);
        assert_eq!(l.frames_for(100), 1);
        assert_eq!(l.frames_for(101), 2);
        assert_eq!(l.frames_for(1000), 10);
        // 10 frames of overhead must make the big transfer disproportionately slower.
        let t1 = l.transfer_time(100).as_secs_f64();
        let t10 = l.transfer_time(1000).as_secs_f64();
        assert!(t10 > 8.0 * (t1 - Protocol::Zigbee.base_latency_s()));
    }

    #[test]
    fn zero_byte_message_still_costs_a_frame() {
        let l = Link::new(Protocol::Lora);
        assert_eq!(l.frames_for(0), 1);
        assert!(l.transfer_time(0) > SimDuration::from_millis(80));
    }

    #[test]
    fn efficiency_derates_throughput_not_latency() {
        let fast = Link::new(Protocol::Wifi);
        let slow = Link::new(Protocol::Wifi).with_efficiency(0.5);
        let big = 1_000_000;
        let t_fast = fast.transfer_time(big).as_secs_f64();
        let t_slow = slow.transfer_time(big).as_secs_f64();
        let base = Protocol::Wifi.base_latency_s();
        assert!(((t_slow - base) / (t_fast - base) - 2.0).abs() < 0.01);
    }

    #[test]
    fn extra_latency_adds_linearly() {
        let near = Link::new(Protocol::WanInternet);
        let far = Link::new(Protocol::WanInternet).with_extra_latency(0.080);
        let d = far.transfer_time(100) - near.transfer_time(100);
        assert!((d.as_secs_f64() - 0.080).abs() < 1e-9);
    }

    #[test]
    fn round_trip_is_sum_of_ways() {
        let l = Link::new(Protocol::Fiber);
        let rtt = l.round_trip(200, 5_000);
        assert_eq!(rtt, l.transfer_time(200) + l.transfer_time(5_000));
    }

    #[test]
    fn degradation_stretches_total_latency_and_derates_rate() {
        let l = Link::new(Protocol::Fiber).with_extra_latency(0.001);
        let d = l.degraded(Degradation {
            latency_factor: 2.0,
            bandwidth_factor: 0.5,
        });
        let fixed = Protocol::Fiber.base_latency_s() + 0.001;
        assert!(
            ((Protocol::Fiber.base_latency_s() + d.extra_latency_s) - 2.0 * fixed).abs() < 1e-12
        );
        assert!((d.efficiency - 0.5).abs() < 1e-12);
        assert!(d.transfer_time(1_000_000) > l.transfer_time(1_000_000));
    }

    #[test]
    fn identity_degradation_is_a_noop() {
        let l = Link::new(Protocol::WanInternet).with_extra_latency(0.022);
        let d = l.degraded(Degradation::none());
        assert_eq!(
            l.transfer_time(4_096).as_micros(),
            d.transfer_time(4_096).as_micros()
        );
    }

    #[test]
    #[should_panic]
    fn bandwidth_factor_above_one_is_rejected() {
        let _ = Link::new(Protocol::Fiber).degraded(Degradation {
            latency_factor: 1.0,
            bandwidth_factor: 1.5,
        });
    }

    #[test]
    fn edge_vs_cloud_order_of_magnitude() {
        // The paper's core latency claim: a local LAN round-trip beats a
        // WAN round-trip by an order of magnitude.
        let lan = Link::new(Protocol::EthernetLan).round_trip(1_000, 1_000);
        let wan = Link::new(Protocol::WanInternet).round_trip(1_000, 1_000);
        assert!(wan.as_secs_f64() > 10.0 * lan.as_secs_f64());
    }
}
