//! Message framing: zero-copy fragmentation and reassembly.
//!
//! Low-power protocols carry tiny frames (§III-B: Zigbee 100 B, LoRa
//! 222 B, Sigfox 12 B). An application payload must be fragmented into
//! protocol frames and reassembled at the gateway. Payloads are
//! [`bytes::Bytes`], so fragmentation is O(fragments) pointer slicing —
//! no copies — matching how a real gateway stack would hold them.

use crate::protocol::Protocol;
use bytes::Bytes;

/// One protocol frame of a fragmented payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Index of this fragment within the message.
    pub index: u16,
    /// Total fragments in the message.
    pub total: u16,
    /// The payload slice (zero-copy view into the original).
    pub payload: Bytes,
}

/// Fragment `payload` for `protocol`. Unlimited-payload protocols yield
/// a single fragment. Panics if the message would need more than
/// `u16::MAX` fragments (no real deployment fragments that far).
pub fn fragment(protocol: Protocol, payload: &Bytes) -> Vec<Fragment> {
    let mtu = protocol.max_payload_bytes().unwrap_or(payload.len().max(1));
    let total_usize = payload.len().div_ceil(mtu).max(1);
    assert!(
        total_usize <= u16::MAX as usize,
        "message needs {total_usize} fragments — not a sane use of {}",
        protocol.name()
    );
    let total = total_usize as u16;
    (0..total)
        .map(|i| {
            let start = i as usize * mtu;
            let end = (start + mtu).min(payload.len());
            Fragment {
                index: i,
                total,
                payload: payload.slice(start..end),
            }
        })
        .collect()
}

/// Reassemble fragments into the original payload. Fragments may arrive
/// in any order; duplicates are tolerated (last write wins). Returns
/// `None` if any fragment is missing or the headers are inconsistent.
pub fn reassemble(fragments: &[Fragment]) -> Option<Bytes> {
    let first = fragments.first()?;
    let total = first.total as usize;
    if total == 0 || fragments.iter().any(|f| f.total != first.total) {
        return None;
    }
    let mut slots: Vec<Option<&Fragment>> = vec![None; total];
    for f in fragments {
        let idx = f.index as usize;
        if idx >= total {
            return None;
        }
        slots[idx] = Some(f);
    }
    if slots.iter().any(|s| s.is_none()) {
        return None;
    }
    let mut out = Vec::with_capacity(fragments.iter().map(|f| f.payload.len()).sum());
    for s in slots {
        out.extend_from_slice(&s.expect("checked").payload);
    }
    Some(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn roundtrip_over_constrained_protocols() {
        for proto in [Protocol::Zigbee, Protocol::Lora, Protocol::Sigfox] {
            let p = payload(1_000);
            let frags = fragment(proto, &p);
            let mtu = proto.max_payload_bytes().unwrap();
            assert_eq!(frags.len(), 1_000usize.div_ceil(mtu));
            assert!(frags.iter().all(|f| f.payload.len() <= mtu));
            assert_eq!(reassemble(&frags).unwrap(), p, "{}", proto.name());
        }
    }

    #[test]
    fn unconstrained_protocol_is_single_fragment() {
        let p = payload(1_000_000);
        let frags = fragment(Protocol::Fiber, &p);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].payload, p);
    }

    #[test]
    fn fragmentation_is_zero_copy() {
        let p = payload(444);
        let frags = fragment(Protocol::Lora, &p);
        // A Bytes slice of the same allocation shares its pointer range.
        let base = p.as_ptr() as usize;
        for f in &frags {
            let fp = f.payload.as_ptr() as usize;
            assert!(
                fp >= base && fp < base + p.len(),
                "fragment must alias the original buffer"
            );
        }
    }

    #[test]
    fn out_of_order_and_duplicate_fragments_reassemble() {
        let p = payload(500);
        let mut frags = fragment(Protocol::Zigbee, &p);
        frags.reverse();
        frags.push(frags[0].clone()); // duplicate
        assert_eq!(reassemble(&frags).unwrap(), p);
    }

    #[test]
    fn missing_fragment_fails() {
        let p = payload(500);
        let mut frags = fragment(Protocol::Zigbee, &p);
        frags.remove(2);
        assert!(reassemble(&frags).is_none());
    }

    #[test]
    fn inconsistent_headers_fail() {
        let p = payload(300);
        let mut frags = fragment(Protocol::Zigbee, &p);
        frags[1].total = 99;
        assert!(reassemble(&frags).is_none());
        assert!(reassemble(&[]).is_none());
    }

    #[test]
    fn empty_payload_is_one_empty_fragment() {
        let p = Bytes::new();
        let frags = fragment(Protocol::Lora, &p);
        assert_eq!(frags.len(), 1);
        assert_eq!(reassemble(&frags).unwrap(), p);
    }
}
