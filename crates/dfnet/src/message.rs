//! Message framing: zero-copy fragmentation and reassembly.
//!
//! Low-power protocols carry tiny frames (§III-B: Zigbee 100 B, LoRa
//! 222 B, Sigfox 12 B). An application payload must be fragmented into
//! protocol frames and reassembled at the gateway. Payloads are
//! [`bytes::Bytes`], so fragmentation is O(fragments) pointer slicing —
//! no copies — matching how a real gateway stack would hold them.

use crate::protocol::Protocol;
use bytes::Bytes;
use std::fmt;

/// Why a fragment set could not be reassembled. Gateways log these
/// verbatim, so each variant carries enough context to locate the bad
/// frame without a packet capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassembleError {
    /// No fragments at all.
    Empty,
    /// A header claimed the message has zero fragments.
    ZeroTotal,
    /// Two fragments disagree about the message's total.
    InconsistentTotal { expected: u16, found: u16 },
    /// A fragment's index is not below the claimed total.
    IndexOutOfRange { index: u16, total: u16 },
    /// No fragment carried this index.
    MissingFragment { index: u16, total: u16 },
}

impl fmt::Display for ReassembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReassembleError::Empty => write!(f, "no fragments to reassemble"),
            ReassembleError::ZeroTotal => {
                write!(f, "fragment header claims a zero-fragment message")
            }
            ReassembleError::InconsistentTotal { expected, found } => write!(
                f,
                "fragment headers disagree on total: expected {expected}, found {found}"
            ),
            ReassembleError::IndexOutOfRange { index, total } => {
                write!(f, "fragment index {index} out of range for total {total}")
            }
            ReassembleError::MissingFragment { index, total } => {
                write!(f, "fragment {index} of {total} never arrived")
            }
        }
    }
}

impl std::error::Error for ReassembleError {}

/// One protocol frame of a fragmented payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Index of this fragment within the message.
    pub index: u16,
    /// Total fragments in the message.
    pub total: u16,
    /// The payload slice (zero-copy view into the original).
    pub payload: Bytes,
}

/// Fragment `payload` for `protocol`. Unlimited-payload protocols yield
/// a single fragment. Panics if the message would need more than
/// `u16::MAX` fragments (no real deployment fragments that far).
pub fn fragment(protocol: Protocol, payload: &Bytes) -> Vec<Fragment> {
    let mtu = protocol.max_payload_bytes().unwrap_or(payload.len().max(1));
    let total_usize = payload.len().div_ceil(mtu).max(1);
    assert!(
        total_usize <= u16::MAX as usize,
        "message needs {total_usize} fragments — not a sane use of {}",
        protocol.name()
    );
    let total = total_usize as u16;
    (0..total)
        .map(|i| {
            let start = i as usize * mtu;
            let end = (start + mtu).min(payload.len());
            Fragment {
                index: i,
                total,
                payload: payload.slice(start..end),
            }
        })
        .collect()
}

/// Reassemble fragments into the original payload. Fragments may arrive
/// in any order; duplicates are tolerated (last write wins). Malformed
/// input is an error, never a panic — frames come off the radio.
pub fn reassemble(fragments: &[Fragment]) -> Result<Bytes, ReassembleError> {
    let first = fragments.first().ok_or(ReassembleError::Empty)?;
    if first.total == 0 {
        return Err(ReassembleError::ZeroTotal);
    }
    if let Some(bad) = fragments.iter().find(|f| f.total != first.total) {
        return Err(ReassembleError::InconsistentTotal {
            expected: first.total,
            found: bad.total,
        });
    }
    let total = first.total as usize;
    let mut slots: Vec<Option<&Fragment>> = vec![None; total];
    for f in fragments {
        let idx = f.index as usize;
        if idx >= total {
            return Err(ReassembleError::IndexOutOfRange {
                index: f.index,
                total: first.total,
            });
        }
        slots[idx] = Some(f);
    }
    let mut out = Vec::with_capacity(fragments.iter().map(|f| f.payload.len()).sum());
    for (i, s) in slots.iter().enumerate() {
        let f = s.ok_or(ReassembleError::MissingFragment {
            index: i as u16,
            total: first.total,
        })?;
        out.extend_from_slice(&f.payload);
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn roundtrip_over_constrained_protocols() {
        for proto in [Protocol::Zigbee, Protocol::Lora, Protocol::Sigfox] {
            let p = payload(1_000);
            let frags = fragment(proto, &p);
            let mtu = proto.max_payload_bytes().unwrap();
            assert_eq!(frags.len(), 1_000usize.div_ceil(mtu));
            assert!(frags.iter().all(|f| f.payload.len() <= mtu));
            assert_eq!(reassemble(&frags).unwrap(), p, "{}", proto.name());
        }
    }

    #[test]
    fn unconstrained_protocol_is_single_fragment() {
        let p = payload(1_000_000);
        let frags = fragment(Protocol::Fiber, &p);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].payload, p);
    }

    #[test]
    fn fragmentation_is_zero_copy() {
        let p = payload(444);
        let frags = fragment(Protocol::Lora, &p);
        // A Bytes slice of the same allocation shares its pointer range.
        let base = p.as_ptr() as usize;
        for f in &frags {
            let fp = f.payload.as_ptr() as usize;
            assert!(
                fp >= base && fp < base + p.len(),
                "fragment must alias the original buffer"
            );
        }
    }

    #[test]
    fn out_of_order_and_duplicate_fragments_reassemble() {
        let p = payload(500);
        let mut frags = fragment(Protocol::Zigbee, &p);
        frags.reverse();
        frags.push(frags[0].clone()); // duplicate
        assert_eq!(reassemble(&frags).unwrap(), p);
    }

    #[test]
    fn missing_fragment_fails_with_its_index() {
        let p = payload(500);
        let mut frags = fragment(Protocol::Zigbee, &p);
        let total = frags[0].total;
        frags.remove(2);
        assert_eq!(
            reassemble(&frags),
            Err(ReassembleError::MissingFragment { index: 2, total })
        );
    }

    #[test]
    fn malformed_headers_fail_with_context() {
        let p = payload(300);
        let mut frags = fragment(Protocol::Zigbee, &p);
        let expected = frags[0].total;
        frags[1].total = 99;
        assert_eq!(
            reassemble(&frags),
            Err(ReassembleError::InconsistentTotal {
                expected,
                found: 99
            })
        );
        assert_eq!(reassemble(&[]), Err(ReassembleError::Empty));
        let zero = Fragment {
            index: 0,
            total: 0,
            payload: payload(1),
        };
        assert_eq!(reassemble(&[zero]), Err(ReassembleError::ZeroTotal));
        let wild = Fragment {
            index: 7,
            total: 2,
            payload: payload(1),
        };
        let mut frags = fragment(Protocol::Zigbee, &payload(150));
        frags.push(wild);
        assert_eq!(
            reassemble(&frags),
            Err(ReassembleError::IndexOutOfRange { index: 7, total: 2 })
        );
        // Every variant renders a human-readable line for gateway logs.
        for e in [
            ReassembleError::Empty,
            ReassembleError::ZeroTotal,
            ReassembleError::InconsistentTotal {
                expected: 2,
                found: 99,
            },
            ReassembleError::IndexOutOfRange { index: 7, total: 2 },
            ReassembleError::MissingFragment { index: 2, total: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn empty_payload_is_one_empty_fragment() {
        let p = Bytes::new();
        let frags = fragment(Protocol::Lora, &p);
        assert_eq!(frags.len(), 1);
        assert_eq!(reassemble(&frags).unwrap(), p);
    }
}
