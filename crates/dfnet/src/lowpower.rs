//! Duty-cycle budgeting for unlicensed-band low-power protocols.
//!
//! EU 868 MHz regulation caps a LoRa/Sigfox device at 1 % air time
//! (and Sigfox additionally at ~140 uplinks/day). This is the physical
//! reason edge processing exists for audio workloads: a 16 kHz stream
//! cannot leave the building over LoRa, so the classifier must run on
//! the DF server (experiment E11).

use crate::link::Link;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// Sliding-window duty-cycle budget for one radio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DutyCycleBudget {
    /// Fraction of air time allowed (e.g. 0.01).
    pub limit: f64,
    /// Accounting window (regulations use 1 h).
    pub window: SimDuration,
    /// (end_time, air_time) of recent transmissions.
    history: Vec<(SimTime, SimDuration)>,
}

impl DutyCycleBudget {
    pub fn new(limit: f64, window: SimDuration) -> Self {
        assert!(limit > 0.0 && limit <= 1.0);
        assert!(window > SimDuration::ZERO);
        DutyCycleBudget {
            limit,
            window,
            history: Vec::new(),
        }
    }

    /// The EU 868 MHz budget: 1 % per rolling hour.
    pub fn eu868() -> Self {
        DutyCycleBudget::new(0.01, SimDuration::HOUR)
    }

    fn gc(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        self.history.retain(|&(end, _)| end > cutoff);
    }

    /// Air time already spent inside the window ending at `now`.
    pub fn spent(&mut self, now: SimTime) -> SimDuration {
        self.gc(now);
        self.history
            .iter()
            .fold(SimDuration::ZERO, |acc, &(_, d)| acc + d)
    }

    /// Whether a transmission with `air_time` may start at `now`.
    pub fn may_transmit(&mut self, now: SimTime, air_time: SimDuration) -> bool {
        let budget = self.window.mul_f64(self.limit);
        self.spent(now) + air_time <= budget
    }

    /// Record a transmission that started at `now`.
    pub fn transmit(&mut self, now: SimTime, air_time: SimDuration) {
        assert!(
            self.may_transmit(now, air_time),
            "duty cycle violation at {now}"
        );
        self.history.push((now + air_time, air_time));
    }

    /// Try to send `payload_bytes` over `link` at `now`: records the air
    /// time and returns the delivery duration, or `None` if the duty
    /// cycle forbids it.
    pub fn try_send(
        &mut self,
        now: SimTime,
        link: &Link,
        payload_bytes: usize,
    ) -> Option<SimDuration> {
        let air = link.air_time(payload_bytes);
        if !self.may_transmit(now, air) {
            return None;
        }
        self.transmit(now, air);
        Some(link.transfer_time(payload_bytes))
    }

    /// Maximum sustained application throughput under this budget, bit/s,
    /// for a given link.
    pub fn max_sustained_bps(&self, link: &Link) -> f64 {
        link.protocol.data_rate_bps() * link.efficiency * self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn budget_allows_then_blocks() {
        let mut b = DutyCycleBudget::eu868();
        let link = Link::new(Protocol::Lora);
        // 1 % of an hour = 36 s of air time. A 222 B frame ≈ 0.34 s air.
        let mut sent = 0;
        let mut now = t(0);
        while b.try_send(now, &link, 222).is_some() {
            sent += 1;
            now += SimDuration::from_millis(1); // immediate retry attempts
            if sent > 10_000 {
                panic!("budget never exhausted");
            }
        }
        // ≈ 36 s / 0.34 s ≈ 105 frames.
        assert!(
            (80..130).contains(&sent),
            "sent {sent} frames before exhaustion"
        );
    }

    #[test]
    fn budget_recovers_after_window() {
        let mut b = DutyCycleBudget::eu868();
        let link = Link::new(Protocol::Lora);
        while b.try_send(t(0), &link, 222).is_some() {}
        assert!(b.try_send(t(1), &link, 222).is_none());
        // One hour later the window has slid past all history.
        assert!(b.try_send(t(3_700), &link, 222).is_some());
    }

    #[test]
    fn raw_audio_streaming_is_impossible_over_lora() {
        // 16 kHz × 16-bit mono = 256 kbit/s; LoRa under 1 % duty cycle
        // sustains ~55 bit/s. The gap is ~4 orders of magnitude — the
        // paper's implicit case for in-situ processing [11].
        let b = DutyCycleBudget::eu868();
        let link = Link::new(Protocol::Lora);
        let audio_bps = 16_000.0 * 16.0;
        let sustained = b.max_sustained_bps(&link);
        assert!(
            audio_bps / sustained > 1_000.0,
            "audio {audio_bps} vs sustained {sustained}"
        );
    }

    #[test]
    fn classifier_verdicts_fit_easily() {
        // One 12-byte verdict per minute fits the Sigfox/LoRa budget.
        let mut b = DutyCycleBudget::eu868();
        let link = Link::new(Protocol::Lora);
        for minute in 0..120 {
            let now = t(minute * 60);
            assert!(
                b.try_send(now, &link, 12).is_some(),
                "verdict at minute {minute} blocked"
            );
        }
    }

    #[test]
    fn spent_decays_as_window_slides() {
        let mut b = DutyCycleBudget::eu868();
        let link = Link::new(Protocol::Lora);
        b.try_send(t(0), &link, 222).unwrap();
        let early = b.spent(t(10));
        assert!(early > SimDuration::ZERO);
        assert_eq!(b.spent(t(3_700)), SimDuration::ZERO);
    }
}
