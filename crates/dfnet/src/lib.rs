//! # dfnet — the network substrate
//!
//! §III-B: "low power networks and communication protocols (Zigbee,
//! Lora, Sigfox, Enocean etc.) are inevitable in edge computing", while
//! the DF servers themselves talk to the Qarnot middleware "by optic
//! fiber connection". The latency arguments of the DF3 model (direct vs
//! indirect local requests, edge vs cloud round-trips, vertical vs
//! horizontal offloading) are all network arguments, so this crate
//! provides:
//!
//! - [`link`]: point-to-point link models — propagation latency,
//!   serialisation at a data rate, per-message overhead.
//! - [`protocol`]: the concrete protocol catalogue (fiber, 10 GbE, home
//!   broadband, WiFi, Zigbee, LoRa, Sigfox, EnOcean, WAN) with
//!   realistic rates, latencies, and payload limits.
//! - [`lowpower`]: regulatory duty-cycle budgeting for LoRa/Sigfox
//!   (1 % duty cycle, 140 messages/day) — the constraint that makes
//!   "ship the raw audio to the cloud" impossible and local edge
//!   processing necessary.
//! - [`topology`]: a typed network graph (device / DF server / gateway /
//!   master / datacenter) with shortest-latency routing.
//! - [`segmentation`]: the §III-B isolation model — edge and DCC
//!   segments, and the VPN overlay of architecture class B.
//! - [`collective`]: allreduce/BSP cost models quantifying the
//!   conclusion's claim that tightly-coupled applications scale poorly
//!   across homes.

pub mod collective;
pub mod link;
pub mod lowpower;
pub mod message;
pub mod protocol;
pub mod segmentation;
pub mod topology;

pub use link::Link;
pub use lowpower::DutyCycleBudget;
pub use message::ReassembleError;
pub use protocol::Protocol;
pub use segmentation::{Segment, SegmentPolicy};
pub use topology::{NodeId, NodeKind, RouteError, Topology};
