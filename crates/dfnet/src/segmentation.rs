//! Network segmentation and isolation.
//!
//! §II-C: direct requests "can raise several security issues. For their
//! implementation, it is important to formulate a good resource sharing
//! and network segmentation model." §III-B: "to guarantee the privacy of
//! edge data, it is preferable to have two local networks, one for edge
//! and one for DCC", and architecture class B "put[s] the dedicated edge
//! servers in a (virtual) private network".
//!
//! [`SegmentPolicy`] is that model: nodes are assigned to segments, a
//! policy matrix states which segments may talk, and VPN-overlaid
//! segments pay an encapsulation latency/throughput cost.

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use std::collections::HashMap;

/// A network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// The edge-side local network (IoT devices, edge gateway, edge workers).
    Edge,
    /// The DCC-side local network (DCC gateway, DCC workers).
    Dcc,
    /// Shared management plane (master, monitoring).
    Management,
    /// The public Internet.
    Public,
}

/// Result of a reachability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reachability {
    /// Allowed at native speed.
    Allowed,
    /// Allowed through a VPN tunnel: add the given overhead per message.
    Tunnelled(SimDuration),
    /// Denied by policy.
    Denied,
}

/// A segmentation policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentPolicy {
    /// Allowed (from, to) segment pairs at native speed.
    allowed: Vec<(Segment, Segment)>,
    /// (from, to) pairs allowed through a VPN with its overhead.
    tunnelled: Vec<(Segment, Segment, SimDuration)>,
    /// Node → segment assignment.
    assignment: HashMap<usize, Segment>,
}

/// Per-message VPN encapsulation overhead (IPsec-class: encrypt +
/// encapsulate + tunnel hop).
pub const VPN_OVERHEAD: SimDuration = SimDuration::from_micros(400);

impl SegmentPolicy {
    /// The **shared-workers** policy of architecture class A (§III-B
    /// first class): one flat LAN — everything local may talk to
    /// everything local. Fast, but edge data shares wires with DCC jobs.
    pub fn shared_flat() -> Self {
        let all = [Segment::Edge, Segment::Dcc, Segment::Management];
        let mut allowed = Vec::new();
        for a in all {
            for b in all {
                allowed.push((a, b));
            }
        }
        allowed.push((Segment::Management, Segment::Public));
        allowed.push((Segment::Public, Segment::Management));
        // DCC requests arrive from the Internet.
        allowed.push((Segment::Public, Segment::Dcc));
        allowed.push((Segment::Dcc, Segment::Public));
        SegmentPolicy {
            allowed,
            tunnelled: Vec::new(),
            assignment: HashMap::new(),
        }
    }

    /// The **isolated** policy of architecture class B: edge and DCC are
    /// separate networks; the only cross-segment path is the management
    /// plane, and edge↔management runs inside a VPN. Edge never reaches
    /// the public Internet directly (privacy of edge data).
    pub fn isolated_vpn() -> Self {
        SegmentPolicy {
            allowed: vec![
                (Segment::Edge, Segment::Edge),
                (Segment::Dcc, Segment::Dcc),
                (Segment::Management, Segment::Management),
                (Segment::Dcc, Segment::Public),
                (Segment::Public, Segment::Dcc),
                (Segment::Management, Segment::Public),
                (Segment::Public, Segment::Management),
                (Segment::Dcc, Segment::Management),
                (Segment::Management, Segment::Dcc),
            ],
            tunnelled: vec![
                (Segment::Edge, Segment::Management, VPN_OVERHEAD),
                (Segment::Management, Segment::Edge, VPN_OVERHEAD),
            ],
            assignment: HashMap::new(),
        }
    }

    /// Assign a node (by id) to a segment.
    pub fn assign(&mut self, node: usize, segment: Segment) {
        self.assignment.insert(node, segment);
    }

    /// Segment of a node; panics if unassigned (an unassigned node is a
    /// configuration bug, not a policy decision).
    pub fn segment_of(&self, node: usize) -> Segment {
        *self
            .assignment
            .get(&node)
            .unwrap_or_else(|| panic!("node {node} has no segment assignment"))
    }

    /// Check segment-level reachability.
    pub fn check_segments(&self, from: Segment, to: Segment) -> Reachability {
        if self.allowed.contains(&(from, to)) {
            return Reachability::Allowed;
        }
        if let Some(&(_, _, overhead)) = self
            .tunnelled
            .iter()
            .find(|&&(f, t, _)| f == from && t == to)
        {
            return Reachability::Tunnelled(overhead);
        }
        Reachability::Denied
    }

    /// Check node-level reachability.
    pub fn check(&self, from_node: usize, to_node: usize) -> Reachability {
        self.check_segments(self.segment_of(from_node), self.segment_of(to_node))
    }

    /// Latency penalty for a message, or `None` if denied.
    pub fn overhead(&self, from_node: usize, to_node: usize) -> Option<SimDuration> {
        match self.check(from_node, to_node) {
            Reachability::Allowed => Some(SimDuration::ZERO),
            Reachability::Tunnelled(o) => Some(o),
            Reachability::Denied => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_flat_lets_edge_and_dcc_mix() {
        let p = SegmentPolicy::shared_flat();
        assert_eq!(
            p.check_segments(Segment::Edge, Segment::Dcc),
            Reachability::Allowed
        );
        assert_eq!(
            p.check_segments(Segment::Dcc, Segment::Edge),
            Reachability::Allowed
        );
    }

    #[test]
    fn isolated_denies_edge_dcc_crossing() {
        // The §III-B privacy requirement for class B.
        let p = SegmentPolicy::isolated_vpn();
        assert_eq!(
            p.check_segments(Segment::Edge, Segment::Dcc),
            Reachability::Denied
        );
        assert_eq!(
            p.check_segments(Segment::Dcc, Segment::Edge),
            Reachability::Denied
        );
    }

    #[test]
    fn isolated_edge_never_reaches_public() {
        let p = SegmentPolicy::isolated_vpn();
        assert_eq!(
            p.check_segments(Segment::Edge, Segment::Public),
            Reachability::Denied
        );
        assert_eq!(
            p.check_segments(Segment::Public, Segment::Edge),
            Reachability::Denied
        );
    }

    #[test]
    fn isolated_edge_reaches_management_via_vpn() {
        let p = SegmentPolicy::isolated_vpn();
        match p.check_segments(Segment::Edge, Segment::Management) {
            Reachability::Tunnelled(o) => assert_eq!(o, VPN_OVERHEAD),
            r => panic!("expected VPN tunnel, got {r:?}"),
        }
    }

    #[test]
    fn node_level_checks_follow_assignment() {
        let mut p = SegmentPolicy::isolated_vpn();
        p.assign(0, Segment::Edge);
        p.assign(1, Segment::Dcc);
        p.assign(2, Segment::Management);
        assert_eq!(p.check(0, 1), Reachability::Denied);
        assert_eq!(p.overhead(0, 1), None);
        assert_eq!(p.overhead(1, 2), Some(SimDuration::ZERO));
        assert_eq!(p.overhead(0, 2), Some(VPN_OVERHEAD));
    }

    #[test]
    fn dcc_keeps_internet_access_in_both_policies() {
        for p in [SegmentPolicy::shared_flat(), SegmentPolicy::isolated_vpn()] {
            assert_eq!(
                p.check_segments(Segment::Public, Segment::Dcc),
                Reachability::Allowed
            );
        }
    }

    #[test]
    #[should_panic]
    fn unassigned_node_panics() {
        let p = SegmentPolicy::shared_flat();
        p.segment_of(42);
    }
}
