//! The protocol catalogue.
//!
//! Rates and latencies are representative figures for each technology,
//! chosen at the orders of magnitude that drive the paper's arguments:
//! a LoRa uplink is ~5 orders of magnitude slower than the fiber that
//! connects a Q.rad to the Qarnot middleware.

use serde::{Deserialize, Serialize};

/// A communication technology with first-order performance parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Metro optic fiber (DF server ↔ middleware, per the paper).
    Fiber,
    /// In-building Gigabit Ethernet LAN.
    EthernetLan,
    /// 10 GbE (Asperitas boiler interconnect).
    Ethernet10G,
    /// Residential broadband (ADSL/cable class).
    HomeBroadband,
    /// In-building WiFi.
    Wifi,
    /// IEEE 802.15.4 / Zigbee.
    Zigbee,
    /// LoRaWAN (SF7-class uplink).
    Lora,
    /// Sigfox ultra-narrow-band.
    Sigfox,
    /// EnOcean energy-harvesting radio.
    Enocean,
    /// Wide-area Internet path to a remote cloud datacenter.
    WanInternet,
}

impl Protocol {
    /// Usable data rate, bits per second.
    pub fn data_rate_bps(&self) -> f64 {
        match self {
            Protocol::Fiber => 1e9,
            Protocol::EthernetLan => 1e9,
            Protocol::Ethernet10G => 10e9,
            Protocol::HomeBroadband => 20e6,
            Protocol::Wifi => 100e6,
            Protocol::Zigbee => 250e3,
            Protocol::Lora => 5.5e3,
            Protocol::Sigfox => 100.0,
            Protocol::Enocean => 125e3,
            Protocol::WanInternet => 100e6,
        }
    }

    /// One-way base latency (propagation + access + stack), seconds.
    pub fn base_latency_s(&self) -> f64 {
        match self {
            Protocol::Fiber => 1.5e-3,
            Protocol::EthernetLan => 0.2e-3,
            Protocol::Ethernet10G => 0.05e-3,
            Protocol::HomeBroadband => 12e-3,
            Protocol::Wifi => 3e-3,
            Protocol::Zigbee => 8e-3,
            Protocol::Lora => 80e-3,
            Protocol::Sigfox => 2.0,
            Protocol::Enocean => 5e-3,
            Protocol::WanInternet => 20e-3,
        }
    }

    /// Maximum application payload per frame, bytes (`None` = unlimited
    /// for our purposes; large transfers are fragmented transparently).
    pub fn max_payload_bytes(&self) -> Option<usize> {
        match self {
            Protocol::Zigbee => Some(100),
            Protocol::Lora => Some(222),
            Protocol::Sigfox => Some(12),
            Protocol::Enocean => Some(14),
            _ => None,
        }
    }

    /// Per-frame protocol overhead, bytes.
    pub fn frame_overhead_bytes(&self) -> usize {
        match self {
            Protocol::Zigbee => 27,
            Protocol::Lora => 13,
            Protocol::Sigfox => 14,
            Protocol::Enocean => 7,
            Protocol::WanInternet | Protocol::HomeBroadband => 40,
            _ => 18,
        }
    }

    /// Whether this is a low-power IoT technology (the class §III-B says
    /// is "inevitable in edge computing").
    pub fn is_low_power(&self) -> bool {
        matches!(
            self,
            Protocol::Zigbee | Protocol::Lora | Protocol::Sigfox | Protocol::Enocean
        )
    }

    /// Regulatory duty cycle limit as a fraction of air time (EU 868 MHz
    /// band for LoRa, Sigfox), if any.
    pub fn duty_cycle_limit(&self) -> Option<f64> {
        match self {
            Protocol::Lora | Protocol::Sigfox => Some(0.01),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Fiber => "fiber",
            Protocol::EthernetLan => "ethernet-lan",
            Protocol::Ethernet10G => "10gbe",
            Protocol::HomeBroadband => "home-broadband",
            Protocol::Wifi => "wifi",
            Protocol::Zigbee => "zigbee",
            Protocol::Lora => "lora",
            Protocol::Sigfox => "sigfox",
            Protocol::Enocean => "enocean",
            Protocol::WanInternet => "wan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_span_the_expected_orders_of_magnitude() {
        assert!(Protocol::Fiber.data_rate_bps() / Protocol::Lora.data_rate_bps() > 1e5);
        assert!(Protocol::Sigfox.data_rate_bps() < 1e3);
        assert!(
            Protocol::Ethernet10G.data_rate_bps() == 10.0 * Protocol::EthernetLan.data_rate_bps()
        );
    }

    #[test]
    fn low_power_classification() {
        // The four protocols §III-B names.
        for p in [
            Protocol::Zigbee,
            Protocol::Lora,
            Protocol::Sigfox,
            Protocol::Enocean,
        ] {
            assert!(p.is_low_power(), "{} should be low-power", p.name());
        }
        for p in [Protocol::Fiber, Protocol::Wifi, Protocol::WanInternet] {
            assert!(!p.is_low_power());
        }
    }

    #[test]
    fn constrained_payloads() {
        assert_eq!(Protocol::Sigfox.max_payload_bytes(), Some(12));
        assert_eq!(Protocol::Lora.max_payload_bytes(), Some(222));
        assert_eq!(Protocol::Fiber.max_payload_bytes(), None);
    }

    #[test]
    fn duty_cycle_only_on_unlicensed_wan_bands() {
        assert_eq!(Protocol::Lora.duty_cycle_limit(), Some(0.01));
        assert_eq!(Protocol::Sigfox.duty_cycle_limit(), Some(0.01));
        assert_eq!(Protocol::Zigbee.duty_cycle_limit(), None);
        assert_eq!(Protocol::Fiber.duty_cycle_limit(), None);
    }

    #[test]
    fn wan_slower_than_lan() {
        assert!(
            Protocol::WanInternet.base_latency_s() > Protocol::EthernetLan.base_latency_s() * 10.0
        );
    }
}
