//! Collective-communication cost models for tightly-coupled parallel
//! applications.
//!
//! The paper's conclusion: "Tightly coupled applications will have poor
//! network performance on data furnace systems." A DF cluster's workers
//! sit in different homes behind metro fiber (milliseconds apart); a
//! datacenter rack sits on 10 GbE (tens of microseconds). For a
//! bulk-synchronous (BSP) application that allreduces every iteration,
//! that latency gap multiplies by `log₂ P` each step and dominates the
//! run — quantified by experiment E19.
//!
//! Costs use the standard LogP-flavoured tree model:
//! `T_allreduce(P, n) = 2·⌈log₂ P⌉·(α + n/β)` with α the one-way link
//! latency and β the bandwidth.

use crate::link::Link;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Allreduce of `payload_bytes` across `p` ranks connected by `link`
/// (recursive-doubling tree: up and down).
pub fn allreduce_time(link: &Link, p: usize, payload_bytes: usize) -> SimDuration {
    assert!(p >= 1);
    if p == 1 {
        return SimDuration::ZERO;
    }
    let rounds = (p as f64).log2().ceil() as i64;
    link.transfer_time(payload_bytes) * (2 * rounds)
}

/// A bulk-synchronous iterative application.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BspApp {
    /// Total compute per iteration, Gop (divided across ranks).
    pub work_per_iter_gops: f64,
    /// Allreduce payload per iteration, bytes.
    pub reduce_bytes: usize,
    /// Iterations to convergence.
    pub iterations: u64,
}

impl BspApp {
    /// A conjugate-gradient-class solver: 2 Gop and an 8 kB reduction
    /// per iteration (a few dot products over a mid-sized sparse
    /// system), 500 iterations.
    pub fn cg_solver() -> Self {
        BspApp {
            work_per_iter_gops: 2.0,
            reduce_bytes: 8_192,
            iterations: 500,
        }
    }

    /// An embarrassingly-parallel bag (no communication) with the same
    /// total work, for contrast.
    pub fn embarrassing(total_gops: f64) -> Self {
        BspApp {
            work_per_iter_gops: total_gops,
            reduce_bytes: 0,
            iterations: 1,
        }
    }

    /// Wall-clock on `p` ranks of `gops_per_rank` connected by `link`.
    pub fn runtime(&self, link: &Link, p: usize, gops_per_rank: f64) -> SimDuration {
        assert!(p >= 1 && gops_per_rank > 0.0);
        let compute_s = self.work_per_iter_gops / (p as f64 * gops_per_rank);
        let comm = if self.reduce_bytes > 0 {
            allreduce_time(link, p, self.reduce_bytes)
        } else {
            SimDuration::ZERO
        };
        (SimDuration::from_secs_f64(compute_s) + comm) * self.iterations as i64
    }

    /// Speedup over the 1-rank runtime.
    pub fn speedup(&self, link: &Link, p: usize, gops_per_rank: f64) -> f64 {
        let t1 = self.runtime(link, 1, gops_per_rank);
        let tp = self.runtime(link, p, gops_per_rank);
        t1 / tp
    }

    /// The rank count beyond which adding ranks stops helping (first
    /// `p` in `candidates` whose runtime exceeds the previous one).
    pub fn scaling_limit(&self, link: &Link, candidates: &[usize], gops_per_rank: f64) -> usize {
        assert!(!candidates.is_empty());
        let mut best_p = candidates[0];
        let mut best_t = self.runtime(link, best_p, gops_per_rank);
        for &p in &candidates[1..] {
            let t = self.runtime(link, p, gops_per_rank);
            if t < best_t {
                best_t = t;
                best_p = p;
            }
        }
        best_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    fn df_link() -> Link {
        // Workers in different homes: each hop crosses the metro fiber
        // to the PoP and back down (≈3 ms one-way in total).
        Link::new(Protocol::Fiber).with_extra_latency(0.0015)
    }

    fn dc_link() -> Link {
        Link::new(Protocol::Ethernet10G)
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let l = dc_link();
        let t2 = allreduce_time(&l, 2, 8_192);
        let t16 = allreduce_time(&l, 16, 8_192);
        let t17 = allreduce_time(&l, 17, 8_192);
        assert_eq!(t16, t2 * 4, "log₂16 = 4 rounds");
        assert_eq!(t17, t2 * 5, "ceil(log₂17) = 5 rounds");
        assert_eq!(allreduce_time(&l, 1, 8_192), SimDuration::ZERO);
    }

    #[test]
    fn tightly_coupled_scales_in_the_dc_not_on_df() {
        // The conclusion's claim, quantified.
        let app = BspApp::cg_solver();
        let df_speedup = app.speedup(&df_link(), 64, 3.0);
        let dc_speedup = app.speedup(&dc_link(), 64, 3.0);
        assert!(
            dc_speedup > 3.0 * df_speedup,
            "DC speedup {dc_speedup:.1} vs DF {df_speedup:.1} at P=64"
        );
        assert!(dc_speedup > 30.0, "DC should scale well: {dc_speedup:.1}");
        assert!(df_speedup < 20.0, "DF should stall: {df_speedup:.1}");
    }

    #[test]
    fn df_scaling_limit_is_low() {
        let app = BspApp::cg_solver();
        let candidates = [1, 2, 4, 8, 16, 32, 64, 128];
        let df_limit = app.scaling_limit(&df_link(), &candidates, 3.0);
        let dc_limit = app.scaling_limit(&dc_link(), &candidates, 3.0);
        assert!(
            df_limit < dc_limit,
            "DF limit {df_limit} should be below DC limit {dc_limit}"
        );
        assert!(df_limit <= 64);
    }

    #[test]
    fn embarrassing_work_scales_anywhere() {
        let app = BspApp::embarrassing(100_000.0);
        let df = app.speedup(&df_link(), 64, 3.0);
        assert!(
            (df - 64.0).abs() < 1.0,
            "no communication → linear speedup even on DF: {df:.1}"
        );
    }

    #[test]
    fn runtime_is_monotone_in_iterations_and_payload() {
        let l = df_link();
        let base = BspApp::cg_solver();
        let mut heavy = base;
        heavy.reduce_bytes *= 8;
        assert!(heavy.runtime(&l, 16, 3.0) > base.runtime(&l, 16, 3.0));
        let mut longer = base;
        longer.iterations *= 2;
        assert_eq!(longer.runtime(&l, 16, 3.0), base.runtime(&l, 16, 3.0) * 2);
    }
}
