//! The local-vs-remote decision system.
//!
//! §III-A: "we do believe that the main challenge still remains in the
//! calibration of a decision system that states what to do locally and
//! remotely (on a remote DF server or in datacenter)." We model it as a
//! completion-time estimator: for each candidate placement, estimate
//! `network + queueing + service`, weight by an energy preference, and
//! pick the minimum. §IV's resource-oriented view — "the quality of the
//! delivered services depends on the resources" — is exactly what the
//! estimate encodes.

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use workloads::Job;

/// A candidate placement for a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Run on the local cluster.
    Local,
    /// Run on sibling cluster `cluster`.
    Sibling { cluster: usize },
    /// Run in the remote datacenter.
    Datacenter,
}

/// Performance estimate of one candidate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Candidate {
    pub placement: Placement,
    /// One-way input transfer + return-path time.
    pub network: SimDuration,
    /// Expected wait before cores are available.
    pub queueing: SimDuration,
    /// Service time on this resource (speed-adjusted).
    pub service: SimDuration,
    /// Marginal energy, J (a DF server's heat is useful in winter, so
    /// its effective energy cost can be ~0; a DC burns chilled power).
    pub energy_j: f64,
}

impl Candidate {
    /// Estimated completion latency.
    pub fn completion(&self) -> SimDuration {
        self.network + self.queueing + self.service
    }
}

/// The scoring policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlacementScorer {
    /// Seconds of latency a kilojoule of energy is worth. 0 = latency-
    /// only decisions; larger = greener placements win more often.
    pub s_per_kj: f64,
}

impl PlacementScorer {
    /// Latency-only scoring.
    pub fn latency_only() -> Self {
        PlacementScorer { s_per_kj: 0.0 }
    }

    /// Energy-aware scoring (used by experiment E6's hybrid platform).
    pub fn energy_aware(s_per_kj: f64) -> Self {
        assert!(s_per_kj >= 0.0);
        PlacementScorer { s_per_kj }
    }

    /// Score: lower is better.
    pub fn score(&self, c: &Candidate) -> f64 {
        c.completion().as_secs_f64() + self.s_per_kj * c.energy_j / 1_000.0
    }

    /// Pick the best feasible candidate for `job`: deadline-infeasible
    /// candidates are discarded first; among the rest the lowest score
    /// wins; `None` if no candidate can meet a deadline the job carries.
    pub fn choose(&self, job: &Job, candidates: &[Candidate]) -> Option<Placement> {
        assert!(!candidates.is_empty(), "no candidates supplied");
        let feasible: Vec<&Candidate> = match job.deadline {
            Some(d) => candidates.iter().filter(|c| c.completion() <= d).collect(),
            None => candidates.iter().collect(),
        };
        feasible
            .into_iter()
            .min_by(|a, b| {
                self.score(a)
                    .partial_cmp(&self.score(b))
                    .expect("NaN score")
            })
            .map(|c| c.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use workloads::{Flow, JobId};

    fn job(deadline_ms: Option<i64>) -> Job {
        Job {
            id: JobId(0),
            flow: Flow::EdgeIndirect,
            arrival: SimTime::ZERO,
            work_gops: 1.0,
            cores: 1,
            deadline: deadline_ms.map(SimDuration::from_millis),
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    fn cand(p: Placement, net_ms: i64, queue_ms: i64, svc_ms: i64, energy_j: f64) -> Candidate {
        Candidate {
            placement: p,
            network: SimDuration::from_millis(net_ms),
            queueing: SimDuration::from_millis(queue_ms),
            service: SimDuration::from_millis(svc_ms),
            energy_j,
        }
    }

    #[test]
    fn idle_local_beats_cloud_for_interactive_jobs() {
        let scorer = PlacementScorer::latency_only();
        let local = cand(Placement::Local, 1, 0, 50, 0.0);
        let dc = cand(Placement::Datacenter, 45, 0, 20, 100.0);
        assert_eq!(
            scorer.choose(&job(None), &[local, dc]),
            Some(Placement::Local)
        );
    }

    #[test]
    fn congested_local_loses_to_cloud() {
        // The §III-B case for vertical offloading: a full cluster makes
        // the fast WAN + idle DC the better estimate.
        let scorer = PlacementScorer::latency_only();
        let local = cand(Placement::Local, 1, 5_000, 50, 0.0);
        let dc = cand(Placement::Datacenter, 45, 0, 20, 100.0);
        assert_eq!(
            scorer.choose(&job(None), &[local, dc]),
            Some(Placement::Datacenter)
        );
    }

    #[test]
    fn deadline_filters_infeasible_candidates() {
        let scorer = PlacementScorer::latency_only();
        let local = cand(Placement::Local, 1, 100, 50, 0.0); // 151 ms
        let dc = cand(Placement::Datacenter, 45, 0, 20, 0.0); // 65 ms
                                                              // 100 ms budget: only the DC is feasible even though local would
                                                              // win without the deadline? No — local is 151 ms and DC 65 ms, so
                                                              // DC wins either way; tighten to force the filter to matter:
        let fast_local = cand(Placement::Local, 1, 0, 50, 0.0); // 51 ms
        assert_eq!(
            scorer.choose(&job(Some(100)), &[local, dc]),
            Some(Placement::Datacenter)
        );
        assert_eq!(
            scorer.choose(&job(Some(60)), &[fast_local, dc]),
            Some(Placement::Local)
        );
        // Nothing feasible.
        assert_eq!(scorer.choose(&job(Some(10)), &[local, dc]), None);
    }

    #[test]
    fn energy_awareness_flips_close_calls() {
        // DC is 10 ms faster but burns 200 kJ more; at 0.1 s/kJ the DF
        // placement wins.
        let latency = PlacementScorer::latency_only();
        let green = PlacementScorer::energy_aware(0.1);
        let local = cand(Placement::Local, 1, 0, 100, 0.0);
        let dc = cand(Placement::Datacenter, 41, 0, 50, 200_000.0);
        assert_eq!(
            latency.choose(&job(None), &[local, dc]),
            Some(Placement::Datacenter)
        );
        assert_eq!(
            green.choose(&job(None), &[local, dc]),
            Some(Placement::Local)
        );
    }

    #[test]
    fn sibling_placement_can_win() {
        let scorer = PlacementScorer::latency_only();
        let local = cand(Placement::Local, 0, 900, 100, 0.0);
        let sib = cand(Placement::Sibling { cluster: 3 }, 10, 0, 100, 0.0);
        let dc = cand(Placement::Datacenter, 45, 0, 80, 0.0);
        assert_eq!(
            scorer.choose(&job(None), &[local, sib, dc]),
            Some(Placement::Sibling { cluster: 3 })
        );
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panic() {
        PlacementScorer::latency_only().choose(&job(None), &[]);
    }
}
