//! Peak management: preempt, offload (vertically or horizontally), or
//! delay.
//!
//! §III-B enumerates the options when a cluster is full: preemption
//! (bounded by cluster size), **vertical offloading** "towards
//! datacenter nodes", **horizontal offloading** "towards another
//! cluster of DF servers" (which "raises questions about the fairness
//! of cooperation between clusters [16]"), or "not to scale but to
//! delay the processing". [`PeakPolicy`] encodes a strategy; the
//! platform consults it whenever placement fails.

use serde::{Deserialize, Serialize};
use workloads::Job;

/// Load snapshot of one cluster, as seen by the decision point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterLoad {
    pub cluster: usize,
    pub total_cores: usize,
    pub busy_cores: usize,
    /// Cores held by preemptible (DCC) tasks.
    pub preemptible_cores: usize,
    pub queued_edge: usize,
    pub queued_dcc: usize,
}

impl ClusterLoad {
    pub fn free_cores(&self) -> usize {
        self.total_cores - self.busy_cores
    }

    pub fn utilisation(&self) -> f64 {
        if self.total_cores == 0 {
            return 1.0;
        }
        self.busy_cores as f64 / self.total_cores as f64
    }
}

/// What to do with a job that cannot be placed locally right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeakAction {
    /// Preempt DCC tasks locally to make room.
    Preempt,
    /// Send to the datacenter.
    OffloadVertical,
    /// Send to sibling cluster `target`.
    OffloadHorizontal { target: usize },
    /// Keep it queued locally.
    Delay,
    /// Refuse it outright (admission failure).
    Reject,
}

impl PeakAction {
    /// Stable snake_case name for telemetry and run reports.
    pub fn label(&self) -> &'static str {
        match self {
            PeakAction::Preempt => "preempt",
            PeakAction::OffloadVertical => "offload_vertical",
            PeakAction::OffloadHorizontal { .. } => "offload_horizontal",
            PeakAction::Delay => "delay",
            PeakAction::Reject => "reject",
        }
    }
}

/// A peak-management strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PeakPolicy {
    /// Always delay (the "not to scale" option).
    AlwaysDelay,
    /// Preempt for edge jobs when enough preemptible cores exist,
    /// otherwise delay. DCC jobs are always delayed.
    PreemptFirst,
    /// Offload to the datacenter whenever local placement fails.
    VerticalFirst,
    /// Offload to the least-loaded sibling if it has room; fall back to
    /// vertical offload. `max_sibling_util` guards against dumping work
    /// on an equally-stressed neighbour (the ref [16] fairness concern).
    HorizontalFirst { max_sibling_util: f64 },
    /// Preempt for edge, vertical for DCC — the hybrid §III-A sketches.
    Hybrid,
}

impl PeakPolicy {
    /// Stable snake_case name for telemetry and run reports.
    pub fn label(&self) -> &'static str {
        match self {
            PeakPolicy::AlwaysDelay => "always_delay",
            PeakPolicy::PreemptFirst => "preempt_first",
            PeakPolicy::VerticalFirst => "vertical_first",
            PeakPolicy::HorizontalFirst { .. } => "horizontal_first",
            PeakPolicy::Hybrid => "hybrid",
        }
    }
}

impl PeakPolicy {
    /// Decide the action for `job` on `local`, given sibling cluster
    /// loads (`siblings` excludes the local cluster).
    pub fn decide(&self, job: &Job, local: &ClusterLoad, siblings: &[ClusterLoad]) -> PeakAction {
        match self {
            PeakPolicy::AlwaysDelay => PeakAction::Delay,
            PeakPolicy::PreemptFirst => {
                if job.is_edge() && local.preemptible_cores >= job.cores {
                    PeakAction::Preempt
                } else {
                    PeakAction::Delay
                }
            }
            PeakPolicy::VerticalFirst => PeakAction::OffloadVertical,
            PeakPolicy::HorizontalFirst { max_sibling_util } => {
                match best_sibling(job, siblings, *max_sibling_util) {
                    Some(target) => PeakAction::OffloadHorizontal { target },
                    None => PeakAction::OffloadVertical,
                }
            }
            PeakPolicy::Hybrid => {
                if job.is_edge() {
                    if local.preemptible_cores >= job.cores {
                        PeakAction::Preempt
                    } else {
                        match best_sibling(job, siblings, 0.9) {
                            Some(target) => PeakAction::OffloadHorizontal { target },
                            None => PeakAction::Reject, // an edge job in the DC misses its deadline anyway
                        }
                    }
                } else {
                    PeakAction::OffloadVertical
                }
            }
        }
    }
}

/// The least-utilised sibling that has room for the job and is below the
/// utilisation cap.
fn best_sibling(job: &Job, siblings: &[ClusterLoad], max_util: f64) -> Option<usize> {
    siblings
        .iter()
        .filter(|s| s.free_cores() >= job.cores && s.utilisation() <= max_util)
        .min_by(|a, b| {
            a.utilisation()
                .partial_cmp(&b.utilisation())
                .expect("NaN utilisation")
                .then(a.cluster.cmp(&b.cluster))
        })
        .map(|s| s.cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{SimDuration, SimTime};
    use workloads::{Flow, JobId};

    fn edge_job(cores: usize) -> Job {
        Job {
            id: JobId(1),
            flow: Flow::EdgeIndirect,
            arrival: SimTime::ZERO,
            work_gops: 10.0,
            cores,
            deadline: Some(SimDuration::SECOND),
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    fn dcc_job(cores: usize) -> Job {
        Job {
            flow: Flow::Dcc,
            deadline: None,
            ..edge_job(cores)
        }
    }

    fn load(cluster: usize, total: usize, busy: usize, preemptible: usize) -> ClusterLoad {
        ClusterLoad {
            cluster,
            total_cores: total,
            busy_cores: busy,
            preemptible_cores: preemptible,
            queued_edge: 0,
            queued_dcc: 0,
        }
    }

    #[test]
    fn preempt_first_only_preempts_for_edge() {
        let p = PeakPolicy::PreemptFirst;
        let local = load(0, 16, 16, 8);
        assert_eq!(p.decide(&edge_job(2), &local, &[]), PeakAction::Preempt);
        assert_eq!(p.decide(&dcc_job(2), &local, &[]), PeakAction::Delay);
        // Not enough preemptible cores → delay.
        assert_eq!(p.decide(&edge_job(12), &local, &[]), PeakAction::Delay);
    }

    #[test]
    fn horizontal_picks_least_loaded_sibling() {
        let p = PeakPolicy::HorizontalFirst {
            max_sibling_util: 0.8,
        };
        let local = load(0, 16, 16, 0);
        let siblings = [load(1, 16, 12, 0), load(2, 16, 4, 0), load(3, 16, 8, 0)];
        assert_eq!(
            p.decide(&edge_job(2), &local, &siblings),
            PeakAction::OffloadHorizontal { target: 2 }
        );
    }

    #[test]
    fn horizontal_respects_utilisation_cap_and_falls_back() {
        let p = PeakPolicy::HorizontalFirst {
            max_sibling_util: 0.5,
        };
        let local = load(0, 16, 16, 0);
        let siblings = [load(1, 16, 12, 0), load(2, 16, 10, 0)];
        // All siblings above 50 % → vertical fallback.
        assert_eq!(
            p.decide(&dcc_job(2), &local, &siblings),
            PeakAction::OffloadVertical
        );
    }

    #[test]
    fn horizontal_requires_room() {
        let p = PeakPolicy::HorizontalFirst {
            max_sibling_util: 0.99,
        };
        let local = load(0, 16, 16, 0);
        let siblings = [load(1, 16, 15, 0)]; // only 1 free core
        assert_eq!(
            p.decide(&edge_job(4), &local, &siblings),
            PeakAction::OffloadVertical
        );
    }

    #[test]
    fn hybrid_splits_by_flow() {
        let p = PeakPolicy::Hybrid;
        let local = load(0, 16, 16, 4);
        let siblings = [load(1, 16, 2, 0)];
        assert_eq!(
            p.decide(&edge_job(2), &local, &siblings),
            PeakAction::Preempt
        );
        assert_eq!(
            p.decide(&dcc_job(2), &local, &siblings),
            PeakAction::OffloadVertical
        );
        // Edge too wide to preempt → horizontal.
        assert_eq!(
            p.decide(&edge_job(8), &local, &siblings),
            PeakAction::OffloadHorizontal { target: 1 }
        );
        // No sibling has room → reject rather than ship edge to the DC.
        let full_siblings = [load(1, 16, 16, 0)];
        assert_eq!(
            p.decide(&edge_job(8), &local, &full_siblings),
            PeakAction::Reject
        );
    }

    #[test]
    fn utilisation_of_empty_cluster_is_full() {
        assert_eq!(load(0, 0, 0, 0).utilisation(), 1.0);
    }
}
