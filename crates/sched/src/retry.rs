//! Retry budgets and flapping-worker quarantine — the recovery-policy
//! half of the fault layer.
//!
//! Edge requests that a stressed or partially-dark platform cannot
//! place are not dropped on the floor: [`RetryPolicy`] grants each job
//! a bounded number of re-submissions with exponential backoff, and the
//! platform abandons a request only once its budget or its deadline is
//! exhausted (both outcomes are counted — nothing is silently lost).
//! [`QuarantinePolicy`] + [`FlapTracker`] keep a crash-looping worker
//! out of service longer than its nominal repair time, so the fleet is
//! not repeatedly re-orphaning the same jobs.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// Per-job retry budget with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum re-submissions per job (0 disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each attempt.
    pub backoff_base: SimDuration,
    /// Backoff cap.
    pub backoff_max: SimDuration,
}

impl RetryPolicy {
    /// No retries: every terminal rejection is final.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 0,
            backoff_base: SimDuration::ZERO,
            backoff_max: SimDuration::ZERO,
        }
    }

    /// Three attempts starting at 50 ms — sized for sub-second edge
    /// deadlines (a retry that cannot fire before the deadline is never
    /// scheduled).
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(50),
            backoff_max: SimDuration::from_secs(2),
        }
    }

    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// Deterministic backoff before retry number `attempt` (1-based):
    /// `base × 2^(attempt-1)`, capped at `backoff_max`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        assert!(attempt >= 1, "attempts are 1-based");
        let factor = 2f64.powi((attempt - 1).min(30) as i32);
        self.backoff_base.mul_f64(factor).min(self.backoff_max)
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts > 0 {
            if self.backoff_base <= SimDuration::ZERO {
                return Err("retry backoff base must be positive".into());
            }
            if self.backoff_max < self.backoff_base {
                return Err("retry backoff cap below base".into());
            }
        }
        Ok(())
    }
}

/// When a worker fails `threshold` times within `window`, extend its
/// repair turnaround by `extra_downtime` (a flapping board is pulled
/// for bench diagnosis rather than hot-swapped in place).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantinePolicy {
    pub threshold: u32,
    pub window: SimDuration,
    pub extra_downtime: SimDuration,
}

impl QuarantinePolicy {
    /// Three failures in a day → 12 h out of rotation.
    pub fn standard() -> Self {
        QuarantinePolicy {
            threshold: 3,
            window: SimDuration::DAY,
            extra_downtime: SimDuration::from_hours(12),
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.threshold == 0 {
            return Err("quarantine threshold must be ≥ 1".into());
        }
        if self.window <= SimDuration::ZERO {
            return Err("quarantine window must be positive".into());
        }
        if self.extra_downtime.is_negative() {
            return Err("quarantine extra downtime cannot be negative".into());
        }
        Ok(())
    }
}

/// Sliding-window failure history per worker slot, driving
/// [`QuarantinePolicy`] decisions.
#[derive(Debug, Clone)]
pub struct FlapTracker {
    history: Vec<Vec<SimTime>>,
}

impl FlapTracker {
    pub fn new(n_slots: usize) -> Self {
        FlapTracker {
            history: vec![Vec::new(); n_slots],
        }
    }

    /// Record a failure of `slot` at `now`; returns `true` when the
    /// failure (including this one) crosses the quarantine threshold
    /// within the policy window.
    pub fn record(&mut self, slot: usize, now: SimTime, policy: &QuarantinePolicy) -> bool {
        let h = &mut self.history[slot];
        h.retain(|&t| now.saturating_since(t) <= policy.window);
        h.push(now);
        h.len() as u32 >= policy.threshold
    }

    /// Failures currently inside the window for `slot` (tests/metrics).
    pub fn recent(&self, slot: usize) -> usize {
        self.history[slot].len()
    }
}

impl simcore::snapshot::Snapshot for FlapTracker {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.history.encode(w);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(FlapTracker {
            history: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff(1), SimDuration::from_millis(50));
        assert_eq!(p.backoff(2), SimDuration::from_millis(100));
        assert_eq!(p.backoff(3), SimDuration::from_millis(200));
        // Far past the cap: 50 ms × 2^20 ≫ 2 s.
        assert_eq!(p.backoff(21), SimDuration::from_secs(2));
    }

    #[test]
    fn disabled_policy_validates_and_is_inert() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn bad_policies_are_rejected() {
        let mut p = RetryPolicy::standard();
        p.backoff_base = SimDuration::ZERO;
        assert!(p.validate().is_err());
        let mut q = QuarantinePolicy::standard();
        q.threshold = 0;
        assert!(q.validate().is_err());
    }

    #[test]
    fn flap_tracker_fires_inside_window_only() {
        let q = QuarantinePolicy {
            threshold: 3,
            window: SimDuration::from_hours(1),
            extra_downtime: SimDuration::from_hours(6),
        };
        let mut f = FlapTracker::new(2);
        let h = SimTime::ZERO + SimDuration::from_hours(1);
        assert!(!f.record(0, SimTime::ZERO, &q));
        assert!(!f.record(0, SimTime::ZERO + SimDuration::from_secs(600), &q));
        // Third failure within the hour → quarantine.
        assert!(f.record(0, SimTime::ZERO + SimDuration::from_secs(1_200), &q));
        // A different slot is independent.
        assert!(!f.record(1, SimTime::ZERO + SimDuration::from_secs(1_200), &q));
        // Much later, the window has slid past the old failures.
        assert!(!f.record(0, h + SimDuration::from_hours(5), &q));
        assert_eq!(f.recent(0), 1);
    }
}
