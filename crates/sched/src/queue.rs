//! Ready-queue disciplines.

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use std::collections::VecDeque;
use workloads::Job;

/// Queueing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// First-come first-served.
    Fifo,
    /// Earliest (absolute) deadline first; deadline-free jobs go last,
    /// FIFO among themselves.
    Edf,
    /// Shortest job first (by remaining work).
    Sjf,
}

/// A ready queue of jobs under a discipline.
#[derive(Debug, Clone)]
pub struct ReadyQueue {
    discipline: Discipline,
    jobs: VecDeque<Job>,
}

impl ReadyQueue {
    pub fn new(discipline: Discipline) -> Self {
        ReadyQueue {
            discipline,
            jobs: VecDeque::new(),
        }
    }

    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueue a job at its discipline-defined position.
    pub fn push(&mut self, job: Job) {
        let pos = match self.discipline {
            Discipline::Fifo => self.jobs.len(),
            Discipline::Edf => {
                let key = job.absolute_deadline().unwrap_or(SimTime::MAX);
                self.jobs
                    .iter()
                    .position(|j| j.absolute_deadline().unwrap_or(SimTime::MAX) > key)
                    .unwrap_or(self.jobs.len())
            }
            Discipline::Sjf => self
                .jobs
                .iter()
                .position(|j| j.work_gops > job.work_gops)
                .unwrap_or(self.jobs.len()),
        };
        self.jobs.insert(pos, job);
    }

    /// Peek the head without removing it.
    pub fn peek(&self) -> Option<&Job> {
        self.jobs.front()
    }

    /// Return a just-popped job to the head of the queue (used when a
    /// dispatch attempt fails and the job must keep its position).
    pub fn push_front(&mut self, job: Job) {
        self.jobs.push_front(job);
    }

    /// Pop the head job.
    pub fn pop(&mut self) -> Option<Job> {
        self.jobs.pop_front()
    }

    /// Pop the first job that fits `free_cores` (head-of-line blocking
    /// avoidance for rigid parallel jobs — backfilling in its simplest
    /// form).
    pub fn pop_fitting(&mut self, free_cores: usize) -> Option<Job> {
        let idx = self.jobs.iter().position(|j| j.cores <= free_cores)?;
        self.jobs.remove(idx)
    }

    /// Drop and return jobs whose deadline has already passed at `now`
    /// (they can no longer be served usefully).
    pub fn drop_expired(&mut self, now: SimTime) -> Vec<Job> {
        let mut expired = Vec::new();
        self.jobs.retain(|j| {
            if let Some(d) = j.absolute_deadline() {
                if d <= now {
                    expired.push(*j);
                    return false;
                }
            }
            true
        });
        expired
    }

    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }
}

impl simcore::snapshot::Snapshot for Discipline {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u8(match self {
            Discipline::Fifo => 0,
            Discipline::Edf => 1,
            Discipline::Sjf => 2,
        });
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Discipline::Fifo),
            1 => Ok(Discipline::Edf),
            2 => Ok(Discipline::Sjf),
            b => Err(simcore::snapshot::SnapshotError::Corrupt(format!(
                "discipline tag {b}"
            ))),
        }
    }
}

/// The deque order *is* the discipline-defined service order, so it
/// checkpoints verbatim.
impl simcore::snapshot::Snapshot for ReadyQueue {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.discipline.encode(w);
        self.jobs.encode(w);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(ReadyQueue {
            discipline: Discipline::decode(r)?,
            jobs: VecDeque::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;
    use workloads::{Flow, JobId};

    fn job(id: u64, work: f64, deadline_s: Option<i64>) -> Job {
        Job {
            id: JobId(id),
            flow: Flow::EdgeIndirect,
            arrival: SimTime::ZERO,
            work_gops: work,
            cores: 1,
            deadline: deadline_s.map(SimDuration::from_secs),
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut q = ReadyQueue::new(Discipline::Fifo);
        for i in 0..5 {
            q.push(job(i, 100.0 - i as f64, None));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edf_orders_by_deadline_with_deadline_free_last() {
        let mut q = ReadyQueue::new(Discipline::Edf);
        q.push(job(0, 1.0, None));
        q.push(job(1, 1.0, Some(50)));
        q.push(job(2, 1.0, Some(10)));
        q.push(job(3, 1.0, Some(30)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id.0).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn edf_ties_are_fifo() {
        let mut q = ReadyQueue::new(Discipline::Edf);
        q.push(job(0, 1.0, Some(10)));
        q.push(job(1, 1.0, Some(10)));
        assert_eq!(q.pop().unwrap().id.0, 0);
        assert_eq!(q.pop().unwrap().id.0, 1);
    }

    #[test]
    fn sjf_orders_by_work() {
        let mut q = ReadyQueue::new(Discipline::Sjf);
        q.push(job(0, 30.0, None));
        q.push(job(1, 10.0, None));
        q.push(job(2, 20.0, None));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn pop_fitting_skips_wide_jobs() {
        let mut q = ReadyQueue::new(Discipline::Fifo);
        let mut wide = job(0, 1.0, None);
        wide.cores = 8;
        let narrow = job(1, 1.0, None);
        q.push(wide);
        q.push(narrow);
        let got = q.pop_fitting(4).unwrap();
        assert_eq!(got.id.0, 1);
        assert_eq!(q.len(), 1);
        assert!(q.pop_fitting(4).is_none());
        assert!(q.pop_fitting(8).is_some());
    }

    #[test]
    fn push_front_restores_head_position() {
        let mut q = ReadyQueue::new(Discipline::Fifo);
        q.push(job(0, 1.0, None));
        q.push(job(1, 1.0, None));
        let head = q.pop().unwrap();
        q.push_front(head);
        assert_eq!(q.pop().unwrap().id.0, 0, "head keeps its position");
        assert_eq!(q.pop().unwrap().id.0, 1);
    }

    #[test]
    fn drop_expired_removes_past_deadlines() {
        let mut q = ReadyQueue::new(Discipline::Edf);
        q.push(job(0, 1.0, Some(10)));
        q.push(job(1, 1.0, Some(100)));
        let dropped = q.drop_expired(SimTime::from_secs(50));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].id.0, 0);
        assert_eq!(q.len(), 1);
    }
}
