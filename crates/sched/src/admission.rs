//! Admission control protecting edge guarantees.
//!
//! §III-B's architecture class B reserves dedicated workers so "we can
//! guarantee a minimal quality of service". The complementary mechanism
//! for class A is admission control on the DCC side: stop admitting
//! batch work when utilisation would push edge latency past its budget.

use serde::{Deserialize, Serialize};
use workloads::Job;

use crate::offload::ClusterLoad;

/// Utilisation-threshold admission controller.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// DCC jobs are admitted only below this utilisation.
    pub dcc_util_threshold: f64,
    /// Edge jobs are admitted only below this utilisation (usually 1.0:
    /// edge is what we protect).
    pub edge_util_threshold: f64,
    /// Hard cap on the queued-DCC backlog.
    pub max_dcc_queue: usize,
}

impl AdmissionControl {
    /// The configuration used by experiment E4: DCC throttled at 85 %,
    /// edge admitted until saturation, backlog capped at 200.
    pub fn protective() -> Self {
        AdmissionControl {
            dcc_util_threshold: 0.85,
            edge_util_threshold: 1.0,
            max_dcc_queue: 200,
        }
    }

    /// An open controller that admits everything (the ablation baseline).
    pub fn open() -> Self {
        AdmissionControl {
            dcc_util_threshold: f64::INFINITY,
            edge_util_threshold: f64::INFINITY,
            max_dcc_queue: usize::MAX,
        }
    }

    /// Whether `job` may be admitted to a cluster with load `load`.
    pub fn admit(&self, job: &Job, load: &ClusterLoad) -> bool {
        if job.is_edge() {
            load.utilisation() < self.edge_util_threshold || load.free_cores() >= job.cores
        } else {
            load.utilisation() < self.dcc_util_threshold && load.queued_dcc < self.max_dcc_queue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{SimDuration, SimTime};
    use workloads::{Flow, JobId};

    fn mk_job(flow: Flow) -> Job {
        Job {
            id: JobId(0),
            flow,
            arrival: SimTime::ZERO,
            work_gops: 1.0,
            cores: 1,
            deadline: matches!(flow, Flow::EdgeDirect | Flow::EdgeIndirect)
                .then(|| SimDuration::SECOND),
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    fn load(total: usize, busy: usize, queued_dcc: usize) -> ClusterLoad {
        ClusterLoad {
            cluster: 0,
            total_cores: total,
            busy_cores: busy,
            preemptible_cores: 0,
            queued_edge: 0,
            queued_dcc,
        }
    }

    #[test]
    fn dcc_throttled_above_threshold() {
        let ac = AdmissionControl::protective();
        assert!(ac.admit(&mk_job(Flow::Dcc), &load(100, 80, 0)));
        assert!(!ac.admit(&mk_job(Flow::Dcc), &load(100, 90, 0)));
    }

    #[test]
    fn edge_admitted_past_dcc_threshold() {
        let ac = AdmissionControl::protective();
        // At 90 % the DCC job is refused but the edge job is admitted.
        assert!(ac.admit(&mk_job(Flow::EdgeIndirect), &load(100, 90, 0)));
    }

    #[test]
    fn backlog_cap_applies_to_dcc() {
        let ac = AdmissionControl::protective();
        assert!(!ac.admit(&mk_job(Flow::Dcc), &load(100, 10, 200)));
        assert!(ac.admit(&mk_job(Flow::Dcc), &load(100, 10, 199)));
    }

    #[test]
    fn open_controller_admits_everything() {
        let ac = AdmissionControl::open();
        assert!(ac.admit(&mk_job(Flow::Dcc), &load(100, 99, 10_000)));
        assert!(ac.admit(&mk_job(Flow::EdgeDirect), &load(100, 100, 0)));
    }
}
