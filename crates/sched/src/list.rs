//! Offline list scheduling of sequential tasks (LPT).
//!
//! Ref [14] (Dutot, Mounié, Trystram — scheduling parallel tasks) is
//! the paper's pointer for preemption/rescheduling theory; here we
//! implement the classic Longest-Processing-Time list rule on identical
//! machines, which the fairness module uses as its makespan engine.
//! LPT is a 4/3-approximation of the optimal makespan.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A sequential task with a processing time (seconds at unit speed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    pub work: f64,
}

impl Task {
    pub fn new(work: f64) -> Self {
        assert!(work > 0.0 && work.is_finite(), "bad task work {work}");
        Task { work }
    }
}

/// Result of a list schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Completion time of each input task (same order as the input).
    pub completion: Vec<f64>,
    /// Overall makespan.
    pub makespan: f64,
    /// Machine each task ran on.
    pub machine: Vec<usize>,
}

/// Schedule `tasks` on `m` identical machines with the LPT rule.
pub fn lpt_makespan(tasks: &[Task], m: usize) -> Schedule {
    assert!(m > 0, "need at least one machine");
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        tasks[b]
            .work
            .partial_cmp(&tasks[a].work)
            .expect("NaN work")
            .then(a.cmp(&b))
    });
    // Min-heap of (machine finish time, machine id), deterministic ties.
    #[derive(PartialEq)]
    struct M(f64, usize);
    impl Eq for M {}
    impl Ord for M {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&o.0)
                .expect("NaN finish")
                .then(self.1.cmp(&o.1))
        }
    }
    impl PartialOrd for M {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    let mut heap: BinaryHeap<Reverse<M>> = (0..m).map(|i| Reverse(M(0.0, i))).collect();
    let mut completion = vec![0.0; tasks.len()];
    let mut machine = vec![0usize; tasks.len()];
    for &i in &order {
        let Reverse(M(finish, mid)) = heap.pop().expect("m > 0");
        let done = finish + tasks[i].work;
        completion[i] = done;
        machine[i] = mid;
        heap.push(Reverse(M(done, mid)));
    }
    let makespan = completion.iter().copied().fold(0.0, f64::max);
    Schedule {
        completion,
        makespan,
        machine,
    }
}

/// Lower bound on any schedule's makespan: max(total/m, longest task).
pub fn makespan_lower_bound(tasks: &[Task], m: usize) -> f64 {
    assert!(m > 0);
    let total: f64 = tasks.iter().map(|t| t.work).sum();
    let longest = tasks.iter().map(|t| t.work).fold(0.0, f64::max);
    (total / m as f64).max(longest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_machine_is_sum() {
        let tasks = vec![Task::new(3.0), Task::new(5.0), Task::new(2.0)];
        let s = lpt_makespan(&tasks, 1);
        assert!((s.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn classic_lpt_example() {
        // Works {5,5,4,4,3,3} on 2 machines: LPT gives 12 (optimal 12).
        let tasks: Vec<Task> = [5.0, 5.0, 4.0, 4.0, 3.0, 3.0]
            .iter()
            .map(|&w| Task::new(w))
            .collect();
        let s = lpt_makespan(&tasks, 2);
        assert!((s.makespan - 12.0).abs() < 1e-12);
    }

    #[test]
    fn completion_order_matches_input_indexing() {
        let tasks = vec![Task::new(1.0), Task::new(10.0)];
        let s = lpt_makespan(&tasks, 2);
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
        assert!((s.completion[1] - 10.0).abs() < 1e-12);
        assert_ne!(s.machine[0], s.machine[1]);
    }

    #[test]
    fn more_machines_never_hurt() {
        let tasks: Vec<Task> = (1..20).map(|i| Task::new(i as f64)).collect();
        let m2 = lpt_makespan(&tasks, 2).makespan;
        let m4 = lpt_makespan(&tasks, 4).makespan;
        let m8 = lpt_makespan(&tasks, 8).makespan;
        assert!(m4 <= m2 && m8 <= m4);
    }

    #[test]
    fn empty_task_set_has_zero_makespan() {
        let s = lpt_makespan(&[], 4);
        assert_eq!(s.makespan, 0.0);
        assert!(s.completion.is_empty());
    }

    proptest! {
        /// Any list schedule satisfies LB ≤ C ≤ total/m + (1−1/m)·pmax
        /// (Graham's bound), which is strictly below 2·LB.
        #[test]
        fn lpt_within_graham_bound(
            works in proptest::collection::vec(0.1f64..100.0, 1..40),
            m in 1usize..8
        ) {
            let tasks: Vec<Task> = works.iter().map(|&w| Task::new(w)).collect();
            let s = lpt_makespan(&tasks, m);
            let lb = makespan_lower_bound(&tasks, m);
            let total: f64 = works.iter().sum();
            let pmax = works.iter().copied().fold(0.0, f64::max);
            let graham = total / m as f64 + (1.0 - 1.0 / m as f64) * pmax;
            prop_assert!(s.makespan >= lb - 1e-9, "below lower bound");
            prop_assert!(
                s.makespan <= graham + 1e-9,
                "LPT {} exceeds Graham bound {}", s.makespan, graham
            );
            prop_assert!(s.makespan <= 2.0 * lb + 1e-9);
        }

        /// Work conservation: sum of per-machine loads equals total work.
        #[test]
        fn work_is_conserved(
            works in proptest::collection::vec(0.1f64..50.0, 1..30),
            m in 1usize..6
        ) {
            let tasks: Vec<Task> = works.iter().map(|&w| Task::new(w)).collect();
            let s = lpt_makespan(&tasks, m);
            let mut loads = vec![0.0; m];
            for (i, t) in tasks.iter().enumerate() {
                loads[s.machine[i]] += t.work;
            }
            let total: f64 = works.iter().sum();
            prop_assert!((loads.iter().sum::<f64>() - total).abs() < 1e-6);
            // And every completion is at most the makespan.
            prop_assert!(s.completion.iter().all(|&c| c <= s.makespan + 1e-9));
        }
    }

    #[test]
    #[should_panic]
    fn zero_machines_panics() {
        lpt_makespan(&[Task::new(1.0)], 0);
    }

    #[test]
    #[should_panic]
    fn zero_work_task_rejected() {
        Task::new(0.0);
    }
}
