//! Preemption victim selection.
//!
//! §III-B: when the cluster is full and an edge request arrives, "the
//! first [solution] is to use preemption [14] to reschedule some DCC
//! requests." Edge jobs never get preempted (they hold the real-time
//! guarantee); DCC jobs are chosen as victims by a pluggable criterion.

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use workloads::JobId;

/// A running DCC task eligible for preemption.
#[derive(Debug, Clone, Copy)]
pub struct RunningTask {
    pub id: JobId,
    /// Cores it currently holds.
    pub cores: usize,
    /// When it started (its current execution slice).
    pub started: SimTime,
    /// Work already completed, Gop.
    pub progress_gops: f64,
    /// Total work, Gop.
    pub total_gops: f64,
}

impl RunningTask {
    /// Fraction of the job already done.
    pub fn progress(&self) -> f64 {
        if self.total_gops <= 0.0 {
            return 1.0;
        }
        (self.progress_gops / self.total_gops).clamp(0.0, 1.0)
    }
}

/// Victim-selection criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimOrder {
    /// Preempt the most recently started first (least sunk time).
    YoungestFirst,
    /// Preempt the task with the least completed fraction first
    /// (minimises wasted work if preemption restarts the slice).
    LeastProgressFirst,
    /// Preempt the widest task first (frees cores fastest).
    WidestFirst,
}

/// Choose a minimal set of victims freeing at least `needed_cores`.
/// Returns `None` if even preempting everything would not suffice.
pub fn select_victims(
    running: &[RunningTask],
    needed_cores: usize,
    order: VictimOrder,
) -> Option<Vec<JobId>> {
    if needed_cores == 0 {
        return Some(Vec::new());
    }
    let total: usize = running.iter().map(|t| t.cores).sum();
    if total < needed_cores {
        return None;
    }
    let mut candidates: Vec<&RunningTask> = running.iter().collect();
    match order {
        VictimOrder::YoungestFirst => {
            candidates.sort_by_key(|t| std::cmp::Reverse((t.started, t.id)))
        }
        VictimOrder::LeastProgressFirst => candidates.sort_by(|a, b| {
            a.progress()
                .partial_cmp(&b.progress())
                .expect("NaN progress")
                .then(a.id.cmp(&b.id))
        }),
        VictimOrder::WidestFirst => candidates.sort_by_key(|t| (std::cmp::Reverse(t.cores), t.id)),
    }
    let mut victims = Vec::new();
    let mut freed = 0;
    for t in candidates {
        if freed >= needed_cores {
            break;
        }
        victims.push(t.id);
        freed += t.cores;
    }
    debug_assert!(freed >= needed_cores);
    Some(victims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, cores: usize, started_s: i64, progress: f64) -> RunningTask {
        RunningTask {
            id: JobId(id),
            cores,
            started: SimTime::from_secs(started_s),
            progress_gops: progress * 100.0,
            total_gops: 100.0,
        }
    }

    #[test]
    fn youngest_first_picks_latest_start() {
        let running = [
            task(0, 2, 10, 0.9),
            task(1, 2, 50, 0.1),
            task(2, 2, 30, 0.5),
        ];
        let v = select_victims(&running, 2, VictimOrder::YoungestFirst).unwrap();
        assert_eq!(v, vec![JobId(1)]);
    }

    #[test]
    fn least_progress_first_minimises_waste() {
        let running = [
            task(0, 2, 10, 0.9),
            task(1, 2, 50, 0.4),
            task(2, 2, 30, 0.05),
        ];
        let v = select_victims(&running, 2, VictimOrder::LeastProgressFirst).unwrap();
        assert_eq!(v, vec![JobId(2)]);
    }

    #[test]
    fn widest_first_frees_cores_fastest() {
        let running = [task(0, 1, 0, 0.5), task(1, 8, 0, 0.5), task(2, 2, 0, 0.5)];
        let v = select_victims(&running, 3, VictimOrder::WidestFirst).unwrap();
        assert_eq!(v, vec![JobId(1)], "one wide task suffices");
    }

    #[test]
    fn multiple_victims_when_needed() {
        let running = [task(0, 2, 5, 0.1), task(1, 2, 9, 0.2), task(2, 2, 1, 0.3)];
        let v = select_victims(&running, 5, VictimOrder::YoungestFirst).unwrap();
        assert_eq!(v.len(), 3, "need 5 cores → all three 2-core tasks");
    }

    #[test]
    fn infeasible_returns_none() {
        let running = [task(0, 2, 5, 0.1)];
        assert!(select_victims(&running, 3, VictimOrder::YoungestFirst).is_none());
        assert!(select_victims(&[], 1, VictimOrder::WidestFirst).is_none());
    }

    #[test]
    fn zero_need_is_empty() {
        let running = [task(0, 2, 5, 0.1)];
        assert_eq!(
            select_victims(&running, 0, VictimOrder::WidestFirst).unwrap(),
            Vec::<JobId>::new()
        );
    }

    #[test]
    fn progress_is_clamped() {
        let t = RunningTask {
            id: JobId(0),
            cores: 1,
            started: SimTime::ZERO,
            progress_gops: 150.0,
            total_gops: 100.0,
        };
        assert_eq!(t.progress(), 1.0);
    }
}
