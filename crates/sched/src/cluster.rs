//! Cluster formation.
//!
//! §III-B: "To decide on the components of clusters, we can either use
//! clustering techniques developed in wireless sensor networks [13] or
//! define clusters as the set of DF servers of a physical building or
//! district." Both are implemented: [`by_building`] and [`kmeans`]
//! (Lloyd's algorithm with deterministic k-means++-style seeding).

use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::dist::discrete;

/// A server's physical position in the district, metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    pub x: f64,
    pub y: f64,
}

impl Position {
    pub fn dist(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A clustering: `assignment[i]` is the cluster of server `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clustering {
    pub assignment: Vec<usize>,
    pub n_clusters: usize,
}

impl Clustering {
    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sizes of every cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.n_clusters];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }

    /// Maximum distance from a server to its cluster centroid — the
    /// gateway-reach quality metric.
    pub fn max_radius(&self, positions: &[Position]) -> f64 {
        assert_eq!(positions.len(), self.assignment.len());
        let centroids = self.centroids(positions);
        positions
            .iter()
            .zip(&self.assignment)
            .map(|(p, &c)| p.dist(&centroids[c]))
            .fold(0.0, f64::max)
    }

    /// Centroids of each cluster.
    pub fn centroids(&self, positions: &[Position]) -> Vec<Position> {
        let mut sums = vec![(0.0, 0.0, 0usize); self.n_clusters];
        for (p, &c) in positions.iter().zip(&self.assignment) {
            sums[c].0 += p.x;
            sums[c].1 += p.y;
            sums[c].2 += 1;
        }
        sums.into_iter()
            .map(|(x, y, n)| {
                let n = n.max(1) as f64;
                Position { x: x / n, y: y / n }
            })
            .collect()
    }
}

/// Cluster by building id: servers of one building form one cluster.
/// Building ids need not be contiguous; clusters are numbered in order
/// of first appearance.
pub fn by_building(buildings: &[usize]) -> Clustering {
    let mut map = std::collections::HashMap::new();
    let mut assignment = Vec::with_capacity(buildings.len());
    for &b in buildings {
        let next = map.len();
        let c = *map.entry(b).or_insert(next);
        assignment.push(c);
    }
    Clustering {
        assignment,
        n_clusters: map.len(),
    }
}

/// Lloyd's k-means over server positions with k-means++ seeding,
/// deterministic given the RNG. Panics if `k` is 0 or exceeds the
/// number of servers.
pub fn kmeans<R: Rng + ?Sized>(
    rng: &mut R,
    positions: &[Position],
    k: usize,
    max_iters: usize,
) -> Clustering {
    assert!(k > 0 && k <= positions.len(), "bad k = {k}");
    // k-means++ seeding.
    let mut centroids: Vec<Position> = Vec::with_capacity(k);
    centroids.push(positions[rng.gen_range(0..positions.len())]);
    while centroids.len() < k {
        let d2: Vec<f64> = positions
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| p.dist(c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= f64::EPSILON {
            // All remaining points coincide with a centroid; pick any.
            centroids.push(positions[rng.gen_range(0..positions.len())]);
        } else {
            centroids.push(positions[discrete(rng, &d2)]);
        }
    }
    let mut assignment = vec![0usize; positions.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, p) in positions.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| p.dist(a.1).partial_cmp(&p.dist(b.1)).expect("NaN dist"))
                .map(|(j, _)| j)
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let clustering = Clustering {
            assignment: assignment.clone(),
            n_clusters: k,
        };
        centroids = clustering.centroids(positions);
        if !changed {
            break;
        }
    }
    Clustering {
        assignment,
        n_clusters: k,
    }
}

/// Lay out `n` servers in `n_buildings` buildings on a city grid:
/// buildings sit on a √n_buildings grid with `spacing` metres, servers
/// scatter within `building_radius` of their building. Returns
/// (positions, building ids).
pub fn city_layout<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    n_buildings: usize,
    spacing: f64,
    building_radius: f64,
) -> (Vec<Position>, Vec<usize>) {
    assert!(n_buildings > 0);
    let side = (n_buildings as f64).sqrt().ceil() as usize;
    let mut positions = Vec::with_capacity(n);
    let mut buildings = Vec::with_capacity(n);
    for i in 0..n {
        let b = i % n_buildings;
        let bx = (b % side) as f64 * spacing;
        let by = (b / side) as f64 * spacing;
        positions.push(Position {
            x: bx + (rng.gen::<f64>() - 0.5) * 2.0 * building_radius,
            y: by + (rng.gen::<f64>() - 0.5) * 2.0 * building_radius,
        });
        buildings.push(b);
    }
    (positions, buildings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::RngStreams;

    fn rng() -> rand_chacha::ChaCha8Rng {
        RngStreams::new(10).stream("cluster")
    }

    #[test]
    fn by_building_groups_correctly() {
        let c = by_building(&[5, 5, 9, 5, 9, 2]);
        assert_eq!(c.n_clusters, 3);
        assert_eq!(c.members(0), vec![0, 1, 3]); // building 5
        assert_eq!(c.members(1), vec![2, 4]); // building 9
        assert_eq!(c.members(2), vec![5]); // building 2
        assert_eq!(c.sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn kmeans_separates_distant_blobs() {
        let mut r = rng();
        let mut positions = Vec::new();
        for i in 0..30 {
            let (cx, cy) = match i % 3 {
                0 => (0.0, 0.0),
                1 => (1_000.0, 0.0),
                _ => (0.0, 1_000.0),
            };
            positions.push(Position {
                x: cx + r.gen::<f64>() * 20.0,
                y: cy + r.gen::<f64>() * 20.0,
            });
        }
        let c = kmeans(&mut r, &positions, 3, 50);
        // Every blob must be pure: members of one blob share a cluster.
        for blob in 0..3 {
            let clusters: std::collections::HashSet<usize> = (0..30)
                .filter(|i| i % 3 == blob)
                .map(|i| c.assignment[i])
                .collect();
            assert_eq!(clusters.len(), 1, "blob {blob} split across clusters");
        }
        assert!(c.max_radius(&positions) < 50.0);
    }

    #[test]
    fn kmeans_radius_beats_random_assignment() {
        let mut r = rng();
        let (positions, _) = city_layout(&mut r, 100, 9, 300.0, 30.0);
        let km = kmeans(&mut r, &positions, 9, 50);
        // A single-cluster "clustering" has a much larger radius.
        let whole = Clustering {
            assignment: vec![0; 100],
            n_clusters: 1,
        };
        assert!(km.max_radius(&positions) < 0.5 * whole.max_radius(&positions));
    }

    #[test]
    fn building_clusters_match_layout() {
        let mut r = rng();
        let (positions, buildings) = city_layout(&mut r, 60, 6, 500.0, 25.0);
        let c = by_building(&buildings);
        assert_eq!(c.n_clusters, 6);
        // Servers of a building are within 2×radius of each other.
        for cl in 0..6 {
            let m = c.members(cl);
            for &a in &m {
                for &b in &m {
                    assert!(positions[a].dist(&positions[b]) <= 100.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn kmeans_is_deterministic_per_seed() {
        let (positions, _) = city_layout(&mut rng(), 50, 5, 400.0, 20.0);
        let a = kmeans(&mut rng(), &positions, 5, 50);
        let b = kmeans(&mut rng(), &positions, 5, 50);
        // Note: rng() recreates the same stream, so layout+clustering match.
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic]
    fn kmeans_rejects_k_zero() {
        let mut r = rng();
        kmeans(&mut r, &[Position { x: 0.0, y: 0.0 }], 0, 10);
    }
}
