//! # sched — scheduling, clustering, offloading, fairness
//!
//! The decision-making substrate of the DF3 platform. §III-B poses the
//! scheduling questions — how to cluster DF servers under gateways, how
//! to order edge and DCC work, when to preempt, when to offload
//! vertically (to the datacenter) or horizontally (to a sibling
//! cluster), and how to keep cooperation between organisations fair
//! (ref [16]). Each is a module here, consumed by `df3_core::platform`:
//!
//! - [`cluster`]: cluster formation — by building, or WSN-style k-means
//!   over server coordinates (ref [13]).
//! - [`queue`]: ready-queue disciplines — FIFO, EDF (edge deadlines),
//!   SJF.
//! - [`list`]: offline list scheduling (LPT) for rigid parallel tasks
//!   (ref [14]), used as the fairness experiments' building block.
//! - [`preempt`]: victim selection for preempting moldable DCC work
//!   when an edge request finds the cluster full.
//! - [`offload`]: the peak-management policy of §III-B — preempt /
//!   vertical offload / horizontal offload / delay — as a pluggable
//!   decision procedure.
//! - [`fairness`]: multi-organisation cooperation (ref [16]): Jain's
//!   index, per-org accounting, and the "no org worse off than alone"
//!   cooperation check.
//! - [`decision`]: the local-vs-remote placement scorer §III-A calls
//!   "a decision system that states what to do locally and remotely".
//! - [`admission`]: utilisation-threshold admission control protecting
//!   edge latency guarantees.
//! - [`retry`]: per-job retry budgets with exponential backoff and
//!   flapping-worker quarantine (the fault layer's recovery policy).

pub mod admission;
pub mod cluster;
pub mod decision;
pub mod fairness;
pub mod list;
pub mod offload;
pub mod preempt;
pub mod queue;
pub mod retry;

pub use decision::{Placement, PlacementScorer};
pub use offload::{ClusterLoad, PeakAction, PeakPolicy};
pub use queue::{Discipline, ReadyQueue};
pub use retry::{FlapTracker, QuarantinePolicy, RetryPolicy};
