//! Multi-organisation cooperation and fairness (ref [16]).
//!
//! §III-B: horizontal offloading "raises questions about the fairness
//! of cooperation between clusters [Pascual, Rzadca, Trystram]." The
//! MOSP (multi-organization scheduling) model: each organisation owns a
//! cluster and a job set; cooperation shares all clusters. Cooperation
//! is *acceptable* when no organisation's makespan is worse than what
//! it could achieve alone on its own cluster. We implement:
//!
//! - per-organisation accounting ([`OrgAccount`]),
//! - Jain's fairness index over received service,
//! - the cooperation check ([`cooperation_is_fair`]) comparing
//!   cooperative makespans to selfish (local-only) ones via LPT list
//!   scheduling ([`crate::list`]).

use crate::list::{lpt_makespan, Task};
use serde::{Deserialize, Serialize};

/// Service received by one organisation.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OrgAccount {
    pub org: u32,
    /// Work it submitted, Gop.
    pub submitted_gops: f64,
    /// Work completed for it, Gop.
    pub served_gops: f64,
    /// Work it executed for *other* organisations (its contribution).
    pub hosted_foreign_gops: f64,
}

impl OrgAccount {
    /// Service ratio: served / submitted (1.0 when it submitted nothing).
    pub fn service_ratio(&self) -> f64 {
        if self.submitted_gops <= 0.0 {
            return 1.0;
        }
        self.served_gops / self.submitted_gops
    }
}

/// Jain's fairness index over a set of allocations: 1.0 = perfectly
/// fair, 1/n = maximally unfair. Empty or all-zero input yields 1.0.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    assert!(xs.iter().all(|&x| x >= 0.0), "allocations must be ≥ 0");
    let sum: f64 = xs.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// One organisation's scheduling instance.
#[derive(Debug, Clone)]
pub struct OrgInstance {
    /// Cores its own cluster provides.
    pub own_cores: usize,
    /// Its jobs' sequential works (Gop) at unit speed (1 Gop = 1 s).
    pub tasks: Vec<Task>,
}

/// Outcome of a cooperative schedule for one organisation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CooperationOutcome {
    pub org: usize,
    /// Makespan if it schedules alone on its own cluster.
    pub selfish_makespan: f64,
    /// Its makespan under the cooperative schedule.
    pub cooperative_makespan: f64,
}

impl CooperationOutcome {
    /// The MOSP acceptability criterion: cooperation must not hurt.
    pub fn is_acceptable(&self) -> bool {
        self.cooperative_makespan <= self.selfish_makespan * (1.0 + 1e-9)
    }
}

/// Evaluate a simple cooperative scheme: pool all cores, schedule the
/// union by LPT, and attribute to each organisation the completion time
/// of its *own* last task. Returns one outcome per organisation.
///
/// This is the baseline scheme whose possible unfairness ref [16]
/// analyses; experiment E5 reports how often it violates acceptability
/// and what the global makespan gain is.
pub fn evaluate_cooperation(orgs: &[OrgInstance]) -> Vec<CooperationOutcome> {
    assert!(!orgs.is_empty());
    let total_cores: usize = orgs.iter().map(|o| o.own_cores).sum();
    assert!(total_cores > 0, "no cores in the federation");
    // Selfish baselines.
    let selfish: Vec<f64> = orgs
        .iter()
        .map(|o| lpt_makespan(&o.tasks, o.own_cores).makespan)
        .collect();
    // Cooperative: pool everything, tag tasks by owner.
    let mut pooled: Vec<(usize, Task)> = Vec::new();
    for (i, o) in orgs.iter().enumerate() {
        for &t in &o.tasks {
            pooled.push((i, t));
        }
    }
    let tasks: Vec<Task> = pooled.iter().map(|&(_, t)| t).collect();
    let schedule = lpt_makespan(&tasks, total_cores);
    // Per-org cooperative makespan: completion of its last-finishing task.
    let mut coop = vec![0.0f64; orgs.len()];
    for (idx, &(org, _)) in pooled.iter().enumerate() {
        coop[org] = coop[org].max(schedule.completion[idx]);
    }
    orgs.iter()
        .enumerate()
        .map(|(i, _)| CooperationOutcome {
            org: i,
            selfish_makespan: selfish[i],
            cooperative_makespan: coop[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn service_ratio() {
        let a = OrgAccount {
            org: 1,
            submitted_gops: 100.0,
            served_gops: 80.0,
            hosted_foreign_gops: 0.0,
        };
        assert!((a.service_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(OrgAccount::default().service_ratio(), 1.0);
    }

    #[test]
    fn cooperation_helps_the_loaded_org() {
        // Org 0: overloaded small cluster. Org 1: idle big cluster.
        let orgs = vec![
            OrgInstance {
                own_cores: 2,
                tasks: vec![Task::new(10.0); 8],
            },
            OrgInstance {
                own_cores: 8,
                tasks: vec![Task::new(1.0)],
            },
        ];
        let outcomes = evaluate_cooperation(&orgs);
        assert!(
            outcomes[0].cooperative_makespan < outcomes[0].selfish_makespan,
            "loaded org must gain: {outcomes:?}"
        );
    }

    #[test]
    fn cooperation_can_hurt_the_idle_org() {
        // The unfairness ref [16] worries about: the idle org's own task
        // may now compete with foreign load. With naive pooled LPT, the
        // idle org's small task is scheduled after longer foreign tasks.
        let orgs = vec![
            OrgInstance {
                own_cores: 1,
                tasks: vec![Task::new(10.0); 4],
            },
            OrgInstance {
                own_cores: 1,
                tasks: vec![Task::new(1.0)],
            },
        ];
        let outcomes = evaluate_cooperation(&orgs);
        assert!(
            !outcomes[1].is_acceptable(),
            "naive pooling should violate org 1's acceptability here: {outcomes:?}"
        );
    }

    #[test]
    fn global_makespan_never_worse_than_worst_selfish() {
        let orgs = vec![
            OrgInstance {
                own_cores: 3,
                tasks: (0..10).map(|i| Task::new(1.0 + i as f64)).collect(),
            },
            OrgInstance {
                own_cores: 2,
                tasks: (0..6).map(|i| Task::new(2.0 + i as f64)).collect(),
            },
        ];
        let outcomes = evaluate_cooperation(&orgs);
        let coop_global = outcomes
            .iter()
            .map(|o| o.cooperative_makespan)
            .fold(0.0, f64::max);
        let selfish_global = outcomes
            .iter()
            .map(|o| o.selfish_makespan)
            .fold(0.0, f64::max);
        assert!(coop_global <= selfish_global + 1e-9);
    }

    #[test]
    #[should_panic]
    fn negative_allocations_rejected() {
        jain_index(&[1.0, -1.0]);
    }
}
