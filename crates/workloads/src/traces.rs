//! Job-trace export and import (CSV).
//!
//! Every generated stream can be exported for offline analysis (or to
//! feed another simulator), and traces produced elsewhere can be
//! imported and replayed through the platform — the standard workflow
//! for comparing against recorded production workloads.

use crate::job::{Flow, Job, JobId, JobStream};
use simcore::time::{SimDuration, SimTime};

/// CSV header written by [`to_csv`].
pub const HEADER: &str =
    "id,flow,arrival_s,work_gops,cores,deadline_ms,input_bytes,output_bytes,org";

fn flow_tag(f: Flow) -> &'static str {
    match f {
        Flow::Dcc => "dcc",
        Flow::EdgeDirect => "edge_direct",
        Flow::EdgeIndirect => "edge_indirect",
    }
}

fn parse_flow(s: &str) -> Result<Flow, String> {
    match s {
        "dcc" => Ok(Flow::Dcc),
        "edge_direct" => Ok(Flow::EdgeDirect),
        "edge_indirect" => Ok(Flow::EdgeIndirect),
        other => Err(format!("unknown flow tag `{other}`")),
    }
}

/// Serialise a stream to CSV text.
pub fn to_csv(stream: &JobStream) -> String {
    let mut out = String::with_capacity(stream.len() * 64 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for j in stream.iter() {
        let deadline_ms = j
            .deadline
            .map(|d| format!("{:.3}", d.as_millis_f64()))
            .unwrap_or_default();
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{},{},{},{},{}\n",
            j.id.0,
            flow_tag(j.flow),
            j.arrival.as_secs_f64(),
            j.work_gops,
            j.cores,
            deadline_ms,
            j.input_bytes,
            j.output_bytes,
            j.org
        ));
    }
    out
}

/// Parse a CSV trace produced by [`to_csv`] (or hand-written in the
/// same format). Returns a descriptive error naming the first bad line.
pub fn from_csv(text: &str) -> Result<JobStream, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace")?;
    if header.trim() != HEADER {
        return Err(format!("bad header: `{header}`"));
    }
    let mut jobs = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: `{line}`", lineno + 2);
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 9 {
            return Err(err("expected 9 fields"));
        }
        let parse_u64 = |s: &str, what: &str| s.parse::<u64>().map_err(|_| err(what));
        let parse_f64 = |s: &str, what: &str| s.parse::<f64>().map_err(|_| err(what));
        let deadline = if f[5].is_empty() {
            None
        } else {
            Some(SimDuration::from_secs_f64(
                parse_f64(f[5], "bad deadline")? / 1_000.0,
            ))
        };
        let job = Job {
            id: JobId(parse_u64(f[0], "bad id")?),
            flow: parse_flow(f[1]).map_err(|e| err(&e))?,
            arrival: SimTime::from_secs_f64(parse_f64(f[2], "bad arrival")?),
            work_gops: parse_f64(f[3], "bad work")?,
            cores: parse_u64(f[4], "bad cores")? as usize,
            deadline,
            input_bytes: parse_u64(f[6], "bad input")? as usize,
            output_bytes: parse_u64(f[7], "bad output")? as usize,
            org: parse_u64(f[8], "bad org")? as u32,
        };
        job.validate().map_err(|e| err(&e))?;
        jobs.push(job);
    }
    Ok(JobStream::new(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::{boinc_jobs, BoincConfig};
    use crate::edge::{location_service_jobs, LocationServiceConfig};
    use simcore::RngStreams;

    fn sample() -> JobStream {
        let streams = RngStreams::new(44);
        let a = boinc_jobs(
            BoincConfig::standard(),
            SimDuration::from_hours(2),
            &streams,
            0,
        );
        let b = location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeDirect),
            SimDuration::from_hours(2),
            &streams,
            1_000_000,
        );
        a.merge(b)
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let original = sample();
        let csv = to_csv(&original);
        let parsed = from_csv(&csv).expect("roundtrip parses");
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(parsed.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.flow, b.flow);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.org, b.org);
            assert_eq!(a.input_bytes, b.input_bytes);
            assert!((a.work_gops - b.work_gops).abs() < 1e-5);
            assert!((a.arrival.as_secs_f64() - b.arrival.as_secs_f64()).abs() < 1e-5);
            match (a.deadline, b.deadline) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!((x.as_millis_f64() - y.as_millis_f64()).abs() < 0.01)
                }
                _ => panic!("deadline presence must survive the roundtrip"),
            }
        }
    }

    #[test]
    fn bad_inputs_are_rejected_with_line_numbers() {
        assert!(from_csv("").is_err());
        assert!(from_csv("wrong,header").is_err());
        let bad_flow = format!("{HEADER}\n1,warp_drive,0,1,1,,0,0,0\n");
        let e = from_csv(&bad_flow).unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let bad_fields = format!("{HEADER}\n1,dcc,0\n");
        assert!(from_csv(&bad_fields).unwrap_err().contains("9 fields"));
        let invalid_job = format!("{HEADER}\n1,dcc,0,0.0,1,,0,0,0\n"); // zero work
        assert!(from_csv(&invalid_job).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = format!("{HEADER}\n\n1,dcc,5,10,2,,100,100,3\n\n");
        let s = from_csv(&csv).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.jobs()[0].org, 3);
    }
}
