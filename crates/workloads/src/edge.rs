//! Edge request generators: location-based services and
//! sense-compute-actuate loops.
//!
//! Liu et al.'s second data-furnace application class — the one the
//! paper says is "representative of the scope of applications targeted
//! in Edge computing" — is "low-bandwidth neighborhood applications
//! [including] location-based services such as map serving, traffic
//! estimation, local navigation" (§II-A). §III-B adds the
//! sense-compute-actuate paradigm "that implies to frequently collect
//! data".

use crate::job::{Flow, Job, JobId, JobStream};
use rand::Rng;
use simcore::dist::lognormal_mean_cv;
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Configuration of a location-based-service request stream (map tiles,
/// traffic estimation, local navigation).
#[derive(Debug, Clone, Copy)]
pub struct LocationServiceConfig {
    /// Requests per second at the daily peak.
    pub peak_rate_per_s: f64,
    /// Mean work per request, Gop (tile rendering / shortest path).
    pub mean_work_gops: f64,
    /// Soft deadline for an interactive answer.
    pub deadline: SimDuration,
    /// Direct or indirect delivery (§II-C).
    pub flow: Flow,
    pub org: u32,
}

impl LocationServiceConfig {
    /// Map-tile serving: light requests (~50 ms at full speed), 300 ms
    /// interactive budget.
    pub fn map_serving(flow: Flow) -> Self {
        LocationServiceConfig {
            peak_rate_per_s: 2.0,
            mean_work_gops: 0.15,
            deadline: SimDuration::from_millis(300),
            flow,
            org: 300,
        }
    }

    /// Traffic estimation: heavier aggregation, 2 s budget.
    pub fn traffic_estimation(flow: Flow) -> Self {
        LocationServiceConfig {
            peak_rate_per_s: 0.4,
            mean_work_gops: 12.0,
            deadline: SimDuration::from_secs(2),
            flow,
            org: 301,
        }
    }
}

/// Diurnal demand profile for city services: morning and evening rush.
pub fn city_diurnal_factor(t: SimTime) -> f64 {
    let h = t.hour_of_day();
    if (7.0..10.0).contains(&h) || (16.0..19.0).contains(&h) {
        1.0
    } else if (10.0..16.0).contains(&h) || (19.0..23.0).contains(&h) {
        0.6
    } else {
        0.12
    }
}

/// Generate location-service requests over `[0, span)`.
pub fn location_service_jobs(
    cfg: LocationServiceConfig,
    span: SimDuration,
    streams: &RngStreams,
    id_base: u64,
) -> JobStream {
    let mut rng = streams.stream_indexed("edge-location", cfg.org as u64);
    let arrivals = crate::arrival::nonhomogeneous_arrivals(
        &mut rng,
        |t| cfg.peak_rate_per_s * city_diurnal_factor(t),
        cfg.peak_rate_per_s,
        SimTime::ZERO,
        SimTime::ZERO + span,
    );
    let jobs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &t)| Job {
            id: JobId(id_base + i as u64),
            flow: cfg.flow,
            arrival: t,
            work_gops: lognormal_mean_cv(&mut rng, cfg.mean_work_gops, 0.5),
            cores: 1,
            deadline: Some(cfg.deadline),
            input_bytes: 600,
            output_bytes: 30_000,
            org: cfg.org,
        })
        .collect();
    JobStream::new(jobs)
}

/// A periodic sense-compute-actuate loop: a sensor emits a reading every
/// `period`; the computation must finish before the next reading.
#[derive(Debug, Clone, Copy)]
pub struct SenseActuateConfig {
    /// Sampling period.
    pub period: SimDuration,
    /// Work per sample, Gop.
    pub work_gops: f64,
    /// Sensor payload, bytes.
    pub sample_bytes: usize,
    /// Jitter as a fraction of the period.
    pub jitter: f64,
    pub flow: Flow,
    pub org: u32,
}

impl SenseActuateConfig {
    /// A smart-building HVAC control loop: 10 s period.
    pub fn hvac_loop(flow: Flow) -> Self {
        SenseActuateConfig {
            period: SimDuration::from_secs(10),
            work_gops: 0.3,
            sample_bytes: 64,
            jitter: 0.05,
            flow,
            org: 310,
        }
    }
}

/// Generate one device's sense-compute-actuate stream over `[0, span)`.
/// The deadline of each job is the loop period (control must close
/// before the next sample).
pub fn sense_actuate_jobs(
    cfg: SenseActuateConfig,
    span: SimDuration,
    streams: &RngStreams,
    device: u64,
    id_base: u64,
) -> JobStream {
    assert!(cfg.period > SimDuration::ZERO);
    assert!((0.0..0.5).contains(&cfg.jitter));
    let mut rng = streams.stream_indexed("edge-sense", device);
    let mut jobs = Vec::new();
    let mut t = SimTime::ZERO;
    let mut i = 0u64;
    while t < SimTime::ZERO + span {
        let jitter = cfg
            .period
            .mul_f64(cfg.jitter * (rng.gen::<f64>() * 2.0 - 1.0));
        let arrival = t + jitter.max(SimDuration::ZERO);
        jobs.push(Job {
            id: JobId(id_base + i),
            flow: cfg.flow,
            arrival,
            work_gops: cfg.work_gops,
            cores: 1,
            deadline: Some(cfg.period),
            input_bytes: cfg.sample_bytes,
            output_bytes: 16,
            org: cfg.org,
        });
        t += cfg.period;
        i += 1;
    }
    JobStream::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_requests_have_deadlines() {
        let s = location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeIndirect),
            SimDuration::from_days(1),
            &RngStreams::new(3),
            0,
        );
        assert!(s.len() > 10_000, "a day of map requests, got {}", s.len());
        assert!(s
            .iter()
            .all(|j| j.deadline == Some(SimDuration::from_millis(300))));
        assert!(s.iter().all(|j| j.is_edge()));
    }

    #[test]
    fn rush_hours_dominate() {
        let s = location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeDirect),
            SimDuration::from_days(2),
            &RngStreams::new(3),
            0,
        );
        let rush = s
            .iter()
            .filter(|j| {
                let h = j.arrival.hour_of_day();
                (7.0..10.0).contains(&h) || (16.0..19.0).contains(&h)
            })
            .count();
        let night = s.iter().filter(|j| j.arrival.hour_of_day() < 5.0).count();
        assert!(rush > 3 * night, "rush {rush} vs night {night}");
    }

    #[test]
    fn sense_actuate_is_periodic_with_period_deadline() {
        let cfg = SenseActuateConfig::hvac_loop(Flow::EdgeDirect);
        let s = sense_actuate_jobs(cfg, SimDuration::from_hours(1), &RngStreams::new(3), 0, 0);
        assert_eq!(s.len(), 360); // 3600 s / 10 s
        assert!(s.iter().all(|j| j.deadline == Some(cfg.period)));
        // Consecutive arrivals are one period apart, within jitter.
        let arr: Vec<f64> = s.iter().map(|j| j.arrival.as_secs_f64()).collect();
        for w in arr.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                (9.0..11.0).contains(&gap),
                "gap {gap} outside jitter bounds"
            );
        }
    }

    #[test]
    fn devices_get_independent_streams() {
        let cfg = SenseActuateConfig::hvac_loop(Flow::EdgeDirect);
        let a = sense_actuate_jobs(cfg, SimDuration::from_hours(1), &RngStreams::new(3), 0, 0);
        let b = sense_actuate_jobs(cfg, SimDuration::from_hours(1), &RngStreams::new(3), 1, 0);
        let same = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| x.arrival == y.arrival)
            .count();
        assert!(same < a.len() / 2, "jitter should differ between devices");
    }

    #[test]
    fn traffic_estimation_is_heavier_than_map_tiles() {
        let m = LocationServiceConfig::map_serving(Flow::EdgeIndirect);
        let t = LocationServiceConfig::traffic_estimation(Flow::EdgeIndirect);
        assert!(t.mean_work_gops > 10.0 * m.mean_work_gops);
        assert!(t.deadline > m.deadline);
    }
}
