//! The common job currency.
//!
//! Work is measured in **giga-operations** (Gop): a core running at
//! `f` GHz completes `f` Gop per second (see `dfhw::dvfs`). This makes
//! DVFS slowdowns, heterogeneous servers, and deadline feasibility all
//! directly computable.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// Job identifier, unique within a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Which DF3 flow a request belongs to (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Flow {
    /// Internet computing request (distributed cloud computing).
    Dcc,
    /// Local computing request sent directly to a DF server.
    EdgeDirect,
    /// Local computing request routed through the master node.
    EdgeIndirect,
}

/// One computing request.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Job {
    pub id: JobId,
    pub flow: Flow,
    /// Arrival time at its gateway.
    pub arrival: SimTime,
    /// Total work, Gop (spread evenly over `cores`).
    pub work_gops: f64,
    /// Rigid degree of parallelism (cores held simultaneously).
    pub cores: usize,
    /// Relative deadline from arrival (edge real-time requests).
    pub deadline: Option<SimDuration>,
    /// Request payload, bytes (device → server).
    pub input_bytes: usize,
    /// Response payload, bytes (server → device).
    pub output_bytes: usize,
    /// Owning organisation / user group (fairness accounting, ref [16]).
    pub org: u32,
}

impl Job {
    /// Service time on `cores` cores each delivering `gops_per_core`.
    pub fn service_time(&self, gops_per_core: f64) -> SimDuration {
        assert!(gops_per_core > 0.0);
        SimDuration::from_secs_f64(self.work_gops / (self.cores as f64 * gops_per_core))
    }

    /// Absolute deadline, if any.
    pub fn absolute_deadline(&self) -> Option<SimTime> {
        self.deadline.map(|d| self.arrival + d)
    }

    /// Whether completing at `finish` meets the deadline (jobs without
    /// deadlines always do).
    pub fn meets_deadline(&self, finish: SimTime) -> bool {
        match self.absolute_deadline() {
            Some(d) => finish <= d,
            None => true,
        }
    }

    /// Sanity-check the job's fields; generators call this before
    /// emitting, so malformed jobs never enter a simulation.
    pub fn validate(&self) -> Result<(), String> {
        if self.work_gops <= 0.0 || self.work_gops.is_nan() {
            return Err(format!("job {:?}: non-positive work", self.id));
        }
        if self.cores == 0 {
            return Err(format!("job {:?}: zero cores", self.id));
        }
        if let Some(d) = self.deadline {
            if d <= SimDuration::ZERO {
                return Err(format!("job {:?}: non-positive deadline", self.id));
            }
        }
        Ok(())
    }

    pub fn is_edge(&self) -> bool {
        matches!(self.flow, Flow::EdgeDirect | Flow::EdgeIndirect)
    }
}

impl simcore::snapshot::Snapshot for JobId {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u64(self.0);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(JobId(r.take_u64()?))
    }
}

impl simcore::snapshot::Snapshot for Flow {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u8(match self {
            Flow::Dcc => 0,
            Flow::EdgeDirect => 1,
            Flow::EdgeIndirect => 2,
        });
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Flow::Dcc),
            1 => Ok(Flow::EdgeDirect),
            2 => Ok(Flow::EdgeIndirect),
            b => Err(simcore::snapshot::SnapshotError::Corrupt(format!(
                "flow tag {b}"
            ))),
        }
    }
}

impl simcore::snapshot::Snapshot for Job {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.id.encode(w);
        self.flow.encode(w);
        self.arrival.encode(w);
        w.put_f64(self.work_gops);
        w.put_usize(self.cores);
        self.deadline.encode(w);
        w.put_usize(self.input_bytes);
        w.put_usize(self.output_bytes);
        w.put_u32(self.org);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(Job {
            id: JobId::decode(r)?,
            flow: Flow::decode(r)?,
            arrival: SimTime::decode(r)?,
            work_gops: r.take_f64()?,
            cores: r.take_usize()?,
            deadline: Option::<SimDuration>::decode(r)?,
            input_bytes: r.take_usize()?,
            output_bytes: r.take_usize()?,
            org: r.take_u32()?,
        })
    }
}

/// A generated stream of jobs, sorted by arrival.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobStream {
    jobs: Vec<Job>,
}

impl JobStream {
    pub fn new(mut jobs: Vec<Job>) -> Self {
        for j in &jobs {
            if let Err(e) = j.validate() {
                panic!("invalid job in stream: {e}");
            }
        }
        jobs.sort_by_key(|j| (j.arrival, j.id));
        JobStream { jobs }
    }

    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Total work in the stream, Gop.
    pub fn total_work_gops(&self) -> f64 {
        self.jobs.iter().map(|j| j.work_gops).sum()
    }

    /// Merge two streams (stable by arrival, then id).
    pub fn merge(mut self, other: JobStream) -> JobStream {
        self.jobs.extend(other.jobs);
        self.jobs.sort_by_key(|j| (j.arrival, j.id));
        JobStream { jobs: self.jobs }
    }

    /// Jobs arriving within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &Job> {
        self.jobs
            .iter()
            .filter(move |j| j.arrival >= from && j.arrival < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival_s: i64) -> Job {
        Job {
            id: JobId(id),
            flow: Flow::Dcc,
            arrival: SimTime::from_secs(arrival_s),
            work_gops: 100.0,
            cores: 2,
            deadline: None,
            input_bytes: 1_000,
            output_bytes: 1_000,
            org: 0,
        }
    }

    #[test]
    fn service_time_scales_with_cores_and_speed() {
        let j = job(1, 0);
        // 100 Gop over 2 cores at 2 Gops/core = 25 s.
        assert_eq!(j.service_time(2.0), SimDuration::from_secs(25));
        assert_eq!(j.service_time(1.0), SimDuration::from_secs(50));
    }

    #[test]
    fn deadline_semantics() {
        let mut j = job(1, 100);
        assert!(j.meets_deadline(SimTime::from_secs(1_000_000)));
        j.deadline = Some(SimDuration::from_secs(10));
        assert_eq!(j.absolute_deadline(), Some(SimTime::from_secs(110)));
        assert!(j.meets_deadline(SimTime::from_secs(110)));
        assert!(!j.meets_deadline(SimTime::from_secs(111)));
    }

    #[test]
    fn stream_sorts_by_arrival() {
        let s = JobStream::new(vec![job(2, 50), job(1, 10), job(3, 30)]);
        let arrivals: Vec<i64> = s.iter().map(|j| j.arrival.as_secs_f64() as i64).collect();
        assert_eq!(arrivals, vec![10, 30, 50]);
    }

    #[test]
    fn merge_interleaves() {
        let a = JobStream::new(vec![job(1, 10), job(2, 30)]);
        let b = JobStream::new(vec![job(3, 20)]);
        let m = a.merge(b);
        let ids: Vec<u64> = m.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![1, 3, 2]);
        assert!((m.total_work_gops() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn window_filters_half_open() {
        let s = JobStream::new(vec![job(1, 10), job(2, 20), job(3, 30)]);
        let n = s
            .window(SimTime::from_secs(10), SimTime::from_secs(30))
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn validate_rejects_bad_jobs() {
        let mut j = job(1, 0);
        j.work_gops = 0.0;
        assert!(j.validate().is_err());
        let mut j2 = job(2, 0);
        j2.cores = 0;
        assert!(j2.validate().is_err());
        let mut j3 = job(3, 0);
        j3.deadline = Some(SimDuration::ZERO);
        assert!(j3.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn stream_rejects_invalid_jobs() {
        let mut j = job(1, 0);
        j.cores = 0;
        JobStream::new(vec![j]);
    }
}
