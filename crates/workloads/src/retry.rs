//! Per-job retry metadata.
//!
//! [`Job`](crate::Job) is a `Copy` value constructed literally all over
//! the workload generators, so retry attempt counts live in a side
//! table keyed by [`JobId`] instead of a new field. The platform
//! records an attempt each time it re-submits a rejected edge request
//! and forgets the entry at any terminal outcome (completion, expiry,
//! abandonment), so the book only holds jobs with an open retry chain.

use crate::JobId;
use std::collections::BTreeMap;

/// Attempt counts for jobs currently in a retry chain.
#[derive(Debug, Clone, Default)]
pub struct RetryBook {
    attempts: BTreeMap<JobId, u32>,
}

impl RetryBook {
    pub fn new() -> Self {
        Self::default()
    }

    /// Retries already spent on `id` (0 for first-time rejections).
    pub fn attempts(&self, id: JobId) -> u32 {
        self.attempts.get(&id).copied().unwrap_or(0)
    }

    /// Record one more attempt; returns the new (1-based) attempt count.
    pub fn record_attempt(&mut self, id: JobId) -> u32 {
        let n = self.attempts.entry(id).or_insert(0);
        *n += 1;
        *n
    }

    /// Drop the entry at a terminal outcome.
    pub fn forget(&mut self, id: JobId) {
        self.attempts.remove(&id);
    }

    /// Jobs with an open retry chain.
    pub fn open_chains(&self) -> usize {
        self.attempts.len()
    }
}

impl simcore::snapshot::Snapshot for RetryBook {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.attempts.encode(w);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(RetryBook {
            attempts: BTreeMap::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_accumulate_until_forgotten() {
        let mut b = RetryBook::new();
        assert_eq!(b.attempts(JobId(7)), 0);
        assert_eq!(b.record_attempt(JobId(7)), 1);
        assert_eq!(b.record_attempt(JobId(7)), 2);
        assert_eq!(b.attempts(JobId(7)), 2);
        assert_eq!(b.attempts(JobId(8)), 0);
        assert_eq!(b.open_chains(), 1);
        b.forget(JobId(7));
        assert_eq!(b.attempts(JobId(7)), 0);
        assert_eq!(b.open_chains(), 0);
    }
}
