//! Arrival processes.
//!
//! §II-C: "the arrival laws of Internet and heating requests do not
//! necessarily depend on the same parameters. In particular, the
//! seasonality clearly affects the law of heating requests while
//! business opportunities will impact the second law." Arrivals here
//! are Poisson processes whose rate may vary with time (simulated by
//! thinning), with ready-made business-hours and seasonal modulators.

use rand::Rng;
use simcore::dist::exponential;
use simcore::time::{SimDuration, SimTime};

/// Generate arrival times of a homogeneous Poisson process with
/// `rate_per_s` over `[start, end)`.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rng: &mut R,
    rate_per_s: f64,
    start: SimTime,
    end: SimTime,
) -> Vec<SimTime> {
    assert!(rate_per_s >= 0.0);
    assert!(end >= start);
    let mut out = Vec::new();
    if rate_per_s == 0.0 {
        return out;
    }
    let mut t = start;
    loop {
        t += SimDuration::from_secs_f64(exponential(rng, rate_per_s));
        if t >= end {
            return out;
        }
        out.push(t);
    }
}

/// Generate a non-homogeneous Poisson process via thinning. `rate` gives
/// the instantaneous rate (per second) at any time; `rate_max` must
/// dominate it over the whole interval (checked probabilistically by a
/// debug assertion at each accepted point).
pub fn nonhomogeneous_arrivals<R, F>(
    rng: &mut R,
    rate: F,
    rate_max: f64,
    start: SimTime,
    end: SimTime,
) -> Vec<SimTime>
where
    R: Rng + ?Sized,
    F: Fn(SimTime) -> f64,
{
    assert!(rate_max > 0.0);
    let mut out = Vec::new();
    let mut t = start;
    loop {
        t += SimDuration::from_secs_f64(exponential(rng, rate_max));
        if t >= end {
            return out;
        }
        let r = rate(t);
        assert!(
            r <= rate_max * (1.0 + 1e-9),
            "rate {r} exceeds dominating rate {rate_max} at {t}"
        );
        assert!(r >= 0.0);
        if rng.gen::<f64>() * rate_max < r {
            out.push(t);
        }
    }
}

/// Business-hours modulation factor: 1.0 on weekday working hours,
/// lower evenings/nights/weekends. Days 0 and 1 of each 7-day cycle are
/// the weekend (the simulation epoch is a Saturday by convention).
pub fn business_factor(t: SimTime) -> f64 {
    let dow = t.day_index().rem_euclid(7);
    let h = t.hour_of_day();
    let weekend = dow == 0 || dow == 1;
    if weekend {
        0.25
    } else if (9.0..18.0).contains(&h) {
        1.0
    } else if (7.0..9.0).contains(&h) || (18.0..22.0).contains(&h) {
        0.55
    } else {
        0.15
    }
}

/// Seasonal modulation for heating-driven capacity: high in winter,
/// low in summer (peaks at `coldest_day`, 365-day period).
pub fn seasonal_factor(t: SimTime, coldest_day: f64, summer_floor: f64) -> f64 {
    assert!((0.0..=1.0).contains(&summer_floor));
    let doy = t.as_days_f64() % 365.0;
    let c = (2.0 * std::f64::consts::PI * (doy - coldest_day) / 365.0).cos();
    // c = 1 at the coldest day → factor 1; c = −1 mid-summer → floor.
    summer_floor + (1.0 - summer_floor) * (c + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::RngStreams;

    fn rng() -> rand_chacha::ChaCha8Rng {
        RngStreams::new(5).stream("arrivals")
    }

    #[test]
    fn poisson_count_matches_rate() {
        let mut r = rng();
        let arr = poisson_arrivals(
            &mut r,
            0.5,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(100_000),
        );
        let n = arr.len() as f64;
        assert!((n - 50_000.0).abs() < 1_000.0, "n = {n}");
        assert!(arr.windows(2).all(|w| w[0] < w[1]), "sorted, strictly");
    }

    #[test]
    fn zero_rate_is_empty() {
        let mut r = rng();
        assert!(poisson_arrivals(&mut r, 0.0, SimTime::ZERO, SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn thinning_follows_the_rate_profile() {
        let mut r = rng();
        // Rate 1.0 in the first half, 0.1 in the second.
        let end = SimTime::from_secs(200_000);
        let arr = nonhomogeneous_arrivals(
            &mut r,
            |t| {
                if t < SimTime::from_secs(100_000) {
                    1.0
                } else {
                    0.1
                }
            },
            1.0,
            SimTime::ZERO,
            end,
        );
        let first = arr
            .iter()
            .filter(|&&t| t < SimTime::from_secs(100_000))
            .count();
        let second = arr.len() - first;
        let ratio = first as f64 / second.max(1) as f64;
        assert!((8.0..12.5).contains(&ratio), "ratio {ratio} should be ~10");
    }

    #[test]
    fn business_hours_shape() {
        // Day 2 is a weekday (epoch is Saturday).
        let weekday_noon = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(12);
        let weekday_night = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(3);
        let weekend_noon = SimTime::ZERO + SimDuration::from_hours(12);
        assert_eq!(business_factor(weekday_noon), 1.0);
        assert!(business_factor(weekday_night) < 0.2);
        assert!(business_factor(weekend_noon) < 0.3);
    }

    #[test]
    fn seasonal_factor_peaks_at_coldest_day() {
        let coldest = 15.0;
        let winter = SimTime::ZERO + SimDuration::from_days(15);
        let summer = SimTime::ZERO + SimDuration::from_days(15 + 182);
        let w = seasonal_factor(winter, coldest, 0.2);
        let s = seasonal_factor(summer, coldest, 0.2);
        assert!((w - 1.0).abs() < 1e-6);
        assert!((s - 0.2).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn thinning_detects_rate_violation() {
        let mut r = rng();
        let _ = nonhomogeneous_arrivals(
            &mut r,
            |_| 2.0,
            1.0, // dominating rate too small
            SimTime::ZERO,
            SimTime::from_secs(10_000),
        );
    }
}
