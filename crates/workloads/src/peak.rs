//! Request-peak injection.
//!
//! §III-B: "A third problem is the management of requests peak. In the
//! case there are too many DCC requests, it might be impossible to
//! schedule the processing of an edge request (the cluster is full)."
//! Experiments E4/E5 need controllable peaks; [`inject_peak`] multiplies
//! a base stream's arrival density inside a window by replicating jobs
//! with jittered arrivals.

use crate::job::{Job, JobId, JobStream};
use rand::Rng;
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Description of a peak episode.
#[derive(Debug, Clone, Copy)]
pub struct Peak {
    /// Start of the peak window.
    pub start: SimTime,
    /// Duration of the peak window.
    pub duration: SimDuration,
    /// Arrival-density multiplier inside the window (≥ 1).
    pub factor: f64,
}

/// Return a new stream where jobs arriving inside the peak window are
/// replicated `factor − 1` times (in expectation) with arrivals jittered
/// uniformly inside the window. Replicas get ids above `id_base`.
pub fn inject_peak(base: &JobStream, peak: Peak, streams: &RngStreams, id_base: u64) -> JobStream {
    assert!(peak.factor >= 1.0, "peak factor must be ≥ 1");
    assert!(peak.duration > SimDuration::ZERO);
    let mut rng = streams.stream("peak-injector");
    let end = peak.start + peak.duration;
    let mut jobs: Vec<Job> = base.jobs().to_vec();
    let mut next_id = id_base;
    let extra = peak.factor - 1.0;
    for j in base.jobs() {
        if j.arrival < peak.start || j.arrival >= end {
            continue;
        }
        // Deterministic replication: floor(extra) copies plus a
        // Bernoulli for the fractional part.
        let mut copies = extra.floor() as usize;
        if rng.gen::<f64>() < extra.fract() {
            copies += 1;
        }
        for _ in 0..copies {
            let mut c = *j;
            c.id = JobId(next_id);
            next_id += 1;
            let offset = peak.duration.mul_f64(rng.gen::<f64>());
            c.arrival = peak.start + offset;
            jobs.push(c);
        }
    }
    JobStream::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcc::{boinc_jobs, BoincConfig};

    fn base() -> JobStream {
        boinc_jobs(
            BoincConfig::standard(),
            SimDuration::from_days(1),
            &RngStreams::new(8),
            0,
        )
    }

    #[test]
    fn peak_multiplies_window_density() {
        let b = base();
        let peak = Peak {
            start: SimTime::ZERO + SimDuration::from_hours(10),
            duration: SimDuration::from_hours(2),
            factor: 10.0,
        };
        let peaked = inject_peak(&b, peak, &RngStreams::new(8), 1_000_000);
        let count = |s: &JobStream| s.window(peak.start, peak.start + peak.duration).count();
        let before = count(&b) as f64;
        let after = count(&peaked) as f64;
        assert!(
            (after / before - 10.0).abs() < 1.5,
            "density ratio {}",
            after / before
        );
        // Outside the window nothing changed.
        let out_before = b.window(SimTime::ZERO, peak.start).count();
        let out_after = peaked.window(SimTime::ZERO, peak.start).count();
        assert_eq!(out_before, out_after);
    }

    #[test]
    fn factor_one_is_identity() {
        let b = base();
        let peaked = inject_peak(
            &b,
            Peak {
                start: SimTime::ZERO,
                duration: SimDuration::from_hours(1),
                factor: 1.0,
            },
            &RngStreams::new(8),
            1_000_000,
        );
        assert_eq!(b.len(), peaked.len());
    }

    #[test]
    fn replica_ids_are_fresh_and_unique() {
        let b = base();
        let peaked = inject_peak(
            &b,
            Peak {
                start: SimTime::ZERO,
                duration: SimDuration::from_hours(6),
                factor: 3.0,
            },
            &RngStreams::new(8),
            1_000_000,
        );
        let mut ids: Vec<u64> = peaked.iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), peaked.len());
    }

    #[test]
    #[should_panic]
    fn sub_unit_factor_rejected() {
        inject_peak(
            &base(),
            Peak {
                start: SimTime::ZERO,
                duration: SimDuration::HOUR,
                factor: 0.5,
            },
            &RngStreams::new(8),
            0,
        );
    }
}
