//! # workloads — request generators for the three DF3 flows
//!
//! §II-C defines the DF3 processing model as three request flows:
//! *heating requests*, *Internet computing requests* (DCC), and *local
//! computing requests* (edge, direct or indirect). This crate generates
//! all of them, plus the concrete application workloads the paper
//! motivates:
//!
//! - [`job`]: the common [`Job`](job::Job) currency (work in giga-ops,
//!   rigid core count, optional deadline, payload sizes, organisation).
//! - [`arrival`]: Poisson and non-homogeneous arrival processes
//!   (thinning), business-hour and seasonal modulation.
//! - [`render`]: 3-D rendering batches calibrated to the published 2016
//!   Qarnot numbers — 1 100 users, 600 000 images, 11 000 000 CPU-hours.
//! - [`dcc`]: other Internet flows — financial risk batches (the
//!   "major banks" of §II-A) and BOINC-style opportunistic bags.
//! - [`edge`]: location-based services (map serving, traffic
//!   estimation) and sense-compute-actuate loops.
//! - [`alarm`]: the in-situ audio alarm-detection pipeline of Durand
//!   et al. [11] (experiment E11).
//! - [`heating`]: thermostat-driven heating request streams.
//! - [`peak`]: peak injection (§III-B's "management of requests peak").
//! - [`traces`]: CSV export/import of job streams.

pub mod alarm;
pub mod arrival;
pub mod dcc;
pub mod edge;
pub mod heating;
pub mod job;
pub mod peak;
pub mod render;
pub mod retry;
pub mod traces;

pub use job::{Flow, Job, JobId};
pub use retry::RetryBook;
