//! The Qarnot rendering workload, calibrated to the paper's numbers.
//!
//! §III: "In 2016, the Qarnot rendering platform (based on digital
//! heaters) had **1100 users** that rendered **600,000 images** for
//! **11,000,000 hours of computations**." That gives a mean of
//! ~18.3 CPU-hours per image, a year-round mean occupancy of
//! ~1 255 busy cores, and a user population whose activity is heavily
//! skewed (studios submit batches of frames; researchers submit a few).
//!
//! [`RenderYear`] generates one simulated year of this workload:
//! Pareto-skewed per-user activity, lognormal per-frame cost, batch
//! submissions during business hours.

use crate::arrival::{business_factor, nonhomogeneous_arrivals};
use crate::job::{Flow, Job, JobId, JobStream};
use simcore::dist::{discrete, lognormal_mean_cv, pareto};
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Calibration of a rendering year.
#[derive(Debug, Clone, Copy)]
pub struct RenderCalibration {
    /// Number of distinct users.
    pub n_users: usize,
    /// Total images over the year.
    pub total_images: u64,
    /// Total compute across the year, CPU-hours.
    pub total_cpu_hours: f64,
    /// Reference core speed for the CPU-hour definition, Gops/s.
    pub reference_gops: f64,
    /// Mean frames per submitted batch.
    pub mean_batch_frames: f64,
}

impl RenderCalibration {
    /// The published 2016 Qarnot figures.
    pub fn qarnot_2016() -> Self {
        RenderCalibration {
            n_users: 1_100,
            total_images: 600_000,
            total_cpu_hours: 11_000_000.0,
            reference_gops: 2.4, // a mid-ladder desktop i7 core
            mean_batch_frames: 48.0,
        }
    }

    /// Mean CPU-hours per image.
    pub fn cpu_hours_per_image(&self) -> f64 {
        self.total_cpu_hours / self.total_images as f64
    }

    /// Mean work per image, Gop.
    pub fn gops_per_image(&self) -> f64 {
        self.cpu_hours_per_image() * 3_600.0 * self.reference_gops
    }

    /// Year-round mean busy cores implied by the calibration.
    pub fn mean_busy_cores(&self) -> f64 {
        self.total_cpu_hours / (365.0 * 24.0)
    }
}

/// A generated year of rendering jobs. Each [`Job`] is one *batch* of
/// frames (a studio submission); `work_gops` covers all its frames.
#[derive(Debug, Clone)]
pub struct RenderYear {
    pub stream: JobStream,
    pub calibration: RenderCalibration,
    /// Frames carried by each job (parallel to `stream.jobs()`).
    pub frames: Vec<u32>,
}

impl RenderYear {
    /// Generate with the standard calibration.
    pub fn generate(streams: &RngStreams) -> Self {
        Self::generate_with(RenderCalibration::qarnot_2016(), streams, 1.0)
    }

    /// Generate a scaled year (`scale` < 1 shrinks the workload while
    /// preserving its shape — useful for fast tests).
    pub fn generate_with(cal: RenderCalibration, streams: &RngStreams, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        let mut rng = streams.stream("render-year");
        let total_images = (cal.total_images as f64 * scale) as u64;
        let n_batches = ((total_images as f64 / cal.mean_batch_frames).ceil() as usize).max(1);

        // Pareto-skewed user weights: a few studios dominate.
        let user_weights: Vec<f64> = (0..cal.n_users)
            .map(|_| pareto(&mut rng, 1.0, 1.3))
            .collect();

        // Batch submissions arrive through the year, business-hours shaped.
        let year_end = SimTime::ZERO + SimDuration::YEAR;
        let mean_rate = n_batches as f64 / SimDuration::YEAR.as_secs_f64();
        let peak = mean_rate / 0.45; // business_factor averages ≈ 0.45
        let arrivals = nonhomogeneous_arrivals(
            &mut rng,
            |t| peak * business_factor(t),
            peak,
            SimTime::ZERO,
            year_end,
        );

        let mut jobs = Vec::with_capacity(arrivals.len());
        let mut frames = Vec::with_capacity(arrivals.len());
        let mut emitted_images = 0u64;
        for (i, &t) in arrivals.iter().enumerate() {
            if emitted_images >= total_images {
                break;
            }
            // Batch size: geometric-ish via lognormal, ≥ 1 frame.
            let batch =
                (lognormal_mean_cv(&mut rng, cal.mean_batch_frames, 1.0).round() as u64).max(1);
            let batch = batch.min(total_images - emitted_images);
            emitted_images += batch;
            let per_image = lognormal_mean_cv(&mut rng, cal.gops_per_image(), 0.8);
            let user = discrete(&mut rng, &user_weights) as u32;
            // Frames are embarrassingly parallel: the batch asks for as
            // many cores as frames, capped at one Q.rad's core count so
            // a batch can always be placed on a single DF server (the
            // Qarnot middleware splits submissions into heater-sized
            // work units).
            let cores = (batch as usize).clamp(1, 16);
            jobs.push(Job {
                id: JobId(i as u64),
                flow: Flow::Dcc,
                arrival: t,
                work_gops: per_image * batch as f64,
                cores,
                deadline: None,
                input_bytes: 50_000_000,                  // scene assets
                output_bytes: 8_000_000 * batch as usize, // rendered frames
                org: user,
            });
            frames.push(batch as u32);
        }
        RenderYear {
            stream: JobStream::new(jobs),
            calibration: cal,
            frames,
        }
    }

    /// Total frames across all jobs.
    pub fn total_frames(&self) -> u64 {
        self.frames.iter().map(|&f| f as u64).sum()
    }

    /// Total CPU-hours implied by the generated work.
    pub fn total_cpu_hours(&self) -> f64 {
        self.stream.total_work_gops() / self.calibration.reference_gops / 3_600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_derives_paper_ratios() {
        let c = RenderCalibration::qarnot_2016();
        assert!((c.cpu_hours_per_image() - 18.33).abs() < 0.01);
        assert!((c.mean_busy_cores() - 1_255.7).abs() < 1.0);
    }

    #[test]
    fn scaled_year_preserves_cpu_hours_per_image() {
        let y = RenderYear::generate_with(
            RenderCalibration::qarnot_2016(),
            &RngStreams::new(42),
            0.02, // 12 000 images — fast to generate
        );
        let frames = y.total_frames();
        assert!(
            (11_000..=12_000).contains(&frames),
            "frames = {frames} should be ≈ 12 000"
        );
        let hours_per_image = y.total_cpu_hours() / frames as f64;
        assert!(
            (hours_per_image - 18.33).abs() / 18.33 < 0.25,
            "CPU-h/image = {hours_per_image}"
        );
    }

    #[test]
    fn activity_is_user_skewed() {
        let y =
            RenderYear::generate_with(RenderCalibration::qarnot_2016(), &RngStreams::new(42), 0.02);
        let mut per_user = std::collections::HashMap::new();
        for j in y.stream.iter() {
            *per_user.entry(j.org).or_insert(0u32) += 1;
        }
        let mut counts: Vec<u32> = per_user.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = counts.iter().take(counts.len() / 10).sum();
        let total: u32 = counts.iter().sum();
        // Under uniform activity the top decile of active users would hold
        // ≈ 10 % of batches (plus ties); Pareto weights must at least
        // double that, and some studio must submit repeatedly.
        assert!(
            top10 as f64 / total as f64 > 0.2,
            "top-decile users should dominate ({top10}/{total})"
        );
        assert!(
            counts[0] >= 3,
            "the biggest studio should submit repeatedly"
        );
    }

    #[test]
    fn submissions_follow_business_hours() {
        let y =
            RenderYear::generate_with(RenderCalibration::qarnot_2016(), &RngStreams::new(42), 0.02);
        let day: usize = y
            .stream
            .iter()
            .filter(|j| (9.0..18.0).contains(&j.arrival.hour_of_day()))
            .count();
        let total = y.stream.len();
        assert!(
            day as f64 / total as f64 > 0.5,
            "business hours should dominate: {day}/{total}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a =
            RenderYear::generate_with(RenderCalibration::qarnot_2016(), &RngStreams::new(9), 0.01);
        let b =
            RenderYear::generate_with(RenderCalibration::qarnot_2016(), &RngStreams::new(9), 0.01);
        assert_eq!(a.stream.len(), b.stream.len());
        assert_eq!(a.total_frames(), b.total_frames());
    }
}
