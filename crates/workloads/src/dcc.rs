//! Other Internet (DCC) flows: financial risk batches and BOINC-style
//! opportunistic bags.
//!
//! §II-A: the Qarnot platform "is used by major banks and financial
//! services in France"; Liu et al.'s first data-furnace application
//! class is "seasonal and opportunistic applications like those we have
//! in the BOINC middleware" [6, 8].

use crate::arrival::{business_factor, nonhomogeneous_arrivals, poisson_arrivals};
use crate::job::{Flow, Job, JobId, JobStream};
use simcore::dist::lognormal_mean_cv;
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Generator for overnight / intraday financial risk batches.
#[derive(Debug, Clone, Copy)]
pub struct FinanceConfig {
    /// Mean submissions per business day.
    pub batches_per_day: f64,
    /// Mean work per batch, Gop.
    pub mean_work_gops: f64,
    /// Cores per batch (Monte-Carlo risk sweeps parallelise well).
    pub cores: usize,
    /// Organisation id to tag jobs with.
    pub org: u32,
}

impl FinanceConfig {
    pub fn bank() -> Self {
        FinanceConfig {
            batches_per_day: 24.0,
            mean_work_gops: 250_000.0, // ≈ 30 core-hours at 2.4 Gops
            cores: 32,
            org: 100,
        }
    }
}

/// Generate finance batches over `[0, span)`.
pub fn finance_jobs(
    cfg: FinanceConfig,
    span: SimDuration,
    streams: &RngStreams,
    id_base: u64,
) -> JobStream {
    let mut rng = streams.stream("dcc-finance");
    let mean_rate = cfg.batches_per_day / 86_400.0;
    let peak = mean_rate / 0.45;
    let arrivals = nonhomogeneous_arrivals(
        &mut rng,
        |t| peak * business_factor(t),
        peak,
        SimTime::ZERO,
        SimTime::ZERO + span,
    );
    let jobs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &t)| Job {
            id: JobId(id_base + i as u64),
            flow: Flow::Dcc,
            arrival: t,
            work_gops: lognormal_mean_cv(&mut rng, cfg.mean_work_gops, 0.6),
            cores: cfg.cores,
            deadline: None,
            input_bytes: 5_000_000,
            output_bytes: 2_000_000,
            org: cfg.org,
        })
        .collect();
    JobStream::new(jobs)
}

/// Generator for BOINC-style opportunistic bags-of-tasks: steady trickle
/// of small independent tasks, deadline-free, preemption-friendly.
#[derive(Debug, Clone, Copy)]
pub struct BoincConfig {
    /// Tasks per hour, around the clock.
    pub tasks_per_hour: f64,
    /// Mean work per task, Gop.
    pub mean_work_gops: f64,
    pub org: u32,
}

impl BoincConfig {
    pub fn standard() -> Self {
        BoincConfig {
            tasks_per_hour: 120.0,
            mean_work_gops: 8_640.0, // ≈ 1 core-hour at 2.4 Gops
            org: 200,
        }
    }
}

/// Generate BOINC tasks over `[0, span)`.
pub fn boinc_jobs(
    cfg: BoincConfig,
    span: SimDuration,
    streams: &RngStreams,
    id_base: u64,
) -> JobStream {
    let mut rng = streams.stream("dcc-boinc");
    let arrivals = poisson_arrivals(
        &mut rng,
        cfg.tasks_per_hour / 3_600.0,
        SimTime::ZERO,
        SimTime::ZERO + span,
    );
    let jobs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &t)| Job {
            id: JobId(id_base + i as u64),
            flow: Flow::Dcc,
            arrival: t,
            work_gops: lognormal_mean_cv(&mut rng, cfg.mean_work_gops, 1.0),
            cores: 1,
            deadline: None,
            input_bytes: 200_000,
            output_bytes: 100_000,
            org: cfg.org,
        })
        .collect();
    JobStream::new(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finance_lands_in_business_hours() {
        let s = finance_jobs(
            FinanceConfig::bank(),
            SimDuration::from_days(28),
            &RngStreams::new(1),
            0,
        );
        assert!(s.len() > 300, "4 weeks of batches, got {}", s.len());
        let biz = s
            .iter()
            .filter(|j| {
                let dow = j.arrival.day_index().rem_euclid(7);
                dow >= 2 && (9.0..18.0).contains(&j.arrival.hour_of_day())
            })
            .count();
        assert!(biz as f64 / s.len() as f64 > 0.5);
    }

    #[test]
    fn boinc_is_steady_around_the_clock() {
        let s = boinc_jobs(
            BoincConfig::standard(),
            SimDuration::from_days(7),
            &RngStreams::new(1),
            0,
        );
        let expected = 120.0 * 24.0 * 7.0;
        assert!((s.len() as f64 - expected).abs() / expected < 0.1);
        let night = s.iter().filter(|j| j.arrival.hour_of_day() < 6.0).count();
        assert!(
            (night as f64 / s.len() as f64 - 0.25).abs() < 0.05,
            "night share should be ~25 %"
        );
    }

    #[test]
    fn finance_batches_are_heavier_than_boinc_tasks() {
        let f = finance_jobs(
            FinanceConfig::bank(),
            SimDuration::from_days(7),
            &RngStreams::new(2),
            0,
        );
        let b = boinc_jobs(
            BoincConfig::standard(),
            SimDuration::from_days(7),
            &RngStreams::new(2),
            1_000_000,
        );
        let mean = |s: &JobStream| s.total_work_gops() / s.len() as f64;
        assert!(mean(&f) > 10.0 * mean(&b));
    }

    #[test]
    fn id_bases_do_not_collide() {
        let f = finance_jobs(
            FinanceConfig::bank(),
            SimDuration::from_days(3),
            &RngStreams::new(2),
            0,
        );
        let b = boinc_jobs(
            BoincConfig::standard(),
            SimDuration::from_days(3),
            &RngStreams::new(2),
            1_000_000,
        );
        let merged = f.merge(b);
        let mut ids: Vec<u64> = merged.iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), merged.len(), "job ids must be unique");
    }
}
