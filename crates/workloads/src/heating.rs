//! Heating request streams.
//!
//! §II-C: "The first flow is those of heating requests. The purpose of
//! these requests is to deliver heat to the environment in which the DF
//! server is deployed. … Heating requests could be collaborative or
//! individual." A heating request is *not* a job — it is a target the
//! regulator must hold — so it has its own type.

use serde::{Deserialize, Serialize};
use simcore::dist::{normal, uniform};
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Scope of a heating request (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeatingScope {
    /// Targets one specific DF server's room.
    Individual { server: usize },
    /// Targets the mean temperature of a group of rooms.
    Collaborative { building: usize },
}

/// A heating request: "set the temperature at 20 degrees".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeatingRequest {
    /// When the resident issues it.
    pub at: SimTime,
    pub scope: HeatingScope,
    /// Requested temperature, °C.
    pub target_c: f64,
}

/// Generate a household's daily setpoint-change requests over `[0, span)`:
/// a morning raise, an evening raise, a bedtime setback — with household-
/// specific preferred temperatures and some day-to-day variation.
pub fn household_requests(
    span: SimDuration,
    streams: &RngStreams,
    server: usize,
) -> Vec<HeatingRequest> {
    let mut rng = streams.stream_indexed("heating-req", server as u64);
    // Household-specific comfort preference, persistent across days.
    let preferred = normal(&mut rng, 20.0, 0.8).clamp(18.0, 23.0);
    let setback = preferred - uniform(&mut rng, 2.0, 4.0);
    let mut out = Vec::new();
    let days = span.as_days_f64().ceil() as i64;
    for d in 0..days {
        let day = SimTime::ZERO + SimDuration::from_days(d);
        let wake = uniform(&mut rng, 6.0, 8.0);
        let sleep = uniform(&mut rng, 21.5, 23.5);
        out.push(HeatingRequest {
            at: day + SimDuration::from_hours_f64(wake),
            scope: HeatingScope::Individual { server },
            target_c: preferred + normal(&mut rng, 0.0, 0.2),
        });
        out.push(HeatingRequest {
            at: day + SimDuration::from_hours_f64(sleep),
            scope: HeatingScope::Individual { server },
            target_c: setback,
        });
    }
    out.retain(|r| r.at < SimTime::ZERO + span);
    out.sort_by_key(|r| r.at);
    out
}

/// The target in force at time `t` given a sorted request list and a
/// default before the first request.
pub fn target_at(requests: &[HeatingRequest], t: SimTime, default_c: f64) -> f64 {
    match requests.iter().rev().find(|r| r.at <= t) {
        Some(r) => r.target_c,
        None => default_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_requests_per_day() {
        let reqs = household_requests(SimDuration::from_days(10), &RngStreams::new(6), 0);
        assert_eq!(reqs.len(), 20);
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn day_target_above_night_target() {
        let reqs = household_requests(SimDuration::from_days(5), &RngStreams::new(6), 0);
        let noon = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(12);
        let night = SimTime::ZERO
            + SimDuration::from_days(2)
            + SimDuration::from_hours(23)
            + SimDuration::from_secs(45 * 60);
        let day_t = target_at(&reqs, noon, 19.0);
        let night_t = target_at(&reqs, night, 19.0);
        assert!(
            day_t > night_t,
            "daytime target {day_t} should exceed night {night_t}"
        );
        assert!((18.0..23.5).contains(&day_t));
    }

    #[test]
    fn default_before_first_request() {
        let reqs = household_requests(SimDuration::from_days(2), &RngStreams::new(6), 0);
        assert_eq!(target_at(&reqs, SimTime::ZERO, 19.5), 19.5);
    }

    #[test]
    fn households_differ_but_are_deterministic() {
        let a = household_requests(SimDuration::from_days(3), &RngStreams::new(6), 0);
        let b = household_requests(SimDuration::from_days(3), &RngStreams::new(6), 1);
        let a2 = household_requests(SimDuration::from_days(3), &RngStreams::new(6), 0);
        assert_ne!(a[0].target_c, b[0].target_c);
        assert_eq!(a[0].target_c, a2[0].target_c);
    }
}
