//! The in-situ audio alarm-detection pipeline (Durand et al. [11]).
//!
//! §III-B: "in [11], it is shown that near real-time applications for
//! audio alarm detection (alarm sound, fall detection, etc.) could be
//! operated on digital heaters." The pipeline is:
//!
//! 1. a microphone produces 16 kHz 16-bit audio;
//! 2. frames of `window` seconds are cut with `hop` spacing;
//! 3. a feature extractor (MFCC-class) runs per frame;
//! 4. a classifier (GMM/small-CNN class) runs per frame;
//! 5. positives raise an alert (tiny payload, may traverse LoRa).
//!
//! Experiment E11 compares running stages 3–4 on the local Q.rad
//! against shipping frames to the cloud.

use crate::job::{Flow, Job, JobId, JobStream};
use simcore::dist::bernoulli;
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Parameters of the detection pipeline.
#[derive(Debug, Clone, Copy)]
pub struct AlarmPipeline {
    /// Sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Bytes per sample (16-bit mono = 2).
    pub bytes_per_sample: usize,
    /// Analysis window length.
    pub window: SimDuration,
    /// Hop between consecutive windows.
    pub hop: SimDuration,
    /// Feature-extraction cost per window, Gop.
    pub feature_gops: f64,
    /// Classification cost per window, Gop.
    pub classify_gops: f64,
    /// End-to-end alert budget (detection must complete within this).
    pub deadline: SimDuration,
    /// Probability a window contains an alarm event.
    pub event_prob: f64,
}

impl AlarmPipeline {
    /// The configuration used throughout the experiments: 1 s windows,
    /// 0.5 s hop, 500 ms alert budget.
    pub fn standard() -> Self {
        AlarmPipeline {
            sample_rate_hz: 16_000.0,
            bytes_per_sample: 2,
            window: SimDuration::SECOND,
            hop: SimDuration::from_millis(500),
            feature_gops: 0.08,
            classify_gops: 0.25,
            deadline: SimDuration::from_millis(500),
            event_prob: 1e-4,
        }
    }

    /// Raw audio bytes in one analysis window.
    pub fn window_bytes(&self) -> usize {
        (self.sample_rate_hz * self.window.as_secs_f64()) as usize * self.bytes_per_sample
    }

    /// Total compute per window, Gop.
    pub fn window_gops(&self) -> f64 {
        self.feature_gops + self.classify_gops
    }

    /// Sustained raw-audio bandwidth the *cloud* variant must ship,
    /// bit/s (the quantity that breaks low-power uplinks, see
    /// `dfnet::lowpower`).
    pub fn raw_stream_bps(&self) -> f64 {
        self.sample_rate_hz
            * self.bytes_per_sample as f64
            * 8.0
            * (self.window.as_secs_f64() / self.hop.as_secs_f64())
    }
}

/// Generate the per-window classification jobs of one microphone over
/// `[0, span)`. `flow` selects local (direct) or cloud-bound handling;
/// in both cases `input_bytes` is the window payload that must move.
pub fn alarm_jobs(
    pipeline: AlarmPipeline,
    span: SimDuration,
    streams: &RngStreams,
    mic: u64,
    id_base: u64,
    flow: Flow,
) -> (JobStream, u64) {
    let mut rng = streams.stream_indexed("alarm-mic", mic);
    let mut jobs = Vec::new();
    let mut events = 0u64;
    let mut t = SimTime::ZERO;
    let mut i = 0u64;
    while t < SimTime::ZERO + span {
        if bernoulli(&mut rng, pipeline.event_prob) {
            events += 1;
        }
        jobs.push(Job {
            id: JobId(id_base + i),
            flow,
            arrival: t + pipeline.window, // a window is ready once filled
            work_gops: pipeline.window_gops(),
            cores: 1,
            deadline: Some(pipeline.deadline),
            input_bytes: pipeline.window_bytes(),
            output_bytes: 16, // the verdict
            org: 400 + mic as u32,
        });
        t += pipeline.hop;
        i += 1;
    }
    (JobStream::new(jobs), events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_payload_is_32kb() {
        let p = AlarmPipeline::standard();
        assert_eq!(p.window_bytes(), 32_000);
    }

    #[test]
    fn raw_stream_is_half_a_megabit() {
        let p = AlarmPipeline::standard();
        // 256 kbit/s × 2 (50 % overlap) = 512 kbit/s.
        assert!((p.raw_stream_bps() - 512_000.0).abs() < 1.0);
    }

    #[test]
    fn one_hour_produces_7200_windows() {
        let (s, _) = alarm_jobs(
            AlarmPipeline::standard(),
            SimDuration::HOUR,
            &RngStreams::new(4),
            0,
            0,
            Flow::EdgeDirect,
        );
        assert_eq!(s.len(), 7_200);
        assert!(s
            .iter()
            .all(|j| j.deadline == Some(SimDuration::from_millis(500))));
    }

    #[test]
    fn classification_fits_one_qrad_core() {
        // A mid-ladder core (2.4 Gops) must classify a window well within
        // the 500 ms budget — the claim of ref [11].
        let p = AlarmPipeline::standard();
        let job_time = p.window_gops() / 2.4;
        assert!(
            job_time < 0.2,
            "per-window compute {job_time:.3} s must be ≪ 500 ms"
        );
    }

    #[test]
    fn events_are_rare() {
        let (s, events) = alarm_jobs(
            AlarmPipeline::standard(),
            SimDuration::from_days(1),
            &RngStreams::new(4),
            0,
            0,
            Flow::EdgeDirect,
        );
        let expected = s.len() as f64 * 1e-4;
        assert!(
            (events as f64) < expected * 3.0 + 10.0,
            "events {events} should be ≈ {expected:.0}"
        );
    }

    #[test]
    fn mic_streams_are_independent() {
        let p = AlarmPipeline::standard();
        let (_, e0) = alarm_jobs(
            p,
            SimDuration::from_days(7),
            &RngStreams::new(4),
            0,
            0,
            Flow::EdgeDirect,
        );
        let (_, e1) = alarm_jobs(
            p,
            SimDuration::from_days(7),
            &RngStreams::new(4),
            1,
            0,
            Flow::EdgeDirect,
        );
        // Not a strict inequality requirement — just evidence of
        // different draws (equality of both week-long counts is unlikely
        // but possible; check the generator doesn't reuse the stream).
        let (_, e0b) = alarm_jobs(
            p,
            SimDuration::from_days(7),
            &RngStreams::new(4),
            0,
            0,
            Flow::EdgeDirect,
        );
        assert_eq!(e0, e0b, "same mic, same seed → same events");
        let _ = e1;
    }
}
