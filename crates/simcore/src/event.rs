//! The future-event list: a priority queue ordered by time with a
//! **stable FIFO tie-break** — two events scheduled for the same instant
//! fire in the order they were scheduled. This is what makes simulations
//! deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Cancellation is O(1) amortised: cancelled ids are recorded in a sorted
/// set and matching entries are skipped lazily at pop time.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: std::collections::HashSet<u64>,
    /// Sequence numbers of events scheduled but not yet fired/cancelled.
    pending: std::collections::HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            pending: std::collections::HashSet::new(),
            next_seq: 0,
        }
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Panics if `time` is `SimTime::MAX` (reserved as "never").
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(time < SimTime::MAX, "cannot schedule at SimTime::MAX");
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            time,
            seq,
            id,
            payload,
        });
        self.pending.insert(seq);
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (i.e. this call actually removed it).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let e = self.heap.pop()?;
        self.pending.remove(&e.id.0);
        Some((e.time, e.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id.0) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Remove all events, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.pending.len();
        self.heap.clear();
        self.cancelled.clear();
        self.pending.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "b");
        q.schedule(t(1), "a");
        q.schedule(t(9), "c");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.pop(), Some((t(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(3), 3);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.schedule(t(i), i)).collect();
        assert_eq!(q.len(), 10);
        q.cancel(ids[4]);
        assert_eq!(q.len(), 9);
        q.pop();
        assert_eq!(q.len(), 8);
        assert_eq!(q.clear(), 8);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        q.schedule(t(20), 20);
        assert_eq!(q.pop().unwrap().1, 10);
        q.schedule(t(15), 15);
        q.schedule(t(5), 5); // in the past relative to last pop; queue permits it
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 15);
        assert_eq!(q.pop().unwrap().1, 20);
    }

    #[test]
    #[should_panic]
    fn scheduling_at_max_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, ());
    }

    #[test]
    fn large_volume_ordering() {
        // Pseudo-random-ish times via a simple LCG to avoid RNG deps here.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            q.schedule(SimTime::ZERO + SimDuration::from_micros((x >> 20) as i64), x);
        }
        let mut last = SimTime::ZERO;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
        }
    }
}
