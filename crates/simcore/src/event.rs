//! The future-event list: a priority queue ordered by time with a
//! **stable FIFO tie-break** — two events scheduled for the same instant
//! fire in the order they were scheduled. This is what makes simulations
//! deterministic regardless of heap internals.
//!
//! ## The slab + generation-tag scheme
//!
//! The queue is split into two structures:
//!
//! - a **slab** of payload slots, recycled through a free list, and
//! - a 4-ary min-heap of small `Copy` entries `(time, seq, slot, gen)`
//!   (wider nodes halve sift depth and keep sibling comparisons inside
//!   one or two cache lines).
//!
//! Every slot carries a **generation counter**. An [`EventId`] packs
//! `(slot, generation)`; the id is *live* only while its generation
//! matches the slot's. Cancellation bumps the slot's generation — O(1),
//! no hashing, no heap surgery — which simultaneously invalidates the
//! buried heap entry and returns the slot to the free list. [`pop`] and
//! [`peek_time`] skip stale entries lazily by comparing generations, so
//! a cancelled event costs one heap pop when its time comes, nothing
//! more. Compared with the previous `BinaryHeap` + two `HashSet<u64>`
//! side tables, every schedule/pop/cancel saves two hash lookups and the
//! heap sifts move 24-byte entries instead of full payloads.
//!
//! Generation counters are 32-bit: an id could only alias after a single
//! slot is cancelled-and-reused 2³² times while one stale heap entry for
//! it stays buried, which cannot happen inside one simulation run (the
//! heap would hold 2³² entries).
//!
//! ## Determinism guarantee
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotone
//! schedule-order counter. Slot assignment, free-list order, and
//! generation values never influence pop order, so the event sequence is
//! a pure function of the schedule/cancel call sequence — bit-identical
//! across runs, platforms, and queue implementations. The
//! [`legacy::LegacyEventQueue`] (the previous implementation) is kept,
//! always compiled, so benches and tests can verify both performance and
//! order-equivalence; building with the `legacy-queue` feature swaps it
//! back in as the engine's queue for whole-system A/B runs.
//!
//! [`pop`]: SlabEventQueue::pop
//! [`peek_time`]: SlabEventQueue::peek_time

use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
///
/// Packs `(slot, generation)`; stale handles (fired or cancelled events)
/// are recognised and rejected in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn pack(slot: u32, gen: u32) -> EventId {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Ids checkpoint as their packed `(slot, generation)` word, so handles
/// a model holds across a snapshot stay live after restore.
impl Snapshot for EventId {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(EventId(r.take_u64()?))
    }
}

/// A heap entry: 24 bytes, `Copy`, payload left behind in the slab.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl HeapEntry {
    /// Strict min-order on `(time, seq)` — unique by construction, so
    /// the heap's pop order is a total order independent of layout.
    #[inline]
    fn before(&self, other: &HeapEntry) -> bool {
        (self.time, self.seq) < (other.time, other.seq)
    }
}

/// A 4-ary min-heap of [`HeapEntry`]s. A wider node shrinks sift depth
/// (log₄ vs log₂) and keeps all four children in one or two cache lines
/// of the 24-byte entries — measurably faster than `std::BinaryHeap` at
/// the few-thousand-entry depths a platform run sustains.
struct MinHeap4 {
    v: Vec<HeapEntry>,
}

impl MinHeap4 {
    const ARITY: usize = 4;

    fn with_capacity(n: usize) -> Self {
        MinHeap4 {
            v: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn peek(&self) -> Option<&HeapEntry> {
        self.v.first()
    }

    fn clear(&mut self) {
        self.v.clear();
    }

    fn push(&mut self, e: HeapEntry) {
        // Hole-based sift-up: keep `e` in a register, shift losing
        // parents down, write the entry once at its final position.
        let mut i = self.v.len();
        self.v.push(e);
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if e.before(&self.v[parent]) {
                self.v[i] = self.v[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.v[i] = e;
    }

    fn pop(&mut self) -> Option<HeapEntry> {
        let last = self.v.pop()?;
        if self.v.is_empty() {
            return Some(last);
        }
        let top = self.v[0];
        // Hole-based sift-down of the displaced last element: promote
        // the smallest child into the hole until `last` wins.
        let n = self.v.len();
        let mut i = 0;
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= n {
                break;
            }
            let end = (first_child + Self::ARITY).min(n);
            let mut min = first_child;
            let mut min_e = self.v[first_child];
            for c in first_child + 1..end {
                let e = self.v[c];
                if e.before(&min_e) {
                    min = c;
                    min_e = e;
                }
            }
            if min_e.before(&last) {
                self.v[i] = min_e;
                i = min;
            } else {
                break;
            }
        }
        self.v[i] = last;
        Some(top)
    }
}

/// A payload slot in the slab.
struct Slot<E> {
    /// Current generation; an [`EventId`] is live iff its generation
    /// matches.
    gen: u32,
    payload: Option<E>,
}

/// A deterministic future-event list (slab-backed; see module docs).
pub struct SlabEventQueue<E> {
    heap: MinHeap4,
    slots: Vec<Slot<E>>,
    /// Indices of vacant slots, reused LIFO for cache warmth.
    free: Vec<u32>,
    next_seq: u64,
    /// Live (scheduled, not cancelled, not fired) events.
    live: usize,
    /// High-water mark of `live` over the queue's lifetime.
    peak_live: usize,
}

impl<E> Default for SlabEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SlabEventQueue<E> {
    pub fn new() -> Self {
        SlabEventQueue {
            heap: MinHeap4::with_capacity(0),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            peak_live: 0,
        }
    }

    /// Pre-size for `n` concurrent events (heap and slab).
    pub fn with_capacity(n: usize) -> Self {
        SlabEventQueue {
            heap: MinHeap4::with_capacity(n),
            slots: Vec::with_capacity(n),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            peak_live: 0,
        }
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of concurrently pending events.
    pub fn peak_depth(&self) -> usize {
        self.peak_live
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Panics if `time` is `SimTime::MAX` (reserved as "never").
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(time < SimTime::MAX, "cannot schedule at SimTime::MAX");
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                debug_assert!(entry.payload.is_none());
                entry.payload = Some(payload);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry {
            time,
            seq,
            slot,
            gen,
        });
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        EventId::pack(slot, gen)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (i.e. this call actually removed it). O(1): the
    /// slot's generation is bumped, orphaning the buried heap entry.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot() as usize;
        if slot >= self.slots.len() {
            return false;
        }
        let entry = &mut self.slots[slot];
        if entry.gen != id.generation() || entry.payload.is_none() {
            return false;
        }
        entry.payload = None;
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        true
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_stale();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let e = self.heap.pop()?;
            let slot = &mut self.slots[e.slot as usize];
            if slot.gen != e.gen {
                continue; // stale: cancelled (or recycled) since scheduling
            }
            let payload = slot.payload.take().expect("live slot had no payload");
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(e.slot);
            self.live -= 1;
            return Some((e.time, payload));
        }
    }

    /// Drop stale heap entries at the top so `peek` sees a live event.
    fn skip_stale(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.slots[top.slot as usize].gen == top.gen {
                break;
            }
            self.heap.pop();
        }
    }

    /// Remove all events, returning how many live ones were dropped.
    /// Outstanding [`EventId`]s are invalidated (generations advance).
    pub fn clear(&mut self) -> usize {
        let n = self.live;
        self.heap.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.payload.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        self.live = 0;
        n
    }
}

/// Checkpoints the queue **verbatim** — heap array layout, slab slots,
/// generation counters, free-list order, sequence counter. Heap layout
/// is itself a deterministic function of the schedule/cancel/pop call
/// sequence, so the byte image is reproducible, and a verbatim restore
/// keeps every outstanding [`EventId`] live with its exact generation
/// while future slot assignments (hence future ids) match the
/// uninterrupted run.
impl<E: Snapshot> Snapshot for SlabEventQueue<E> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.heap.v.len() as u64);
        for e in &self.heap.v {
            e.time.encode(w);
            w.put_u64(e.seq);
            w.put_u32(e.slot);
            w.put_u32(e.gen);
        }
        w.put_u64(self.slots.len() as u64);
        for s in &self.slots {
            w.put_u32(s.gen);
            s.payload.encode(w);
        }
        self.free.encode(w);
        w.put_u64(self.next_seq);
        w.put_usize(self.live);
        w.put_usize(self.peak_live);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let hn = r.take_len()?;
        let mut heap = MinHeap4::with_capacity(hn.min(1 << 20));
        for _ in 0..hn {
            let time = SimTime::decode(r)?;
            let seq = r.take_u64()?;
            let slot = r.take_u32()?;
            let gen = r.take_u32()?;
            heap.v.push(HeapEntry {
                time,
                seq,
                slot,
                gen,
            });
        }
        let sn = r.take_len()?;
        let mut slots = Vec::with_capacity(sn.min(1 << 20));
        for _ in 0..sn {
            let gen = r.take_u32()?;
            let payload = Option::<E>::decode(r)?;
            slots.push(Slot { gen, payload });
        }
        let free = Vec::<u32>::decode(r)?;
        let next_seq = r.take_u64()?;
        let live = r.take_usize()?;
        let peak_live = r.take_usize()?;
        let occupied = slots.iter().filter(|s| s.payload.is_some()).count();
        if occupied != live {
            return Err(SnapshotError::Corrupt(format!(
                "event queue: {occupied} occupied slots but live count {live}"
            )));
        }
        if heap.v.iter().any(|e| e.slot as usize >= slots.len())
            || free.iter().any(|&f| f as usize >= slots.len())
        {
            return Err(SnapshotError::Corrupt(
                "event queue: slot index out of range".into(),
            ));
        }
        Ok(SlabEventQueue {
            heap,
            slots,
            free,
            next_seq,
            live,
            peak_live,
        })
    }
}

pub mod legacy {
    //! The pre-slab future-event list: `BinaryHeap` of full entries plus
    //! `cancelled`/`pending` `HashSet<u64>` side tables. Kept (always
    //! compiled) as the baseline for the `simcore_kernels` benches and
    //! the order-equivalence tests; the `legacy-queue` feature swaps it
    //! back in as [`EventQueue`](super::EventQueue) for whole-system A/B
    //! benchmark runs.

    use super::EventId;
    use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The previous queue implementation (hash-set side tables).
    pub struct LegacyEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        cancelled: std::collections::HashSet<u64>,
        pending: std::collections::HashSet<u64>,
        next_seq: u64,
        peak: usize,
    }

    impl<E> Default for LegacyEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> LegacyEventQueue<E> {
        pub fn new() -> Self {
            LegacyEventQueue {
                heap: BinaryHeap::new(),
                cancelled: std::collections::HashSet::new(),
                pending: std::collections::HashSet::new(),
                next_seq: 0,
                peak: 0,
            }
        }

        /// Same API as [`SlabEventQueue::with_capacity`].
        pub fn with_capacity(n: usize) -> Self {
            let mut q = Self::new();
            q.heap.reserve(n);
            q
        }

        pub fn len(&self) -> usize {
            self.pending.len()
        }

        pub fn is_empty(&self) -> bool {
            self.pending.is_empty()
        }

        pub fn peak_depth(&self) -> usize {
            self.peak
        }

        pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
            assert!(time < SimTime::MAX, "cannot schedule at SimTime::MAX");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, payload });
            self.pending.insert(seq);
            if self.pending.len() > self.peak {
                self.peak = self.pending.len();
            }
            // A legacy id is its sequence number (generation 0).
            EventId(seq)
        }

        pub fn cancel(&mut self, id: EventId) -> bool {
            if self.pending.remove(&id.0) {
                self.cancelled.insert(id.0);
                true
            } else {
                false
            }
        }

        pub fn peek_time(&mut self) -> Option<SimTime> {
            self.skip_cancelled();
            self.heap.peek().map(|e| e.time)
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.skip_cancelled();
            let e = self.heap.pop()?;
            self.pending.remove(&e.seq);
            Some((e.time, e.payload))
        }

        fn skip_cancelled(&mut self) {
            while let Some(top) = self.heap.peek() {
                if self.cancelled.remove(&top.seq) {
                    self.heap.pop();
                } else {
                    break;
                }
            }
        }

        pub fn clear(&mut self) -> usize {
            let n = self.pending.len();
            self.heap.clear();
            self.cancelled.clear();
            self.pending.clear();
            n
        }
    }

    /// The legacy internals are hash sets and a `BinaryHeap`, neither of
    /// which iterates deterministically — so the encoding canonicalises:
    /// entries sorted by sequence number, side tables sorted. Restored
    /// heap layout may differ from the uninterrupted run's, but pop
    /// order is the strict `(time, seq)` total order either way.
    impl<E: Snapshot> Snapshot for LegacyEventQueue<E> {
        fn encode(&self, w: &mut SnapshotWriter) {
            let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
            entries.sort_by_key(|e| e.seq);
            w.put_u64(entries.len() as u64);
            for e in entries {
                e.time.encode(w);
                w.put_u64(e.seq);
                e.payload.encode(w);
            }
            let mut cancelled: Vec<u64> = self.cancelled.iter().copied().collect();
            cancelled.sort_unstable();
            cancelled.encode(w);
            let mut pending: Vec<u64> = self.pending.iter().copied().collect();
            pending.sort_unstable();
            pending.encode(w);
            w.put_u64(self.next_seq);
            w.put_usize(self.peak);
        }

        fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
            let n = r.take_len()?;
            let mut heap = BinaryHeap::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let time = SimTime::decode(r)?;
                let seq = r.take_u64()?;
                let payload = E::decode(r)?;
                heap.push(Entry { time, seq, payload });
            }
            let cancelled: std::collections::HashSet<u64> =
                Vec::<u64>::decode(r)?.into_iter().collect();
            let pending: std::collections::HashSet<u64> =
                Vec::<u64>::decode(r)?.into_iter().collect();
            let next_seq = r.take_u64()?;
            let peak = r.take_usize()?;
            if heap.len() != pending.len() + cancelled.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "legacy queue: {} heap entries vs {} pending + {} cancelled",
                    heap.len(),
                    pending.len(),
                    cancelled.len()
                )));
            }
            Ok(LegacyEventQueue {
                heap,
                cancelled,
                pending,
                next_seq,
                peak,
            })
        }
    }
}

/// The engine's future-event list. The slab queue by default; the
/// `legacy-queue` feature swaps the previous implementation back in for
/// whole-system A/B benchmarking (`BENCH_PR1.json` records both).
#[cfg(not(feature = "legacy-queue"))]
pub type EventQueue<E> = SlabEventQueue<E>;
#[cfg(feature = "legacy-queue")]
pub type EventQueue<E> = legacy::LegacyEventQueue<E>;

#[cfg(test)]
mod tests {
    use super::legacy::LegacyEventQueue;
    use super::*;
    use crate::time::SimDuration;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Run the shared behavioural suite against a queue type.
    macro_rules! queue_suite {
        ($modname:ident, $Q:ident) => {
            mod $modname {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $Q::new();
                    q.schedule(t(5), "b");
                    q.schedule(t(1), "a");
                    q.schedule(t(9), "c");
                    assert_eq!(q.pop(), Some((t(1), "a")));
                    assert_eq!(q.pop(), Some((t(5), "b")));
                    assert_eq!(q.pop(), Some((t(9), "c")));
                    assert_eq!(q.pop(), None);
                }

                #[test]
                fn simultaneous_events_are_fifo() {
                    let mut q = $Q::new();
                    for i in 0..100 {
                        q.schedule(t(7), i);
                    }
                    for i in 0..100 {
                        assert_eq!(q.pop().unwrap().1, i);
                    }
                }

                #[test]
                fn cancellation_removes_event() {
                    let mut q = $Q::new();
                    let a = q.schedule(t(1), "a");
                    q.schedule(t(2), "b");
                    assert!(q.cancel(a));
                    assert!(!q.cancel(a), "double cancel is a no-op");
                    assert_eq!(q.pop(), Some((t(2), "b")));
                    assert!(q.is_empty());
                }

                #[test]
                fn peek_time_skips_cancelled() {
                    let mut q = $Q::new();
                    let a = q.schedule(t(1), 1);
                    q.schedule(t(3), 3);
                    q.cancel(a);
                    assert_eq!(q.peek_time(), Some(t(3)));
                }

                #[test]
                fn len_tracks_live_events() {
                    let mut q = $Q::new();
                    let ids: Vec<_> = (0..10).map(|i| q.schedule(t(i), i)).collect();
                    assert_eq!(q.len(), 10);
                    q.cancel(ids[4]);
                    assert_eq!(q.len(), 9);
                    q.pop();
                    assert_eq!(q.len(), 8);
                    assert_eq!(q.clear(), 8);
                    assert!(q.is_empty());
                }

                #[test]
                fn interleaved_schedule_and_pop() {
                    let mut q = $Q::new();
                    q.schedule(t(10), 10);
                    q.schedule(t(20), 20);
                    assert_eq!(q.pop().unwrap().1, 10);
                    q.schedule(t(15), 15);
                    q.schedule(t(5), 5); // in the past relative to last pop; queue permits it
                    assert_eq!(q.pop().unwrap().1, 5);
                    assert_eq!(q.pop().unwrap().1, 15);
                    assert_eq!(q.pop().unwrap().1, 20);
                }

                #[test]
                #[should_panic]
                fn scheduling_at_max_panics() {
                    let mut q = $Q::new();
                    q.schedule(SimTime::MAX, ());
                }

                #[test]
                fn large_volume_ordering() {
                    // Pseudo-random-ish times via a simple LCG to avoid RNG deps here.
                    let mut q = $Q::new();
                    let mut x: u64 = 0x9E3779B97F4A7C15;
                    for _ in 0..10_000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        q.schedule(
                            SimTime::ZERO + SimDuration::from_micros((x >> 20) as i64),
                            x,
                        );
                    }
                    let mut last = SimTime::ZERO;
                    while let Some((time, _)) = q.pop() {
                        assert!(time >= last);
                        last = time;
                    }
                }

                #[test]
                fn peak_depth_is_high_water_mark() {
                    let mut q = $Q::new();
                    for i in 0..50 {
                        q.schedule(t(i), i);
                    }
                    for _ in 0..50 {
                        q.pop();
                    }
                    q.schedule(t(99), 99);
                    assert_eq!(q.peak_depth(), 50);
                }
            }
        };
    }

    queue_suite!(slab, SlabEventQueue);
    queue_suite!(legacy_impl, LegacyEventQueue);

    #[test]
    fn cancel_then_reschedule_never_resurrects_stale_id() {
        let mut q = SlabEventQueue::new();
        let a = q.schedule(t(5), "doomed");
        assert!(q.cancel(a));
        // The freed slot is reused immediately (LIFO free list) — the
        // stale id must not cancel, and must not resurrect, the new event.
        let b = q.schedule(t(6), "kept");
        assert!(!q.cancel(a), "stale id must stay dead after slot reuse");
        assert_eq!(q.pop(), Some((t(6), "kept")));
        assert_eq!(q.pop(), None);
        // And the fired id is stale too.
        assert!(!q.cancel(b));
    }

    #[test]
    fn fired_event_id_cannot_cancel_successor_in_same_slot() {
        let mut q = SlabEventQueue::new();
        let a = q.schedule(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        let _b = q.schedule(t(2), 2); // reuses slot 0
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
    }

    /// Snapshot/restore mid-trace must preserve pop order, live handles,
    /// and future id assignment — for both queue implementations.
    macro_rules! queue_snapshot_suite {
        ($name:ident, $Q:ident) => {
            #[test]
            fn $name() {
                use crate::snapshot::{Snapshot, SnapshotReader, SnapshotWriter};
                let mut q = $Q::new();
                let keep = q.schedule(t(50), 1u64);
                let doomed = q.schedule(t(60), 2);
                q.schedule(t(40), 3);
                q.cancel(doomed);
                q.pop(); // fires 3
                q.schedule(t(45), 4);

                let mut w = SnapshotWriter::new();
                q.encode(&mut w);
                let bytes = w.into_bytes();
                let mut r = SnapshotReader::new(&bytes);
                let mut back = $Q::<u64>::decode(&mut r).unwrap();
                r.expect_end().unwrap();

                assert_eq!(back.len(), q.len());
                assert_eq!(back.peak_depth(), q.peak_depth());
                // The held handle survives and cancels the same event.
                assert!(back.cancel(keep));
                assert!(q.cancel(keep));
                // Remaining pops agree, and so do ids issued afterwards.
                assert_eq!(back.schedule(t(70), 5), q.schedule(t(70), 5));
                loop {
                    let a = q.pop();
                    assert_eq!(a, back.pop());
                    if a.is_none() {
                        break;
                    }
                }
                // Truncated input errors, never panics.
                for cut in 0..bytes.len() {
                    assert!($Q::<u64>::decode(&mut SnapshotReader::new(&bytes[..cut])).is_err());
                }
            }
        };
    }

    queue_snapshot_suite!(slab_snapshot_roundtrip, SlabEventQueue);
    queue_snapshot_suite!(legacy_snapshot_roundtrip, LegacyEventQueue);

    /// Drive both implementations through an identical randomized
    /// schedule/cancel/pop trace and require identical observable
    /// behaviour — the determinism guarantee behind the queue swap.
    #[test]
    fn slab_and_legacy_produce_identical_event_order() {
        let mut slab = SlabEventQueue::new();
        let mut leg = LegacyEventQueue::new();
        let mut slab_ids = Vec::new();
        let mut leg_ids = Vec::new();
        let mut x: u64 = 0xDF3_2018;
        let mut popped = Vec::new();
        for step in 0..50_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x % 10 {
                // 60 % schedule
                0..=5 => {
                    let time = SimTime::from_micros(((x >> 16) % 1_000_000) as i64);
                    slab_ids.push(slab.schedule(time, step));
                    leg_ids.push(leg.schedule(time, step));
                }
                // 20 % cancel a random previously issued id
                6..=7 if !slab_ids.is_empty() => {
                    let k = ((x >> 32) as usize) % slab_ids.len();
                    assert_eq!(slab.cancel(slab_ids[k]), leg.cancel(leg_ids[k]));
                }
                // 20 % pop
                _ => {
                    let a = slab.pop();
                    let b = leg.pop();
                    assert_eq!(a, b, "divergence at step {step}");
                    if let Some(e) = a {
                        popped.push(e);
                    }
                }
            }
            assert_eq!(slab.len(), leg.len(), "len divergence at step {step}");
        }
        // Drain the remainder: from here on no new events arrive, so the
        // tail must be time-ordered with FIFO tie-break (seq = step).
        let drain_from = popped.len();
        loop {
            let a = slab.pop();
            let b = leg.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            popped.push(a.unwrap());
        }
        assert!(popped.len() > 10_000, "trace degenerated: too few pops");
        for w in popped[drain_from..].windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
