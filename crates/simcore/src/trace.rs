//! Structured event tracing.
//!
//! A [`Trace`] records tagged events with their simulation time for
//! post-hoc analysis and CSV export. Tracing is opt-in per component and
//! costs one `Vec` push per record; experiments that don't need traces
//! simply never construct one.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One trace record: a time, a tag, and free-form fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    pub t: SimTime,
    pub tag: String,
    pub fields: Vec<(String, String)>,
}

/// An append-only trace of tagged simulation events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<Record>,
    enabled: bool,
}

impl Trace {
    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled trace: all `record` calls are no-ops. Lets components
    /// take a `&mut Trace` unconditionally without branching at call sites.
    pub fn disabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, t: SimTime, tag: &str, fields: &[(&str, String)]) {
        if !self.enabled {
            return;
        }
        self.records.push(Record {
            t,
            tag: tag.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Records carrying a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Record> + 'a {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Count of records with a given tag.
    pub fn count_tag(&self, tag: &str) -> usize {
        self.with_tag(tag).count()
    }

    /// Export to CSV (`time_s,tag,key=value;key=value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,tag,fields\n");
        for r in &self.records {
            let fields: Vec<String> = r.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "{:.6},{},{}\n",
                r.t.as_secs_f64(),
                r.tag,
                fields.join(";")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_when_enabled() {
        let mut tr = Trace::enabled();
        tr.record(
            SimTime::from_secs(1),
            "arrival",
            &[("job", "42".to_string())],
        );
        tr.record(SimTime::from_secs(2), "departure", &[]);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.count_tag("arrival"), 1);
        let rec = tr.with_tag("arrival").next().unwrap();
        assert_eq!(rec.fields[0], ("job".to_string(), "42".to_string()));
    }

    #[test]
    fn disabled_trace_is_noop() {
        let mut tr = Trace::disabled();
        tr.record(SimTime::from_secs(1), "x", &[]);
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn csv_format() {
        let mut tr = Trace::enabled();
        tr.record(
            SimTime::from_secs(3),
            "offload",
            &[("from", "c0".to_string()), ("to", "dc".to_string())],
        );
        let csv = tr.to_csv();
        assert!(csv.contains("3.000000,offload,from=c0;to=dc"));
    }
}
