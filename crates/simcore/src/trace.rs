//! Structured event tracing.
//!
//! A [`Trace`] records tagged events with their simulation time for
//! post-hoc analysis and CSV export. Tracing is opt-in per component and
//! costs one `Vec` push per record; experiments that don't need traces
//! simply never construct one.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One trace record: a time, a tag, and free-form fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    pub t: SimTime,
    pub tag: String,
    pub fields: Vec<(String, String)>,
}

/// An append-only trace of tagged simulation events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<Record>,
    enabled: bool,
}

impl Trace {
    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled trace: all `record` calls are no-ops. Lets components
    /// take a `&mut Trace` unconditionally without branching at call sites.
    pub fn disabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, t: SimTime, tag: &str, fields: &[(&str, String)]) {
        if !self.enabled {
            return;
        }
        self.records.push(Record {
            t,
            tag: tag.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Records carrying a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Record> + 'a {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Count of records with a given tag.
    pub fn count_tag(&self, tag: &str) -> usize {
        self.with_tag(tag).count()
    }

    /// Export to CSV (`time_s,tag,key=value;key=value`).
    ///
    /// Field keys/values may contain the micro-format's own separators
    /// (`=`, `;`) — those and backslashes are backslash-escaped — and a
    /// cell containing `,`, `"`, or a newline is RFC-4180 quoted, so a
    /// hostile value can never add columns or rows to the file.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,tag,fields\n");
        for r in &self.records {
            let fields: Vec<String> = r
                .fields
                .iter()
                .map(|(k, v)| format!("{}={}", escape_kv(k), escape_kv(v)))
                .collect();
            out.push_str(&format!(
                "{:.6},{},{}\n",
                r.t.as_secs_f64(),
                csv_cell(&r.tag),
                csv_cell(&fields.join(";"))
            ));
        }
        out
    }
}

/// Backslash-escape the `key=value;…` micro-format separators.
fn escape_kv(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '=' => out.push_str("\\="),
            ';' => out.push_str("\\;"),
            c => out.push(c),
        }
    }
    out
}

/// RFC-4180 quote a cell when it would break the CSV structure.
fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_when_enabled() {
        let mut tr = Trace::enabled();
        tr.record(
            SimTime::from_secs(1),
            "arrival",
            &[("job", "42".to_string())],
        );
        tr.record(SimTime::from_secs(2), "departure", &[]);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.count_tag("arrival"), 1);
        let rec = tr.with_tag("arrival").next().unwrap();
        assert_eq!(rec.fields[0], ("job".to_string(), "42".to_string()));
    }

    #[test]
    fn disabled_trace_is_noop() {
        let mut tr = Trace::disabled();
        tr.record(SimTime::from_secs(1), "x", &[]);
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn csv_format() {
        let mut tr = Trace::enabled();
        tr.record(
            SimTime::from_secs(3),
            "offload",
            &[("from", "c0".to_string()), ("to", "dc".to_string())],
        );
        let csv = tr.to_csv();
        assert!(csv.contains("3.000000,offload,from=c0;to=dc"));
    }

    /// Regression: separators and newlines inside field values used to
    /// corrupt the CSV (extra columns/rows, ambiguous `k=v` splits).
    #[test]
    fn csv_escapes_hostile_field_values() {
        let mut tr = Trace::enabled();
        tr.record(
            SimTime::from_secs(1),
            "evil,tag",
            &[
                ("msg", "a,b;c=d".to_string()),
                ("multi", "line1\nline2".to_string()),
                ("quote", "say \"hi\"".to_string()),
            ],
        );
        let csv = tr.to_csv();
        // Still exactly one header and one data row…
        let rows: Vec<&str> = parse_csv_rows(&csv);
        assert_eq!(rows.len(), 2, "embedded newline split a row: {csv:?}");
        // …and the data row still has exactly three columns.
        assert_eq!(
            split_unquoted_commas(rows[1]).len(),
            3,
            "row: {:?}",
            rows[1]
        );
        // Micro-format separators in values are backslash-escaped.
        assert!(csv.contains("a,b\\;c\\=d"), "kv escaping missing: {csv:?}");
        assert!(csv.contains("\"\""), "inner quotes are doubled");
    }

    /// Split CSV text into logical rows, honouring quoted newlines.
    fn parse_csv_rows(csv: &str) -> Vec<&str> {
        let mut rows = Vec::new();
        let mut start = 0;
        let mut in_quotes = false;
        for (i, c) in csv.char_indices() {
            match c {
                '"' => in_quotes = !in_quotes,
                '\n' if !in_quotes => {
                    rows.push(&csv[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if start < csv.len() {
            rows.push(&csv[start..]);
        }
        rows
    }

    fn split_unquoted_commas(row: &str) -> Vec<&str> {
        let mut cells = Vec::new();
        let mut start = 0;
        let mut in_quotes = false;
        for (i, c) in row.char_indices() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => {
                    cells.push(&row[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        cells.push(&row[start..]);
        cells
    }
}
