//! The capped ring-buffer flight recorder.
//!
//! Replaces string-allocating tracing on the hot path: tags and string
//! field values are interned once into dense [`TagId`]s, field values
//! are typed ([`Value`]), and storage is a fixed-capacity ring that
//! keeps the *last* N events of a run (like an aircraft flight
//! recorder, the recent past is what post-mortems need). Overwritten
//! events are counted, never silently lost.

use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::time::SimTime;
use std::collections::HashMap;

/// Dense handle for an interned tag or string value. Ids are local to
/// one recorder and assigned in interning order, so identically-driven
/// runs produce identical ids (exports stay byte-reproducible).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(u32);

impl TagId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A typed field value: no `String` allocation per record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    /// An interned string (intern once at setup, reference per event).
    Str(TagId),
}

/// Which timeline lane an event belongs to. Downstream models map
/// their topology onto (group, lane) — e.g. group 0 = platform,
/// group `1 + c` = cluster `c` with one lane per worker — and the
/// Chrome exporter renders groups as processes and lanes as threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Track {
    pub group: u32,
    pub lane: u32,
}

impl Track {
    /// The platform-wide lane (control ticks, watchdogs, …).
    pub const PLATFORM: Track = Track { group: 0, lane: 0 };

    pub fn new(group: u32, lane: u32) -> Self {
        Track { group, lane }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Bool(false)
    }
}

impl Value {
    /// Split into a discriminant byte and a 64-bit payload for the
    /// packed [`FieldSet`] arrays.
    #[inline]
    fn pack(self) -> (u8, u64) {
        match self {
            Value::U64(v) => (0, v),
            Value::I64(v) => (1, v as u64),
            Value::F64(v) => (2, v.to_bits()),
            Value::Bool(v) => (3, v as u64),
            Value::Str(t) => (4, t.0 as u64),
        }
    }

    #[inline]
    fn unpack(kind: u8, bits: u64) -> Value {
        match kind {
            0 => Value::U64(bits),
            1 => Value::I64(bits as i64),
            2 => Value::F64(f64::from_bits(bits)),
            3 => Value::Bool(bits != 0),
            _ => Value::Str(TagId(bits as u32)),
        }
    }
}

/// Most fields an event can carry.
pub const MAX_FIELDS: usize = 4;

/// Inline field storage: recording an event never heap-allocates (the
/// hot loop emits tens of thousands of events per simulated day, and a
/// `Vec` per event dominated the recorder's cost). Values are packed
/// into discriminant/payload arrays so the whole set is 56 bytes —
/// the ring cycles through its buffer on long runs, and every byte of
/// event width is steady-state memory traffic. Excess pushes past
/// [`MAX_FIELDS`] are dropped in release builds and assert in debug.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FieldSet {
    len: u8,
    kinds: [u8; MAX_FIELDS],
    keys: [TagId; MAX_FIELDS],
    bits: [u64; MAX_FIELDS],
}

impl FieldSet {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, key: TagId, value: Value) {
        debug_assert!((self.len as usize) < MAX_FIELDS, "too many event fields");
        if (self.len as usize) < MAX_FIELDS {
            let i = self.len as usize;
            let (kind, bits) = value.pack();
            self.kinds[i] = kind;
            self.keys[i] = key;
            self.bits[i] = bits;
            self.len += 1;
        }
    }

    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th key/value pair, if present.
    pub fn get(&self, i: usize) -> Option<(TagId, Value)> {
        (i < self.len as usize).then(|| (self.keys[i], Value::unpack(self.kinds[i], self.bits[i])))
    }

    /// Key/value pairs in push order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, Value)> + '_ {
        (0..self.len as usize).map(|i| (self.keys[i], Value::unpack(self.kinds[i], self.bits[i])))
    }
}

impl From<&[(TagId, Value)]> for FieldSet {
    fn from(s: &[(TagId, Value)]) -> Self {
        let mut f = FieldSet::new();
        for &(k, v) in s {
            f.push(k, v);
        }
        f
    }
}

impl<const N: usize> From<[(TagId, Value); N]> for FieldSet {
    fn from(s: [(TagId, Value); N]) -> Self {
        FieldSet::from(&s[..])
    }
}

impl<const N: usize> From<&[(TagId, Value); N]> for FieldSet {
    fn from(s: &[(TagId, Value); N]) -> Self {
        FieldSet::from(&s[..])
    }
}

impl From<&FieldSet> for FieldSet {
    fn from(s: &FieldSet) -> Self {
        *s
    }
}

/// One recorded event: an instant (`end == None`) or a sim-time span.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    pub t: SimTime,
    /// `Some(end)` makes this a span `[t, end]`.
    pub end: Option<SimTime>,
    pub tag: TagId,
    pub track: Track,
    pub fields: FieldSet,
}

/// Capped ring-buffer event recorder with a local tag interner.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    ring: Vec<TelemetryEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity");
        FlightRecorder {
            enabled: true,
            capacity,
            // One upfront reservation: the ring never reallocates, so
            // steady-state recording is a bare slot write.
            ring: Vec::with_capacity(capacity),
            ..Default::default()
        }
    }

    /// A disabled recorder: every record call is a single branch.
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Intern a tag (or string value), returning its stable id.
    /// Idempotent; usable on disabled recorders too so models can
    /// pre-intern their tag sets unconditionally at setup.
    pub fn tag(&mut self, name: &str) -> TagId {
        if let Some(&ix) = self.by_name.get(name) {
            return TagId(ix);
        }
        let ix = u32::try_from(self.names.len()).expect("tag registry overflow");
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), ix);
        TagId(ix)
    }

    /// The interned name of a tag.
    pub fn tag_name(&self, tag: TagId) -> &str {
        &self.names[tag.index()]
    }

    /// Look up an already-interned tag without interning.
    pub fn find_tag(&self, name: &str) -> Option<TagId> {
        self.by_name.get(name).map(|&ix| TagId(ix))
    }

    /// Record an instant event (no-op when disabled).
    #[inline]
    pub fn instant(&mut self, t: SimTime, tag: TagId, track: Track, fields: impl Into<FieldSet>) {
        if !self.enabled {
            return;
        }
        self.push(TelemetryEvent {
            t,
            end: None,
            tag,
            track,
            fields: fields.into(),
        });
    }

    /// Record a sim-time span `[t0, t1]` (no-op when disabled).
    #[inline]
    pub fn span(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        tag: TagId,
        track: Track,
        fields: impl Into<FieldSet>,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(t1 >= t0, "span ends before it starts");
        self.push(TelemetryEvent {
            t: t0,
            end: Some(t1),
            tag,
            track,
            fields: fields.into(),
        });
    }

    #[inline]
    fn push(&mut self, ev: TelemetryEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate events oldest → newest (record order survives the wrap).
    pub fn iter(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.ring[self.head..]
            .iter()
            .chain(self.ring[..self.head].iter())
    }

    /// Count of held events with a given tag.
    pub fn count_tag(&self, tag: TagId) -> usize {
        self.iter().filter(|e| e.tag == tag).count()
    }

    /// Count of held events whose tag name starts with `prefix`
    /// (watchdog summaries group on `"watchdog."`).
    pub fn count_tag_prefix(&self, prefix: &str) -> usize {
        self.iter()
            .filter(|e| self.tag_name(e.tag).starts_with(prefix))
            .count()
    }
}

impl Snapshot for TagId {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TagId(r.take_u32()?))
    }
}

impl Snapshot for Track {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.group);
        w.put_u32(self.lane);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Track {
            group: r.take_u32()?,
            lane: r.take_u32()?,
        })
    }
}

/// Only the `len` active slots are encoded; unused slots are always in
/// their default state (pushes fill left to right, events are replaced
/// wholesale), so zero-filling on decode reproduces the struct exactly.
impl Snapshot for FieldSet {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(self.len);
        for i in 0..self.len as usize {
            w.put_u8(self.kinds[i]);
            self.keys[i].encode(w);
            w.put_u64(self.bits[i]);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_u8()?;
        if len as usize > MAX_FIELDS {
            return Err(SnapshotError::Corrupt(format!("field set of {len}")));
        }
        let mut f = FieldSet {
            len,
            ..Default::default()
        };
        for i in 0..len as usize {
            f.kinds[i] = r.take_u8()?;
            if f.kinds[i] > 4 {
                return Err(SnapshotError::Corrupt(format!("field kind {}", f.kinds[i])));
            }
            f.keys[i] = TagId::decode(r)?;
            f.bits[i] = r.take_u64()?;
        }
        Ok(f)
    }
}

impl Snapshot for TelemetryEvent {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.t.encode(w);
        self.end.encode(w);
        self.tag.encode(w);
        self.track.encode(w);
        self.fields.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TelemetryEvent {
            t: SimTime::decode(r)?,
            end: Option::<SimTime>::decode(r)?,
            tag: TagId::decode(r)?,
            track: Track::decode(r)?,
            fields: FieldSet::decode(r)?,
        })
    }
}

/// The ring checkpoints verbatim — contents, head cursor, drop counter,
/// and the interner's name list in id order (`by_name` is rebuilt). Tag
/// references are validated against the name list so a decoded recorder
/// can never panic in `tag_name`.
impl Snapshot for FlightRecorder {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_bool(self.enabled);
        w.put_usize(self.capacity);
        self.ring.encode(w);
        w.put_usize(self.head);
        w.put_u64(self.dropped);
        self.names.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let enabled = r.take_bool()?;
        let capacity = r.take_usize()?;
        let ring = Vec::<TelemetryEvent>::decode(r)?;
        let head = r.take_usize()?;
        let dropped = r.take_u64()?;
        let names = Vec::<String>::decode(r)?;
        if enabled && capacity == 0 {
            return Err(SnapshotError::Corrupt(
                "enabled recorder, capacity 0".into(),
            ));
        }
        if ring.len() > capacity || (head != 0 && head >= ring.len()) {
            return Err(SnapshotError::Corrupt(format!(
                "recorder ring {} / capacity {capacity}, head {head}",
                ring.len()
            )));
        }
        let check_tag = |t: TagId| -> Result<(), SnapshotError> {
            if t.index() >= names.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "tag id {} beyond {} names",
                    t.index(),
                    names.len()
                )));
            }
            Ok(())
        };
        for ev in &ring {
            check_tag(ev.tag)?;
            for (k, v) in ev.fields.iter() {
                check_tag(k)?;
                if let Value::Str(s) = v {
                    check_tag(s)?;
                }
            }
        }
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Ok(FlightRecorder {
            enabled,
            capacity,
            ring,
            head,
            dropped,
            names,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_times(r: &FlightRecorder) -> Vec<i64> {
        r.iter().map(|e| e.t.as_micros()).collect()
    }

    #[test]
    fn event_stays_within_its_cache_budget() {
        // The ring cycles through capacity × this many bytes on long
        // runs; widening the event is a real recorder slowdown.
        assert!(std::mem::size_of::<TelemetryEvent>() <= 96);
        assert!(std::mem::size_of::<FieldSet>() <= 56);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::disabled();
        let tag = r.tag("x");
        r.instant(SimTime::from_secs(1), tag, Track::PLATFORM, []);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn interning_is_idempotent_and_ordered() {
        let mut r = FlightRecorder::enabled(4);
        let a = r.tag("alpha");
        let b = r.tag("beta");
        assert_eq!(r.tag("alpha"), a);
        assert!(a < b, "ids follow interning order");
        assert_eq!(r.tag_name(b), "beta");
        assert_eq!(r.find_tag("beta"), Some(b));
        assert_eq!(r.find_tag("gamma"), None);
    }

    #[test]
    fn ring_keeps_the_last_n_events() {
        let mut r = FlightRecorder::enabled(3);
        let tag = r.tag("t");
        for i in 0..7 {
            r.instant(SimTime::from_secs(i), tag, Track::PLATFORM, []);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        // Oldest → newest, post-wrap.
        assert_eq!(ev_times(&r), vec![4_000_000, 5_000_000, 6_000_000]);
    }

    #[test]
    fn snapshot_roundtrips_a_wrapped_ring_verbatim() {
        let mut r = FlightRecorder::enabled(3);
        let tag = r.tag("t");
        let key = r.tag("k");
        let sval = r.tag("v");
        for i in 0..7 {
            r.instant(
                SimTime::from_secs(i),
                tag,
                Track::new(1, i as u32),
                [(key, Value::Str(sval)), (key, Value::F64(i as f64))],
            );
        }
        let mut w = SnapshotWriter::new();
        r.encode(&mut w);
        let bytes = w.into_bytes();
        let mut rd = SnapshotReader::new(&bytes);
        let mut back = FlightRecorder::decode(&mut rd).unwrap();
        rd.expect_end().unwrap();
        assert_eq!(ev_times(&back), ev_times(&r));
        assert_eq!(back.dropped(), r.dropped());
        assert_eq!(back.tag("t"), tag, "interner state survives");
        // Continued recording matches a never-snapshotted recorder.
        back.instant(SimTime::from_secs(9), tag, Track::PLATFORM, []);
        r.instant(SimTime::from_secs(9), tag, Track::PLATFORM, []);
        assert_eq!(ev_times(&back), ev_times(&r));
        // Truncations error, never panic.
        for cut in 0..bytes.len() {
            assert!(FlightRecorder::decode(&mut SnapshotReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn spans_and_typed_fields_round_trip() {
        let mut r = FlightRecorder::enabled(8);
        let tag = r.tag("job.edge");
        let k = r.tag("gops");
        let v = r.tag("direct");
        r.span(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            tag,
            Track::new(1, 3),
            [(k, Value::F64(1.5)), (k, Value::Str(v))],
        );
        let e = r.iter().next().unwrap();
        assert_eq!(e.end, Some(SimTime::from_secs(2)));
        assert_eq!(e.track, Track::new(1, 3));
        assert_eq!(e.fields.len(), 2);
        assert_eq!(e.fields.get(0), Some((k, Value::F64(1.5))));
        assert_eq!(e.fields.get(1), Some((k, Value::Str(v))));
        assert_eq!(e.fields.get(2), None);
        let round: Vec<(TagId, Value)> = e.fields.iter().collect();
        assert_eq!(round, vec![(k, Value::F64(1.5)), (k, Value::Str(v))]);
        assert_eq!(r.count_tag(tag), 1);
        assert_eq!(r.count_tag_prefix("job."), 1);
        assert_eq!(r.count_tag_prefix("watchdog."), 0);
    }
}
