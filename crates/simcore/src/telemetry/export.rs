//! Export back-ends for the flight recorder and run reports.
//!
//! The workspace deliberately carries no `serde_json`, so the three
//! run-report formats are emitted by hand here with stable key order —
//! identical runs must yield byte-identical exports:
//!
//! - JSON primitives ([`json_escape`], [`jstr`], [`jnum`]) used by the
//!   JSONL run report downstream,
//! - [`chrome_trace`]: Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`) with sim-time B/E spans and instant events,
//! - [`PromText`]: Prometheus text exposition (counters, gauges,
//!   histograms),
//! - [`json`]: a dependency-free validator the exporter tests and the
//!   CI telemetry leg run over every emitted document.

use super::recorder::{FlightRecorder, Value};

/// Escape a string for embedding inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn jstr(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// A JSON number: shortest round-trip form; non-finite becomes `null`.
pub fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render a field value as a JSON fragment (strings resolved against
/// the recorder's interner).
pub fn value_json(rec: &FlightRecorder, v: Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => jnum(x),
        Value::Bool(x) => x.to_string(),
        Value::Str(id) => jstr(rec.tag_name(id)),
    }
}

fn fields_json(rec: &FlightRecorder, fields: &super::recorder::FieldSet) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&jstr(rec.tag_name(k)));
        s.push(':');
        s.push_str(&value_json(rec, v));
    }
    s.push('}');
    s
}

/// Render the recorder as Chrome trace-event JSON. Spans become
/// balanced `B`/`E` pairs and instants become `i` events, all on
/// sim-time microsecond timestamps sorted ascending; `group_name` maps
/// a track group to the process name shown in the timeline UI.
pub fn chrome_trace<F: Fn(u32) -> String>(rec: &FlightRecorder, group_name: F) -> String {
    // (ts, seq) keyed rows: a stable sort on ts keeps each span's B
    // before its E (inserted in that order) and zero-length spans sane.
    let mut rows: Vec<(i64, String)> = Vec::with_capacity(rec.len() * 2 + 8);
    let mut groups: Vec<u32> = Vec::new();
    for ev in rec.iter() {
        if !groups.contains(&ev.track.group) {
            groups.push(ev.track.group);
        }
        let name = jstr(rec.tag_name(ev.tag));
        let args = fields_json(rec, &ev.fields);
        let (pid, tid) = (ev.track.group, ev.track.lane);
        match ev.end {
            Some(end) => {
                rows.push((
                    ev.t.as_micros(),
                    format!(
                        "{{\"name\":{name},\"ph\":\"B\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                        ev.t.as_micros()
                    ),
                ));
                rows.push((
                    end.as_micros(),
                    format!(
                        "{{\"name\":{name},\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
                        end.as_micros()
                    ),
                ));
            }
            None => rows.push((
                ev.t.as_micros(),
                format!(
                    "{{\"name\":{name},\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"args\":{args}}}",
                    ev.t.as_micros()
                ),
            )),
        }
    }
    rows.sort_by_key(|&(ts, _)| ts);
    groups.sort_unstable();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for g in groups {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{g},\"tid\":0,\"args\":{{\"name\":{}}}}}",
            jstr(&group_name(g))
        ));
    }
    for (_, row) in rows {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&row);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Prometheus text-exposition writer.
#[derive(Debug, Clone, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emit a histogram from cumulative `(le, count)` buckets. The
    /// implicit `+Inf` bucket is written from `count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        self.header(name, help, "histogram");
        for &(le, c) in buckets {
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{le}\"}} {c}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        self.out.push_str(&format!("{name}_sum {sum}\n"));
        self.out.push_str(&format!("{name}_count {count}\n"));
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// A minimal recursive-descent JSON validator. Exists so exporter
/// tests and the CI telemetry leg can verify emitted documents without
/// pulling a JSON dependency into the workspace.
pub mod json {
    /// Validate that `s` is exactly one well-formed JSON value.
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        skip_ws(b, &mut i);
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(())
    }

    /// Validate every non-empty line of a JSONL document.
    pub fn validate_lines(s: &str) -> Result<usize, String> {
        let mut n = 0;
        for (ln, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            validate(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            n += 1;
        }
        Ok(n)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        if *i >= b.len() {
            return Err("unexpected end of input".into());
        }
        match b[*i] {
            b'{' => object(b, i),
            b'[' => array(b, i),
            b'"' => string(b, i),
            b't' => literal(b, i, "true"),
            b'f' => literal(b, i, "false"),
            b'n' => literal(b, i, "null"),
            b'-' | b'0'..=b'9' => number(b, i),
            c => Err(format!("unexpected byte {:?} at {}", c as char, *i)),
        }
    }

    fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
        if b[*i..].starts_with(lit.as_bytes()) {
            *i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {}", *i))
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // {
        skip_ws(b, i);
        if *i < b.len() && b[*i] == b'}' {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            string(b, i)?;
            skip_ws(b, i);
            if *i >= b.len() || b[*i] != b':' {
                return Err(format!("expected ':' at {}", *i));
            }
            *i += 1;
            skip_ws(b, i);
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at {}", *i)),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // [
        skip_ws(b, i);
        if *i < b.len() && b[*i] == b']' {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at {}", *i)),
            }
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if *i >= b.len() || b[*i] != b'"' {
            return Err(format!("expected string at {}", *i));
        }
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                        Some(b'u') => {
                            if b.len() < *i + 5
                                || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return Err(format!("bad \\u escape at {}", *i));
                            }
                            *i += 5;
                        }
                        _ => return Err(format!("bad escape at {}", *i)),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control byte in string at {}", *i)),
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b[*i] == b'-' {
            *i += 1;
        }
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        if *i < b.len() && b[*i] == b'.' {
            *i += 1;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
        }
        if *i < b.len() && matches!(b[*i], b'e' | b'E') {
            *i += 1;
            if *i < b.len() && matches!(b[*i], b'+' | b'-') {
                *i += 1;
            }
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
        }
        let tok = &b[start..*i];
        if tok.is_empty() || tok == b"-" || !tok.iter().any(u8::is_ascii_digit) {
            return Err(format!("bad number at {start}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::recorder::{FlightRecorder, Track, Value};
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn escaping_and_numbers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(jstr("x\t"), "\"x\\t\"");
        assert_eq!(jnum(1.5), "1.5");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3e4,true,false,null,\"s\\n\"]}",
            "  {\"nested\":{\"x\":[{}]}} ",
        ] {
            json::validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "nul",
        ] {
            assert!(json::validate(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(json::validate_lines("{}\n\n[1]\n").unwrap(), 2);
    }

    #[test]
    fn chrome_trace_is_valid_balanced_and_monotonic() {
        let mut r = FlightRecorder::enabled(16);
        let span_tag = r.tag("job.edge");
        let inst_tag = r.tag("watchdog.temp_band");
        let k = r.tag("temp_c");
        r.span(
            SimTime::from_secs(1),
            SimTime::from_secs(3),
            span_tag,
            Track::new(1, 0),
            [],
        );
        r.instant(
            SimTime::from_secs(2),
            inst_tag,
            Track::PLATFORM,
            [(k, Value::F64(14.2))],
        );
        r.span(
            SimTime::from_secs(2),
            SimTime::from_secs(2),
            span_tag,
            Track::new(1, 1),
            [],
        );
        let trace = chrome_trace(&r, |g| format!("group {g}"));
        json::validate(&trace).unwrap();
        assert_eq!(trace.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"i\"").count(), 1);
        assert_eq!(trace.matches("\"ph\":\"M\"").count(), 2);
        assert!(trace.contains("\"group 1\""));
        // Timestamps appear in non-decreasing order.
        let ts: Vec<i64> = trace
            .split("\"ts\":")
            .skip(1)
            .map(|s| {
                s.split(&[',', '}'][..])
                    .next()
                    .unwrap()
                    .parse::<i64>()
                    .unwrap()
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
    }

    #[test]
    fn prometheus_text_shape() {
        let mut p = PromText::new();
        p.counter("df3_edge_completed_total", "edge completions", 42);
        p.gauge("df3_pue", "platform PUE", 1.25);
        p.histogram(
            "df3_edge_response_ms",
            "edge response",
            &[(50.0, 10), (200.0, 40)],
            1234.5,
            41,
        );
        let s = p.finish();
        assert!(s.contains("# TYPE df3_edge_completed_total counter"));
        assert!(s.contains("df3_edge_completed_total 42\n"));
        assert!(s.contains("df3_edge_response_ms_bucket{le=\"+Inf\"} 41\n"));
        assert!(s.contains("df3_edge_response_ms_sum 1234.5\n"));
        assert!(s.contains("df3_edge_response_ms_count 41\n"));
        // Every sample line parses as `name{labels?} float`.
        for line in s.lines().filter(|l| !l.starts_with('#')) {
            let (_, val) = line.rsplit_once(' ').expect("name value");
            val.parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line}"));
        }
    }
}
