//! Wall-clock phase profiler for the engine's hot loop.
//!
//! Each [`Phase`] accumulates a count, total/min/max, and a log₂
//! duration histogram. Timing is wall clock (`std::time::Instant`) and
//! therefore *never* part of any simulation result: the profiler only
//! reports where real time went. Disabled profilers reduce
//! [`PhaseProfiler::start`] to one branch and allocate nothing.

/// The instrumented hot-loop phases. Fixed at compile time so the
/// accumulator is a flat array with no hashing on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Future-event-list peek + pop. Sampled one event in
    /// [`HOT_PHASE_STRIDE`]: the engine loop is too hot to afford two
    /// clock reads per event, so `count` is the number of *samples*.
    EventPop,
    /// Model event dispatch (`Model::handle`, all arms). Sampled like
    /// [`Phase::EventPop`].
    Dispatch,
    /// Control tick, end to end (contains the two thermal phases).
    ControlTick,
    /// Staging per-worker thermal intervals into the SoA batch.
    StageThermal,
    /// The fused fleet-wide thermal sweep.
    StepStaged,
    /// Fault runtime: sensor overlays, fail/repair/outage handling.
    FaultRuntime,
    /// Peak-policy offload decisions and their carry-out.
    Offload,
    /// Telemetry export (report generation, outside the sim loop).
    Export,
}

impl Phase {
    pub const ALL: [Phase; 8] = [
        Phase::EventPop,
        Phase::Dispatch,
        Phase::ControlTick,
        Phase::StageThermal,
        Phase::StepStaged,
        Phase::FaultRuntime,
        Phase::Offload,
        Phase::Export,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::EventPop => "event_pop",
            Phase::Dispatch => "dispatch",
            Phase::ControlTick => "control_tick",
            Phase::StageThermal => "stage_thermal",
            Phase::StepStaged => "step_staged",
            Phase::FaultRuntime => "fault_runtime",
            Phase::Offload => "offload",
            Phase::Export => "export",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Sampling stride for the per-event hot phases ([`Phase::EventPop`],
/// [`Phase::Dispatch`]): the engine reads the clock for one event in
/// this many. Power of two so the stride test is a mask. Coarse phases
/// (control tick, thermal, faults, offload) are timed on every call.
pub const HOT_PHASE_STRIDE: u64 = 64;

/// Number of log₂ histogram buckets: bucket `i` counts durations below
/// `64ns << i`; the last bucket absorbs everything longer (~2.2 s).
pub const N_DURATION_BUCKETS: usize = 25;

/// Base of the log₂ bucketing, nanoseconds.
const BUCKET_BASE_NS: u64 = 64;

/// Accumulated wall-clock statistics of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAcc {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Log₂ duration histogram (see [`N_DURATION_BUCKETS`]).
    pub buckets: [u64; N_DURATION_BUCKETS],
}

impl Default for PhaseAcc {
    fn default() -> Self {
        PhaseAcc {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; N_DURATION_BUCKETS],
        }
    }
}

impl PhaseAcc {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let b = (ns / BUCKET_BASE_NS + 1)
            .next_power_of_two()
            .trailing_zeros() as usize;
        self.buckets[b.min(N_DURATION_BUCKETS - 1)] += 1;
    }

    fn merge(&mut self, other: &PhaseAcc) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Upper bound of bucket `i`, nanoseconds.
    pub fn bucket_bound_ns(i: usize) -> u64 {
        BUCKET_BASE_NS << i
    }
}

/// An opaque start token: `Some` only while profiling is enabled, so a
/// disabled profiler never reads the clock.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer(Option<std::time::Instant>);

/// Per-phase wall-clock accumulator.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    enabled: bool,
    acc: [PhaseAcc; Phase::ALL.len()],
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::disabled()
    }
}

impl PhaseProfiler {
    pub fn disabled() -> Self {
        PhaseProfiler {
            enabled: false,
            acc: [PhaseAcc::default(); Phase::ALL.len()],
        }
    }

    pub fn enabled() -> Self {
        PhaseProfiler {
            enabled: true,
            ..Self::disabled()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start a timing interval. The token form exists for call sites
    /// that must keep using `&mut self` between start and stop (the
    /// engine loop); use [`PhaseProfiler::scope`] where a plain RAII
    /// guard suffices.
    #[inline]
    pub fn start(&self) -> PhaseTimer {
        PhaseTimer(if self.enabled {
            Some(std::time::Instant::now())
        } else {
            None
        })
    }

    /// [`PhaseProfiler::start`] gated on a caller-side sampling
    /// decision: a `false` sample yields an inert token and no clock
    /// read. The engine passes `events % HOT_PHASE_STRIDE == 0` here.
    #[inline]
    pub fn start_if(&self, sample: bool) -> PhaseTimer {
        if sample {
            self.start()
        } else {
            PhaseTimer(None)
        }
    }

    /// Close a timing interval against `phase`.
    #[inline]
    pub fn stop(&mut self, phase: Phase, timer: PhaseTimer) {
        if let Some(t0) = timer.0 {
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.acc[phase.index()].observe(ns);
        }
    }

    /// RAII guard: times from creation to drop.
    #[inline]
    pub fn scope(&mut self, phase: Phase) -> PhaseGuard<'_> {
        let timer = self.start();
        PhaseGuard {
            prof: self,
            phase,
            timer,
        }
    }

    /// Record a pre-measured duration (tests, external merges).
    pub fn record_ns(&mut self, phase: Phase, ns: u64) {
        if self.enabled {
            self.acc[phase.index()].observe(ns);
        }
    }

    /// Fold another profiler's accumulators into this one.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        self.enabled |= other.enabled;
        for (a, b) in self.acc.iter_mut().zip(other.acc.iter()) {
            a.merge(b);
        }
    }

    pub fn acc(&self, phase: Phase) -> &PhaseAcc {
        &self.acc[phase.index()]
    }

    /// Phases that recorded at least one interval, in declaration order.
    pub fn rows(&self) -> impl Iterator<Item = (Phase, &PhaseAcc)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, &self.acc[p.index()]))
            .filter(|(_, a)| a.count > 0)
    }

    /// Total wall clock across all phases, seconds. Phases nest
    /// (dispatch contains the control-tick phases), so this is an
    /// attribution aid, not an exclusive-time sum.
    pub fn total_wall_s(&self) -> f64 {
        self.acc.iter().map(|a| a.total_ns as f64).sum::<f64>() / 1e9
    }
}

/// RAII phase timer returned by [`PhaseProfiler::scope`].
pub struct PhaseGuard<'a> {
    prof: &'a mut PhaseProfiler,
    phase: Phase,
    timer: PhaseTimer,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.prof.stop(self.phase, self.timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_never_reads_the_clock() {
        let mut p = PhaseProfiler::disabled();
        let t = p.start();
        assert!(t.0.is_none(), "no Instant when disabled");
        p.stop(Phase::Dispatch, t);
        p.record_ns(Phase::Dispatch, 1_000);
        assert_eq!(p.acc(Phase::Dispatch).count, 0);
        assert_eq!(p.rows().count(), 0);
    }

    #[test]
    fn guard_and_token_both_accumulate() {
        let mut p = PhaseProfiler::enabled();
        {
            let _g = p.scope(Phase::ControlTick);
            std::hint::black_box(2 + 2);
        }
        let t = p.start();
        p.stop(Phase::ControlTick, t);
        let a = p.acc(Phase::ControlTick);
        assert_eq!(a.count, 2);
        assert!(a.total_ns >= a.min_ns);
        assert!(a.max_ns >= a.min_ns);
        assert_eq!(a.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn bucketing_is_log2_with_saturation() {
        let mut p = PhaseProfiler::enabled();
        p.record_ns(Phase::EventPop, 0); // bucket 0 (< 64 ns)
        p.record_ns(Phase::EventPop, 63);
        p.record_ns(Phase::EventPop, 64); // bucket 1
        p.record_ns(Phase::EventPop, u64::MAX / 2); // saturates to last
        let a = p.acc(Phase::EventPop);
        assert_eq!(a.buckets[0], 2);
        assert_eq!(a.buckets[1], 1);
        assert_eq!(a.buckets[N_DURATION_BUCKETS - 1], 1);
        assert_eq!(PhaseAcc::bucket_bound_ns(1), 128);
    }

    #[test]
    fn merge_folds_counts_and_extremes() {
        let mut a = PhaseProfiler::enabled();
        let mut b = PhaseProfiler::enabled();
        a.record_ns(Phase::Offload, 100);
        b.record_ns(Phase::Offload, 10);
        b.record_ns(Phase::Offload, 1_000);
        a.merge(&b);
        let acc = a.acc(Phase::Offload);
        assert_eq!(acc.count, 3);
        assert_eq!(acc.min_ns, 10);
        assert_eq!(acc.max_ns, 1_000);
        assert!((a.total_wall_s() - 1_110.0 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn merging_an_enabled_profiler_enables_the_sink() {
        let mut sink = PhaseProfiler::disabled();
        let mut src = PhaseProfiler::enabled();
        src.record_ns(Phase::Export, 5);
        sink.merge(&src);
        assert!(sink.is_enabled());
        assert_eq!(sink.acc(Phase::Export).count, 1);
    }
}
