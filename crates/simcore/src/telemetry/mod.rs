//! Flight-recorder telemetry and wall-clock phase profiling.
//!
//! The observability layer of the framework, in three pieces:
//!
//! - [`recorder`]: a capped ring-buffer **flight recorder** of typed,
//!   tag-interned simulation events and sim-time spans. Week-long
//!   district runs keep the last N events without ballooning; disabled
//!   recorders cost one branch per call site.
//! - [`profiler`]: a **phase profiler** accumulating wall-clock
//!   histograms for the engine's hot-loop phases (event pop, dispatch,
//!   thermal staging, …) through RAII guards or start/stop tokens.
//! - [`export`]: format back-ends shared by the run exporters — JSON
//!   escaping, Chrome trace-event JSON (Perfetto-loadable), Prometheus
//!   text exposition, and a dependency-free JSON validator used by the
//!   exporter tests and the CI telemetry leg.
//!
//! ## Inertness contract
//!
//! Telemetry must never perturb a simulation: nothing here draws from
//! any RNG, touches simulation state, or feeds back into scheduling.
//! A disabled [`FlightRecorder`]/[`PhaseProfiler`] reduces every call
//! to a single branch, and an enabled one only *observes* — platform
//! results are bit-identical either way (property-tested downstream).

pub mod export;
pub mod profiler;
pub mod recorder;

pub use profiler::{Phase, PhaseAcc, PhaseGuard, PhaseProfiler, PhaseTimer, HOT_PHASE_STRIDE};
pub use recorder::{FieldSet, FlightRecorder, TagId, TelemetryEvent, Track, Value, MAX_FIELDS};

use serde::{Deserialize, Serialize};

/// Run-time telemetry switches (embedded in downstream platform
/// configs; the default is fully disabled, the bit-identical mode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch: flight recorder + phase profiler.
    pub enabled: bool,
    /// Ring-buffer capacity of the flight recorder (last N events are
    /// kept; older ones are overwritten and counted as dropped). The
    /// default keeps the ring's working set a few MB so steady-state
    /// recording stays cache-resident — raise it for full-history
    /// captures at the price of measurably more memory traffic.
    pub capacity: usize,
    /// Record per-job sim-time spans (the Chrome-trace timeline). Can
    /// be switched off to keep only decision/fault/watchdog events.
    pub spans: bool,
}

impl TelemetryConfig {
    /// Telemetry fully off (the default; bit-identical to a build
    /// without the layer).
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            capacity: 1 << 14,
            spans: true,
        }
    }

    /// Recorder + profiler on with the default ring capacity.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Validate the switches (capacity must hold at least one event).
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.capacity == 0 {
            return Err("telemetry capacity must be positive when enabled".into());
        }
        Ok(())
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The bundle a model carries through a run: one flight recorder plus
/// the phase profiler collected from the engine afterwards.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    pub recorder: FlightRecorder,
    pub profiler: PhaseProfiler,
}

impl Telemetry {
    pub fn from_config(cfg: TelemetryConfig) -> Self {
        Telemetry {
            recorder: if cfg.enabled {
                FlightRecorder::enabled(cfg.capacity)
            } else {
                FlightRecorder::disabled()
            },
            profiler: PhaseProfiler::disabled(),
        }
    }

    pub fn disabled() -> Self {
        Self::from_config(TelemetryConfig::disabled())
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert!(c.validate().is_ok());
        assert!(!Telemetry::from_config(c).is_enabled());
    }

    #[test]
    fn zero_capacity_rejected_only_when_enabled() {
        let mut c = TelemetryConfig::enabled();
        c.capacity = 0;
        assert!(c.validate().is_err());
        c.enabled = false;
        assert!(c.validate().is_ok());
    }
}
