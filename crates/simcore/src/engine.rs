//! The simulation engine: drives a user-supplied [`Model`] by popping the
//! future-event list and dispatching each event to the model, which may
//! schedule further events through the [`Scheduler`] facade.

use crate::event::{EventId, EventQueue};
use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::telemetry::{Phase, PhaseProfiler, HOT_PHASE_STRIDE};
use crate::time::{SimDuration, SimTime};

/// A discrete-event model. Implementations own all simulation state and
/// receive every event through [`Model::handle`].
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event occurring at time `t`; schedule follow-ups via `sched`.
    fn handle(&mut self, t: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// Called once when the engine starts, to seed initial events.
    fn init(&mut self, _sched: &mut Scheduler<Self::Event>) {}

    /// Called once after the main loop ends, before the engine returns.
    /// The place to reclaim per-run collectors living on the scheduler
    /// (e.g. [`Scheduler::profiler`]).
    fn finish(&mut self, _sched: &mut Scheduler<Self::Event>) {}
}

/// Scheduling facade handed to the model during event handling.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: SimTime,
    stopped: bool,
    /// Wall-clock phase profiler. Disabled (one branch per event) until
    /// a model enables it from `init`; the engine itself times the
    /// event-pop and dispatch phases, models time their own sub-phases.
    pub profiler: PhaseProfiler,
}

impl<E> Scheduler<E> {
    fn new(horizon: SimTime) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            horizon,
            stopped: false,
            profiler: PhaseProfiler::disabled(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// End of the simulation horizon (events at or after it never fire).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedule `event` after `delay`. Panics on negative delay.
    pub fn after(&mut self, delay: SimDuration, event: E) -> EventId {
        assert!(!delay.is_negative(), "negative delay {delay:?}");
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past.
    pub fn at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedule `event` immediately (after all events already queued for
    /// the current instant, per the FIFO tie-break).
    pub fn immediately(&mut self, event: E) -> EventId {
        self.queue.schedule(self.now, event)
    }

    /// Cancel a scheduled event. Returns whether it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Request the engine to stop after the current event completes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of concurrently pending events so far.
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_depth()
    }
}

/// The scheduler checkpoints its clock, horizon, stop flag, and the
/// event queue **verbatim** (payloads included). The phase profiler is
/// deliberately excluded: it measures wall-clock time of this process,
/// which is not simulation state — a restored run starts a fresh one.
impl<E: Snapshot> Snapshot for Scheduler<E> {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.now.encode(w);
        self.horizon.encode(w);
        w.put_bool(self.stopped);
        self.queue.encode(w);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let now = SimTime::decode(r)?;
        let horizon = SimTime::decode(r)?;
        let stopped = r.take_bool()?;
        let queue = EventQueue::decode(r)?;
        Ok(Scheduler {
            now,
            horizon,
            stopped,
            queue,
            profiler: PhaseProfiler::disabled(),
        })
    }
}

/// Outcome of an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events dispatched.
    pub events: u64,
    /// Simulation time when the run ended.
    pub end_time: SimTime,
    /// Why the run ended.
    pub reason: StopReason,
    /// High-water mark of concurrently pending events.
    pub peak_queue: usize,
}

/// Why an engine run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event list drained.
    QueueEmpty,
    /// The next event lay at or beyond the horizon.
    HorizonReached,
    /// The model called [`Scheduler::stop`].
    Stopped,
    /// The event budget was exhausted (runaway guard).
    EventBudget,
}

/// Result of [`Engine::run_until`]: either the run completed (drained,
/// hit the horizon, stopped, or exhausted its budget) or it paused at
/// the requested instant with all state intact for checkpointing.
pub enum EngineRun<M: Model> {
    /// The run reached `pause_at` and stopped *before* dispatching any
    /// event at or after it. `Model::finish` has **not** run; the
    /// engine can be snapshotted or resumed with another `run_until`.
    /// (Boxed: an engine is far larger than a run summary, and pausing
    /// happens at most once per leg.)
    Paused(Box<Engine<M>>),
    /// The run completed; `Model::finish` has run.
    Finished(M, RunSummary),
}

/// The discrete-event engine.
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    /// Hard cap on dispatched events; guards against accidental infinite
    /// self-scheduling loops in models. Default: `u64::MAX`.
    pub event_budget: u64,
    /// Events dispatched so far — a field, not a loop local, so the
    /// count survives pause/resume and checkpoint/restore.
    events: u64,
    /// Whether `Model::init` has run (it must run exactly once per
    /// simulation, even across pause/resume and restore).
    initialised: bool,
}

impl<M: Model> Engine<M> {
    /// Create an engine that will run until `horizon` (exclusive).
    pub fn new(model: M, horizon: SimTime) -> Self {
        Engine {
            model,
            sched: Scheduler::new(horizon),
            event_budget: u64::MAX,
            events: 0,
            initialised: false,
        }
    }

    /// Rebuild an engine from checkpointed parts. `Model::init` will
    /// *not* run again: the scheduler's queue already holds the future
    /// the original `init` (and everything after it) scheduled.
    pub fn restored(model: M, sched: Scheduler<M::Event>, events: u64) -> Self {
        Engine {
            model,
            sched,
            event_budget: u64::MAX,
            events,
            initialised: true,
        }
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    pub fn model(&self) -> &M {
        &self.model
    }

    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    pub fn scheduler(&self) -> &Scheduler<M::Event> {
        &self.sched
    }

    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Run to completion and return the model plus a run summary.
    pub fn run(self) -> (M, RunSummary) {
        match self.run_until(SimTime::MAX) {
            EngineRun::Finished(m, s) => (m, s),
            // `pause_at == MAX` can never pause: every schedulable event
            // is strictly earlier.
            EngineRun::Paused(_) => unreachable!("run cannot pause at SimTime::MAX"),
        }
    }

    /// Run until the simulation ends or the clock is about to pass
    /// `pause_at`, whichever comes first. Events strictly before
    /// `pause_at` are dispatched; events at or after it stay queued.
    ///
    /// The horizon wins ties: a `pause_at` at or beyond the horizon
    /// never pauses, so the final leg of a resumed run finishes
    /// normally (including `Model::finish`).
    pub fn run_until(mut self, pause_at: SimTime) -> EngineRun<M> {
        if !self.initialised {
            self.model.init(&mut self.sched);
            self.initialised = true;
        }
        let reason = loop {
            if self.sched.stopped {
                break StopReason::Stopped;
            }
            if self.events >= self.event_budget {
                break StopReason::EventBudget;
            }
            // Per-event phases are sampled: two clock reads per event
            // would dominate the loop, so only one event per stride
            // pays them (see `HOT_PHASE_STRIDE`).
            let sample = self.events & (HOT_PHASE_STRIDE - 1) == 0;
            let t_pop = self.sched.profiler.start_if(sample);
            let Some(next) = self.sched.queue.peek_time() else {
                break StopReason::QueueEmpty;
            };
            if next >= self.sched.horizon {
                break StopReason::HorizonReached;
            }
            if next >= pause_at {
                return EngineRun::Paused(Box::new(self));
            }
            let (t, ev) = self.sched.queue.pop().expect("peeked event vanished");
            self.sched.profiler.stop(Phase::EventPop, t_pop);
            debug_assert!(t >= self.sched.now, "time went backwards");
            self.sched.now = t;
            let t_dispatch = self.sched.profiler.start_if(sample);
            self.model.handle(t, ev, &mut self.sched);
            self.sched.profiler.stop(Phase::Dispatch, t_dispatch);
            self.events += 1;
        };
        self.model.finish(&mut self.sched);
        let end_time = match reason {
            StopReason::HorizonReached => self.sched.horizon,
            _ => self.sched.now,
        };
        let peak_queue = self.sched.peak_pending();
        EngineRun::Finished(
            self.model,
            RunSummary {
                events: self.events,
                end_time,
                reason,
                peak_queue,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts down: each event schedules the next one until zero.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Model for Countdown {
        type Event = ();
        fn init(&mut self, sched: &mut Scheduler<()>) {
            sched.after(SimDuration::SECOND, ());
        }
        fn handle(&mut self, t: SimTime, _: (), sched: &mut Scheduler<()>) {
            self.fired_at.push(t);
            self.remaining -= 1;
            if self.remaining > 0 {
                sched.after(SimDuration::SECOND, ());
            }
        }
    }

    #[test]
    fn countdown_runs_to_queue_empty() {
        let (m, s) = Engine::new(
            Countdown {
                remaining: 5,
                fired_at: vec![],
            },
            SimTime::from_secs(100),
        )
        .run();
        assert_eq!(m.remaining, 0);
        assert_eq!(s.events, 5);
        assert_eq!(s.reason, StopReason::QueueEmpty);
        assert_eq!(
            m.fired_at,
            (1..=5).map(SimTime::from_secs).collect::<Vec<_>>()
        );
    }

    #[test]
    fn horizon_cuts_off() {
        let (m, s) = Engine::new(
            Countdown {
                remaining: 1000,
                fired_at: vec![],
            },
            SimTime::from_secs(3),
        )
        .run();
        // Events at t=1,2 fire; t=3 is at the horizon and does not.
        assert_eq!(m.fired_at.len(), 2);
        assert_eq!(s.reason, StopReason::HorizonReached);
        assert_eq!(s.end_time, SimTime::from_secs(3));
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn init(&mut self, sched: &mut Scheduler<u32>) {
            for i in 0..10 {
                sched.after(SimDuration::from_secs(i as i64 + 1), i);
            }
        }
        fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            if ev == 2 {
                sched.stop();
            }
        }
    }

    #[test]
    fn model_can_stop_engine() {
        let (_, s) = Engine::new(Stopper, SimTime::from_secs(100)).run();
        assert_eq!(s.reason, StopReason::Stopped);
        assert_eq!(s.events, 3);
        assert_eq!(s.end_time, SimTime::from_secs(3));
    }

    struct Runaway;
    impl Model for Runaway {
        type Event = ();
        fn init(&mut self, sched: &mut Scheduler<()>) {
            sched.immediately(());
        }
        fn handle(&mut self, _t: SimTime, _: (), sched: &mut Scheduler<()>) {
            sched.immediately(());
        }
    }

    #[test]
    fn event_budget_guards_runaway_models() {
        let mut engine = Engine::new(Runaway, SimTime::from_secs(1));
        engine.event_budget = 1_000;
        let (_, s) = engine.run();
        assert_eq!(s.reason, StopReason::EventBudget);
        assert_eq!(s.events, 1_000);
    }

    struct Canceller {
        cancelled_fired: bool,
    }
    impl Model for Canceller {
        type Event = &'static str;
        fn init(&mut self, sched: &mut Scheduler<&'static str>) {
            let doomed = sched.after(SimDuration::from_secs(5), "doomed");
            sched.after(SimDuration::from_secs(1), "keep");
            // Cancel from init itself.
            assert!(sched.cancel(doomed));
        }
        fn handle(&mut self, _t: SimTime, ev: &'static str, _s: &mut Scheduler<&'static str>) {
            if ev == "doomed" {
                self.cancelled_fired = true;
            }
        }
    }

    #[test]
    fn cancelled_events_never_fire() {
        let (m, s) = Engine::new(
            Canceller {
                cancelled_fired: false,
            },
            SimTime::from_secs(100),
        )
        .run();
        assert!(!m.cancelled_fired);
        assert_eq!(s.events, 1);
    }

    /// A model that switches the scheduler's profiler on in `init` and
    /// reclaims it in `finish` — the pattern the platform uses.
    struct Profiled {
        remaining: u32,
        collected: Option<crate::telemetry::PhaseProfiler>,
    }

    impl Model for Profiled {
        type Event = ();
        fn init(&mut self, sched: &mut Scheduler<()>) {
            sched.profiler = crate::telemetry::PhaseProfiler::enabled();
            sched.after(SimDuration::SECOND, ());
        }
        fn handle(&mut self, _t: SimTime, _: (), sched: &mut Scheduler<()>) {
            self.remaining -= 1;
            if self.remaining > 0 {
                sched.after(SimDuration::SECOND, ());
            }
        }
        fn finish(&mut self, sched: &mut Scheduler<()>) {
            self.collected = Some(std::mem::take(&mut sched.profiler));
        }
    }

    #[test]
    fn engine_times_pop_and_dispatch_when_profiling() {
        // Per-event phases are sampled one in HOT_PHASE_STRIDE, so run
        // enough events for exactly two samples per phase.
        let n = HOT_PHASE_STRIDE as u32 + 1;
        let (m, s) = Engine::new(
            Profiled {
                remaining: n,
                collected: None,
            },
            SimTime::from_secs(1_000),
        )
        .run();
        assert_eq!(s.events, u64::from(n));
        let prof = m.collected.expect("finish hook ran");
        assert_eq!(prof.acc(Phase::Dispatch).count, 2);
        assert_eq!(prof.acc(Phase::EventPop).count, 2);
        assert!(prof.acc(Phase::Dispatch).total_ns > 0 || prof.acc(Phase::EventPop).total_ns > 0);
    }

    #[test]
    fn profiler_defaults_to_disabled() {
        let (_, _) = Engine::new(
            Countdown {
                remaining: 2,
                fired_at: vec![],
            },
            SimTime::from_secs(100),
        )
        .run();
        // No panic, no profiling: the default path records nothing.
        let sched: Scheduler<()> = Scheduler::new(SimTime::from_secs(1));
        assert!(!sched.profiler.is_enabled());
    }

    #[test]
    fn run_until_pauses_before_the_mark_and_resumes_identically() {
        let mk = || {
            Engine::new(
                Countdown {
                    remaining: 10,
                    fired_at: vec![],
                },
                SimTime::from_secs(100),
            )
        };
        let (ref_model, ref_summary) = mk().run();

        let paused = match mk().run_until(SimTime::from_secs(4)) {
            EngineRun::Paused(e) => e,
            EngineRun::Finished(..) => panic!("should pause"),
        };
        // Events at t=1..3 fired; the t=4 event is still queued.
        assert_eq!(paused.events(), 3);
        assert_eq!(paused.model().fired_at.len(), 3);
        assert_eq!(paused.scheduler().pending(), 1);
        let (m, s) = paused.run();
        assert_eq!(m.fired_at, ref_model.fired_at);
        assert_eq!(s, ref_summary);
    }

    #[test]
    fn pause_at_or_past_horizon_finishes_normally() {
        let e = Engine::new(
            Countdown {
                remaining: 1000,
                fired_at: vec![],
            },
            SimTime::from_secs(3),
        );
        match e.run_until(SimTime::from_secs(3)) {
            EngineRun::Finished(_, s) => {
                assert_eq!(s.reason, StopReason::HorizonReached);
                assert_eq!(s.end_time, SimTime::from_secs(3));
            }
            EngineRun::Paused(_) => panic!("horizon must win the tie"),
        }
    }

    #[test]
    fn scheduler_snapshot_restores_a_paused_run_bit_identically() {
        use crate::snapshot::{SnapshotReader, SnapshotWriter};

        let mk = || {
            Engine::new(
                Countdown {
                    remaining: 10,
                    fired_at: vec![],
                },
                SimTime::from_secs(100),
            )
        };
        let (ref_model, ref_summary) = mk().run();

        let paused = match mk().run_until(SimTime::from_secs(6)) {
            EngineRun::Paused(e) => e,
            EngineRun::Finished(..) => panic!("should pause"),
        };
        let mut w = SnapshotWriter::new();
        paused.scheduler().encode(&mut w);
        let events = paused.events();
        let fired_so_far = paused.model().fired_at.clone();
        let remaining = paused.model().remaining;
        drop(paused); // the "fresh process": nothing survives but bytes

        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let sched = Scheduler::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        let restored = Engine::restored(
            Countdown {
                remaining,
                fired_at: fired_so_far,
            },
            sched,
            events,
        );
        let (m, s) = restored.run();
        assert_eq!(m.fired_at, ref_model.fired_at);
        assert_eq!(s, ref_summary);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn init(&mut self, sched: &mut Scheduler<()>) {
                sched.after(SimDuration::from_secs(10), ());
            }
            fn handle(&mut self, _t: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.at(SimTime::from_secs(1), ());
            }
        }
        let _ = Engine::new(Bad, SimTime::from_secs(100)).run();
    }
}
