//! Virtual simulation time.
//!
//! Time is a count of whole **microseconds** since the simulation epoch,
//! stored in an `i64`. Integer time makes the event queue ordering exact
//! (no float ties), supports ~292 000 simulated years, and microsecond
//! resolution is far below every latency the DF3 model cares about
//! (the finest being sub-millisecond LAN hops).
//!
//! The simulation epoch is, by convention of the experiment suite,
//! **November 1st, 00:00** of the heating season under study — matching
//! Figure 4 of the paper which plots November through May. Calendar
//! helpers ([`SimTime::month_index`], [`SimTime::day_of_year`]) assume a
//! 365-day non-leap year starting at that epoch; experiments that need a
//! January epoch use [`Calendar`] with an explicit start month.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds in one second.
const MICROS_PER_SEC: i64 = 1_000_000;

/// A point in virtual time (microseconds since the simulation epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(i64);

/// A span of virtual time (microseconds; may be negative as an
/// intermediate value, but scheduling negative delays is an error).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event may be scheduled at or after this time.
    pub const MAX: SimTime = SimTime(i64::MAX);

    /// Construct from whole seconds since the epoch.
    pub fn from_secs(secs: i64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds since the epoch (rounded to µs).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * MICROS_PER_SEC as f64).round() as i64)
    }

    /// Construct from raw microseconds.
    pub const fn from_micros(us: i64) -> Self {
        SimTime(us)
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours since the epoch, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Days since the epoch, as a float.
    pub fn as_days_f64(self) -> f64 {
        self.as_secs_f64() / 86_400.0
    }

    /// Whole days since the epoch (floor).
    pub fn day_index(self) -> i64 {
        self.0.div_euclid(SimDuration::DAY.0)
    }

    /// Day of the (365-day) simulation year, in `0..365`.
    pub fn day_of_year(self) -> u32 {
        (self.day_index().rem_euclid(365)) as u32
    }

    /// Seconds into the current day, in `0..86400`.
    pub fn second_of_day(self) -> u32 {
        (self.0.rem_euclid(SimDuration::DAY.0) / MICROS_PER_SEC) as u32
    }

    /// Hour of the current day as a fraction, in `0..24`.
    pub fn hour_of_day(self) -> f64 {
        self.second_of_day() as f64 / 3600.0
    }

    /// Month index in `0..12` of a 365-day year made of the standard
    /// month lengths, **relative to the epoch month** (see [`Calendar`]).
    pub fn month_index(self) -> u32 {
        Calendar::NOVEMBER_EPOCH.month_index(self).rel
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self >= earlier,
            "SimTime::since: {self:?} is before {earlier:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MICROSECOND: SimDuration = SimDuration(1);
    pub const MILLISECOND: SimDuration = SimDuration(1_000);
    pub const SECOND: SimDuration = SimDuration(MICROS_PER_SEC);
    pub const MINUTE: SimDuration = SimDuration(60 * MICROS_PER_SEC);
    pub const HOUR: SimDuration = SimDuration(3_600 * MICROS_PER_SEC);
    pub const DAY: SimDuration = SimDuration(86_400 * MICROS_PER_SEC);
    /// A 365-day simulation year.
    pub const YEAR: SimDuration = SimDuration(365 * 86_400 * MICROS_PER_SEC);

    pub fn from_secs(secs: i64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * MICROS_PER_SEC as f64).round() as i64)
    }

    pub fn from_millis(ms: i64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_micros(us: i64) -> Self {
        SimDuration(us)
    }

    pub fn from_hours(h: i64) -> Self {
        SimDuration(h * Self::HOUR.0)
    }

    pub fn from_hours_f64(h: f64) -> Self {
        Self::from_secs_f64(h * 3600.0)
    }

    pub fn from_days(d: i64) -> Self {
        SimDuration(d * Self::DAY.0)
    }

    pub const fn as_micros(self) -> i64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    pub fn as_days_f64(self) -> f64 {
        self.as_secs_f64() / 86_400.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    pub fn max(self, other: Self) -> Self {
        SimDuration(self.0.max(other.0))
    }

    pub fn min(self, other: Self) -> Self {
        SimDuration(self.0.min(other.0))
    }

    /// Multiply by a float factor (rounded to µs). Panics on NaN.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(!k.is_nan(), "SimDuration::mul_f64 by NaN");
        SimDuration((self.0 as f64 * k).round() as i64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<i64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: i64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, d: SimDuration) -> f64 {
        self.0 as f64 / d.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day_index();
        let s = self.second_of_day();
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            d,
            s / 3600,
            (s % 3600) / 60,
            s % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        if abs >= SimDuration::DAY.0 as u64 {
            write!(f, "{sign}{:.2}d", abs as f64 / SimDuration::DAY.0 as f64)
        } else if abs >= SimDuration::HOUR.0 as u64 {
            write!(f, "{sign}{:.2}h", abs as f64 / SimDuration::HOUR.0 as f64)
        } else if abs >= SimDuration::SECOND.0 as u64 {
            write!(f, "{sign}{:.3}s", abs as f64 / SimDuration::SECOND.0 as f64)
        } else {
            write!(f, "{sign}{:.3}ms", abs as f64 / 1_000.0)
        }
    }
}

/// Standard month lengths for a 365-day year, January-first.
pub const MONTH_DAYS: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Abbreviated month names, January-first.
pub const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// A month resolved against a calendar: both the index relative to the
/// epoch (`rel`, 0-based) and the calendar month (`calendar`, 0 = January).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedMonth {
    /// Months elapsed since the epoch month, modulo 12.
    pub rel: u32,
    /// Calendar month, 0 = January … 11 = December.
    pub calendar: u32,
}

impl ResolvedMonth {
    /// Calendar month number as humans write it (1 = January).
    pub fn number(&self) -> u32 {
        self.calendar + 1
    }

    /// Abbreviated calendar month name.
    pub fn name(&self) -> &'static str {
        MONTH_NAMES[self.calendar as usize]
    }
}

/// Maps [`SimTime`] onto calendar months given the epoch's starting month.
///
/// The DF3 experiment suite follows the paper's Figure 4 and starts the
/// simulated year on **November 1st** ([`Calendar::NOVEMBER_EPOCH`]);
/// full-year experiments (seasonality, economics) use
/// [`Calendar::JANUARY_EPOCH`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Calendar {
    /// Calendar month at t = 0 (0 = January).
    pub epoch_month: u32,
}

impl Calendar {
    /// Epoch at November 1st (Figure 4 convention).
    pub const NOVEMBER_EPOCH: Calendar = Calendar { epoch_month: 10 };
    /// Epoch at January 1st.
    pub const JANUARY_EPOCH: Calendar = Calendar { epoch_month: 0 };

    /// Resolve the month containing `t`.
    pub fn month_index(&self, t: SimTime) -> ResolvedMonth {
        let mut day = t.day_index().rem_euclid(365) as u32;
        let mut cal = self.epoch_month;
        let mut rel = 0;
        loop {
            let len = MONTH_DAYS[cal as usize];
            if day < len {
                return ResolvedMonth { rel, calendar: cal };
            }
            day -= len;
            cal = (cal + 1) % 12;
            rel += 1;
        }
    }

    /// Start time of the `rel`-th month after the epoch (may exceed a year).
    pub fn month_start(&self, rel: u32) -> SimTime {
        let mut days: i64 = 365 * (rel / 12) as i64;
        let mut cal = self.epoch_month;
        for _ in 0..(rel % 12) {
            days += MONTH_DAYS[cal as usize] as i64;
            cal = (cal + 1) % 12;
        }
        SimTime::ZERO + SimDuration::from_days(days)
    }

    /// Calendar month (0 = January) of the `rel`-th month after the epoch.
    pub fn calendar_month(&self, rel: u32) -> u32 {
        (self.epoch_month + rel) % 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_seconds() {
        let t = SimTime::from_secs(12_345);
        assert_eq!(t.as_secs_f64(), 12_345.0);
        assert_eq!(t.as_micros(), 12_345 * 1_000_000);
    }

    #[test]
    fn fractional_seconds_round_to_microseconds() {
        let t = SimTime::from_secs_f64(1.234_567_89);
        assert_eq!(t.as_micros(), 1_234_568);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::ZERO + SimDuration::HOUR * 3 + SimDuration::MINUTE;
        assert_eq!(t.as_secs_f64(), 3.0 * 3600.0 + 60.0);
        assert_eq!((t - SimTime::ZERO).as_hours_f64(), 3.0 + 1.0 / 60.0);
    }

    #[test]
    fn day_and_second_of_day() {
        let t = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_secs(3_661);
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.second_of_day(), 3_661);
        assert!((t.hour_of_day() - 3_661.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn november_epoch_months() {
        let cal = Calendar::NOVEMBER_EPOCH;
        // Day 0 is November 1st.
        let m0 = cal.month_index(SimTime::ZERO);
        assert_eq!(m0.rel, 0);
        assert_eq!(m0.name(), "Nov");
        assert_eq!(m0.number(), 11);
        // Day 30 is December 1st (November has 30 days).
        let dec = cal.month_index(SimTime::ZERO + SimDuration::from_days(30));
        assert_eq!(dec.name(), "Dec");
        // Day 61 is January 1st.
        let jan = cal.month_index(SimTime::ZERO + SimDuration::from_days(61));
        assert_eq!(jan.name(), "Jan");
        assert_eq!(jan.rel, 2);
        // The Figure 4 range Nov..May covers rel months 0..=6.
        let may = cal.month_index(SimTime::ZERO + SimDuration::from_days(61 + 31 + 28 + 31 + 30));
        assert_eq!(may.name(), "May");
        assert_eq!(may.rel, 6);
    }

    #[test]
    fn month_start_matches_month_index() {
        for cal in [Calendar::NOVEMBER_EPOCH, Calendar::JANUARY_EPOCH] {
            for rel in 0..12 {
                let start = cal.month_start(rel);
                let resolved = cal.month_index(start);
                assert_eq!(resolved.rel, rel, "cal={cal:?} rel={rel}");
                // One microsecond before the start belongs to the previous month.
                if rel > 0 {
                    let before = cal.month_index(start - SimDuration::MICROSECOND);
                    assert_eq!(before.rel, rel - 1);
                }
            }
        }
    }

    #[test]
    fn year_wraps_around() {
        let cal = Calendar::JANUARY_EPOCH;
        let t = SimTime::ZERO + SimDuration::YEAR + SimDuration::from_days(40);
        assert_eq!(cal.month_index(t).name(), "Feb");
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.000s");
        assert_eq!(format!("{}", SimDuration::from_hours(5)), "5.00h");
        assert_eq!(format!("{}", SimDuration::from_days(3)), "3.00d");
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(25);
        assert_eq!(b.since(a).as_secs_f64(), 15.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn since_panics_on_negative() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::SECOND.mul_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::SECOND.mul_f64(1e-7), SimDuration::ZERO);
    }
}
