//! Deterministic checkpoint/restore: a versioned, checksummed binary
//! codec for simulation state.
//!
//! Long seasonal runs (the paper's argument needs weeks of simulated
//! winter before the interesting regime starts) and branch-from-snapshot
//! sweeps both need one primitive: capture *every* bit of live state at
//! a sim-time S so a fresh process can continue to T with results
//! **bit-identical** to a run that never stopped. The codec here is
//! hand-rolled — like the export back-ends, no serde — because the
//! guarantee is byte-level and the format must not drift with a
//! dependency.
//!
//! Layout: a snapshot file is
//!
//! ```text
//! magic "DF3SNAP\0" (8 B) · version u32 · section count u32 ·
//!   { name: str · payload len u64 · payload crc32 u32 · payload }*
//! ```
//!
//! all little-endian. Each section payload is an independent
//! [`SnapshotWriter`] byte stream; integers are fixed-width LE, `f64`s
//! are raw IEEE bits (NaN payloads survive — the thermal decay cache
//! uses NaN as a sentinel), strings and vectors are length-prefixed.
//! Decoding **never panics**: every read is bounds-checked and returns
//! [`SnapshotError`] on truncated, corrupt, or version-skewed input, and
//! every section's CRC is verified before its payload is parsed.
//!
//! What a type must do to participate: implement [`Snapshot`]. Encoding
//! is infallible (it only appends to a buffer); decoding is validated.
//! Implementations live next to the type they capture so private fields
//! stay private.

use crate::rng::RngStreams;
use crate::time::{SimDuration, SimTime};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// File magic: identifies a DF3 snapshot container.
pub const MAGIC: [u8; 8] = *b"DF3SNAP\0";

/// Container format version. Bump on any layout change; decoders reject
/// versions they do not understand instead of misparsing.
pub const VERSION: u32 = 1;

/// Upper bound on declared collection lengths, as a corruption guard:
/// a flipped length byte must produce [`SnapshotError::Corrupt`], not an
/// attempted multi-terabyte allocation.
const MAX_LEN: u64 = 1 << 40;

/// Why a snapshot failed to decode. Decoding never panics; every
/// malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input ended before the declared content did.
    Truncated,
    /// The first 8 bytes are not the DF3 snapshot magic.
    BadMagic,
    /// Unknown container version.
    BadVersion(u32),
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch { section: String },
    /// A required section is absent from the container.
    MissingSection(String),
    /// Structurally invalid content (bad tag byte, absurd length,
    /// inconsistent cross-field state). The string says what and where.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a DF3 snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "section `{section}` failed its CRC-32 check")
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot has no `{name}` section")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Writer / reader.

/// Append-only byte-stream encoder. Infallible by construction.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// `f64` as raw IEEE-754 bits: the round trip is exact for every
    /// value, including NaN payloads and signed zeros.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked byte-stream decoder over a borrowed slice.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("usize overflow: {v}")))
    }

    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// A declared collection length, sanity-capped so corrupt lengths
    /// fail instead of attempting absurd allocations.
    pub fn take_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.take_u64()?;
        if n > MAX_LEN {
            return Err(SnapshotError::Corrupt(format!("length {n} exceeds cap")));
        }
        // Even a capped length must not exceed what the input could hold
        // (each element is at least one byte... except zero-sized
        // composites, so only reject lengths beyond the raw byte count).
        if n as usize > self.buf.len().saturating_mul(8) {
            return Err(SnapshotError::Corrupt(format!(
                "length {n} exceeds input size"
            )));
        }
        Ok(n as usize)
    }

    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let n = self.take_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Assert the stream is fully consumed — a section with trailing
    /// bytes means encoder and decoder disagree about the layout.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The trait.

/// A type that can checkpoint itself into the snapshot byte stream and
/// rebuild from it. Encoding is infallible; decoding validates.
pub trait Snapshot: Sized {
    fn encode(&self, w: &mut SnapshotWriter);
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

impl Snapshot for () {
    fn encode(&self, _w: &mut SnapshotWriter) {}
    fn decode(_r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl Snapshot for u8 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u8()
    }
}

impl Snapshot for u32 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u32()
    }
}

impl Snapshot for u64 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u64()
    }
}

impl Snapshot for i64 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_i64(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_i64()
    }
}

impl Snapshot for usize {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_usize()
    }
}

impl Snapshot for f64 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_f64()
    }
}

impl Snapshot for bool {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_bool()
    }
}

impl Snapshot for String {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_str()
    }
}

impl Snapshot for SimTime {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_i64(self.as_micros());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimTime::from_micros(r.take_i64()?))
    }
}

impl Snapshot for SimDuration {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_i64(self.as_micros());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimDuration::from_micros(r.take_i64()?))
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(SnapshotError::Corrupt(format!("Option tag {b}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.take_len()?;
        let mut out = VecDeque::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// The stream factory is one master seed; named streams re-derive from
/// it, so this *is* the complete RNG-subsystem state.
impl Snapshot for RngStreams {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.master());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RngStreams::new(r.take_u64()?))
    }
}

/// A live generator mid-keystream: input block, buffered block, cursor.
/// Restoring continues the exact draw sequence, mid-block included.
impl Snapshot for ChaCha8Rng {
    fn encode(&self, w: &mut SnapshotWriter) {
        let (input, buf, idx) = self.state();
        for word in input.iter().chain(buf.iter()) {
            w.put_u32(*word);
        }
        w.put_usize(idx);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let mut input = [0u32; 16];
        let mut buf = [0u32; 16];
        for word in input.iter_mut() {
            *word = r.take_u32()?;
        }
        for word in buf.iter_mut() {
            *word = r.take_u32()?;
        }
        let idx = r.take_usize()?;
        if idx > 16 {
            return Err(SnapshotError::Corrupt(format!("ChaCha cursor {idx}")));
        }
        Ok(ChaCha8Rng::from_state(input, buf, idx))
    }
}

// ---------------------------------------------------------------------------
// The section container.

/// A named-section container: what actually goes on disk.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SnapshotFile {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotFile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section. Names should be unique; [`SnapshotFile::section`]
    /// finds the first match.
    pub fn add(&mut self, name: &str, w: SnapshotWriter) {
        self.sections.push((name.to_string(), w.into_bytes()));
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// A reader over a section's payload (already CRC-verified at
    /// [`SnapshotFile::from_bytes`] time).
    pub fn section(&self, name: &str) -> Result<SnapshotReader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, payload)| SnapshotReader::new(payload))
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }

    /// Serialise: magic, version, section count, then each section as
    /// name · length · CRC-32 · payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(VERSION);
        w.put_u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.put_str(name);
            w.put_u64(payload.len() as u64);
            w.put_u32(crc32(payload));
            w.put_bytes(payload);
        }
        w.into_bytes()
    }

    /// Parse and verify a container. Magic, version, and every section
    /// CRC are checked here; malformed input errors, never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        let magic = r.take_bytes(MAGIC.len()).map_err(|_| {
            // Too short to even hold the magic: call it truncated only
            // if it *starts* like a snapshot, else it's foreign data.
            if bytes.is_empty() || !MAGIC.starts_with(&bytes[..bytes.len().min(MAGIC.len())]) {
                SnapshotError::BadMagic
            } else {
                SnapshotError::Truncated
            }
        })?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.take_u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let count = r.take_u32()?;
        if count as u64 > 1 << 16 {
            return Err(SnapshotError::Corrupt(format!("{count} sections")));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = r.take_str()?;
            let len = r.take_len()?;
            let crc = r.take_u32()?;
            let payload = r.take_bytes(len)?;
            if crc32(payload) != crc {
                return Err(SnapshotError::ChecksumMismatch { section: name });
            }
            sections.push((name, payload.to_vec()));
        }
        r.expect_end()?;
        Ok(SnapshotFile { sections })
    }
}

/// FNV-1a 64-bit over an arbitrary byte string — used to fingerprint
/// configurations so a snapshot refuses to restore under a config that
/// is not the one it was taken under.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn primitives_roundtrip_bitwise() {
        let mut w = SnapshotWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(i64::MIN);
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_i64().unwrap(), i64::MIN);
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapshotWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        r.expect_end().expect("fully consumed");
        assert_eq!(&back, v);
    }

    #[test]
    fn composite_impls_roundtrip() {
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&VecDeque::from([SimTime::from_secs(5), SimTime::ZERO]));
        roundtrip(&BTreeMap::from([(1u32, 2.5f64), (9, f64::INFINITY)]));
        roundtrip(&(SimTime::from_secs(1), SimDuration::HOUR, true));
        roundtrip(&"section name".to_string());
        roundtrip(&RngStreams::new(0xDF3));
    }

    #[test]
    fn chacha_roundtrip_continues_mid_block() {
        let mut rng = RngStreams::new(77).stream("snapshot-test");
        for _ in 0..21 {
            rng.next_u64(); // land mid-block
        }
        let mut w = SnapshotWriter::new();
        rng.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored = ChaCha8Rng::decode(&mut SnapshotReader::new(&bytes)).unwrap();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    fn sample_file() -> SnapshotFile {
        let mut f = SnapshotFile::new();
        let mut a = SnapshotWriter::new();
        a.put_u64(123);
        a.put_str("payload");
        f.add("alpha", a);
        let mut b = SnapshotWriter::new();
        vec![1.5f64, f64::NAN].encode(&mut b);
        f.add("beta", b);
        f
    }

    #[test]
    fn container_roundtrips_and_finds_sections() {
        let bytes = sample_file().to_bytes();
        let f = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(f.names().collect::<Vec<_>>(), vec!["alpha", "beta"]);
        let mut r = f.section("alpha").unwrap();
        assert_eq!(r.take_u64().unwrap(), 123);
        assert_eq!(r.take_str().unwrap(), "payload");
        r.expect_end().unwrap();
        assert!(matches!(
            f.section("gamma"),
            Err(SnapshotError::MissingSection(_))
        ));
    }

    #[test]
    fn every_truncation_errors_and_never_panics() {
        let bytes = sample_file().to_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotFile::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample_file().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            // Must error or, if the flip landed in a section *name*,
            // still parse but with a CRC-consistent rename. It must
            // never panic; most flips are caught outright.
            let _ = SnapshotFile::from_bytes(&bad);
        }
        // Flips inside a payload specifically must be caught by the CRC.
        let mut bad = bytes.clone();
        let last = bad.len() - 1; // last payload byte of section "beta"
        bad[last] ^= 0xFF;
        assert!(matches!(
            SnapshotFile::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn foreign_data_is_bad_magic_and_versions_are_checked() {
        assert_eq!(
            SnapshotFile::from_bytes(b"not a snapshot at all"),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(SnapshotFile::from_bytes(b""), Err(SnapshotError::BadMagic));
        let mut bytes = sample_file().to_bytes();
        bytes[8] = 99; // version field
        assert_eq!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::BadVersion(99))
        );
    }

    #[test]
    fn corrupt_tags_and_lengths_error() {
        // Option tag 7.
        let mut r = SnapshotReader::new(&[7u8]);
        assert!(matches!(
            Option::<u64>::decode(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
        // Vec length far past the input size.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        assert!(Vec::<u64>::decode(&mut SnapshotReader::new(&bytes)).is_err());
        // Bad bool.
        assert!(matches!(
            bool::decode(&mut SnapshotReader::new(&[3u8])),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }
}
