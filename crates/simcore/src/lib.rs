//! # simcore — deterministic discrete-event simulation engine
//!
//! The substrate for the whole DF3 framework. Every other crate builds on
//! the primitives here:
//!
//! - [`time`]: virtual time ([`SimTime`], [`SimDuration`]) with calendar
//!   helpers (the paper's arguments are seasonal, so month arithmetic is
//!   first-class).
//! - [`event`]: a deterministic future-event list (stable FIFO tie-break).
//! - [`engine`]: the [`Engine`](engine::Engine) driving a user [`Model`](engine::Model).
//! - [`rng`]: named, seed-derived random streams so adding a stream never
//!   perturbs existing ones (common random numbers across experiments).
//! - [`dist`]: distribution samplers (exponential, normal, Poisson, …)
//!   implemented locally so results are reproducible bit-for-bit.
//! - [`metrics`]: counters, histograms, time-weighted gauges, percentile
//!   estimation, Welford summaries.
//! - [`runner`]: rayon-parallel Monte-Carlo replication with confidence
//!   intervals (the only place threads are used; each replication is an
//!   independent, deterministic simulation).
//! - [`report`]: plain-text table rendering used by the experiment harness.
//! - [`snapshot`]: versioned, checksummed checkpoint codec — the
//!   [`Snapshot`](snapshot::Snapshot) trait plus the `DF3SNAP` section
//!   container behind deterministic checkpoint/restore and
//!   branch-from-snapshot sweeps.
//! - [`telemetry`]: the flight recorder (interned tags, typed fields,
//!   capped ring buffer), wall-clock phase profiler, and the export
//!   back-ends (Chrome trace-event JSON, Prometheus text, JSON
//!   validation) behind the run reporters.
//!
//! ## Determinism contract
//!
//! Given the same master seed and model, a simulation produces the same
//! event sequence on every run and platform. This is enforced by: a stable
//! event-queue tie-break (insertion sequence), ChaCha-based RNGs, and no
//! wall-clock or address-dependent behaviour anywhere in the engine.

pub mod dist;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod runner;
pub mod snapshot;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use engine::{Engine, Model, Scheduler};
pub use event::{legacy::LegacyEventQueue, EventQueue, SlabEventQueue};
pub use rng::RngStreams;
pub use snapshot::{Snapshot, SnapshotError, SnapshotFile, SnapshotReader, SnapshotWriter};
pub use telemetry::{Telemetry, TelemetryConfig};
pub use time::{SimDuration, SimTime};

/// Which future-event-list implementation the engine was built with
/// (`legacy-queue` feature swaps the pre-slab queue back in), so bench
/// reports can record what they measured.
pub const QUEUE_IMPL: &str = if cfg!(feature = "legacy-queue") {
    "legacy"
} else {
    "slab"
};
