//! Measurement instruments used by every experiment.
//!
//! - [`Counter`]: monotone event counts.
//! - [`Summary`]: Welford mean/variance/min/max of observations.
//! - [`Histogram`]: fixed-width binned distribution with exact
//!   percentile interpolation for reporting latency distributions.
//! - [`TimeWeighted`]: time-average of a piecewise-constant signal
//!   (queue lengths, power draw, temperature).
//! - [`TimeSeries`]: (t, v) recording with per-month aggregation —
//!   Figure 4 of the paper is a monthly mean of a `TimeSeries`.
//! - [`MetricId`]: process-global metric-name interner backing the dense
//!   [`MetricRow`](crate::runner::MetricRow) representation.

mod counter;
mod histogram;
mod registry;
mod summary;
mod timeseries;
mod timeweighted;

pub use counter::Counter;
pub use histogram::Histogram;
pub use registry::{registry_len, registry_names, reintern_names, MetricId};
pub use summary::Summary;
pub use timeseries::{MonthlyAggregate, TimeSeries};
pub use timeweighted::TimeWeighted;
