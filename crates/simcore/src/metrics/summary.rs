//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max over observed values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    pub fn new() -> Self {
        Summary::default()
    }

    /// Record one observation. NaN observations are rejected loudly —
    /// silently absorbing NaN would corrupt every downstream statistic.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "Summary::observe(NaN)");
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (n-1 denominator); 0 when fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the ~95 % confidence interval of the mean
    /// (normal approximation; fine for the replication counts we use).
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * (self.sample_variance() / self.n as f64).sqrt()
    }
}

impl crate::snapshot::Snapshot for Summary {
    fn encode(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
    fn decode(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(Summary {
            n: r.take_u64()?,
            mean: r.take_f64()?,
            m2: r.take_f64()?,
            min: r.take_f64()?,
            max: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0)
            .collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.observe(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < 400 {
                a.observe(x);
            } else {
                b.observe(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.observe(1.0);
        s.observe(3.0);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let mut small = Summary::new();
        let mut large = Summary::new();
        for i in 0..10 {
            small.observe(i as f64);
        }
        for i in 0..10_000 {
            large.observe((i % 10) as f64);
        }
        assert!(large.ci95_halfwidth() < small.ci95_halfwidth());
    }

    #[test]
    #[should_panic]
    fn nan_is_rejected() {
        Summary::new().observe(f64::NAN);
    }
}
