//! Time-series recording with calendar aggregation.
//!
//! Figure 4 of the paper — mean room temperature per month from November
//! to May — is exactly a [`TimeSeries`] reduced by [`TimeSeries::monthly`].

use super::Summary;
use crate::time::{Calendar, SimTime};
use serde::{Deserialize, Serialize};

/// A recorded sequence of (time, value) samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

/// Aggregate of one calendar month of samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonthlyAggregate {
    /// Month index relative to the calendar epoch (0-based).
    pub rel_month: u32,
    /// Calendar month number as humans write it (1 = January … 12).
    pub month_number: u32,
    /// Abbreviated month name.
    pub month_name: &'static str,
    /// Statistics of the samples that fell in this month.
    pub stats: Summary,
}

impl TimeSeries {
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Record a sample. Samples must be pushed in non-decreasing time
    /// order (the engine guarantees this naturally).
    pub fn push(&mut self, t: SimTime, v: f64) {
        assert!(!v.is_nan(), "TimeSeries::push(NaN)");
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "TimeSeries: out-of-order sample");
        }
        self.times.push(t);
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Summary over the whole series.
    pub fn summary(&self) -> Summary {
        let mut s = Summary::new();
        for &v in &self.values {
            s.observe(v);
        }
        s
    }

    /// Group samples by calendar month (months that received no samples
    /// are omitted). Months are keyed by *relative* month index so a
    /// multi-year series yields more than 12 groups.
    pub fn monthly(&self, cal: Calendar) -> Vec<MonthlyAggregate> {
        let mut out: Vec<MonthlyAggregate> = Vec::new();
        for (t, v) in self.iter() {
            // Relative month including year wraps: derive from day index.
            let years = t.day_index().div_euclid(365) as u32;
            let m = cal.month_index(t);
            let rel = years * 12 + m.rel;
            match out.last_mut() {
                Some(last) if last.rel_month == rel => last.stats.observe(v),
                _ => {
                    let mut stats = Summary::new();
                    stats.observe(v);
                    out.push(MonthlyAggregate {
                        rel_month: rel,
                        month_number: m.number(),
                        month_name: m.name(),
                        stats,
                    });
                }
            }
        }
        out
    }

    /// Values resampled as daily means (day index, mean).
    pub fn daily_means(&self) -> Vec<(i64, f64)> {
        let mut out: Vec<(i64, Summary)> = Vec::new();
        for (t, v) in self.iter() {
            let d = t.day_index();
            match out.last_mut() {
                Some((day, s)) if *day == d => s.observe(v),
                _ => {
                    let mut s = Summary::new();
                    s.observe(v);
                    out.push((d, s));
                }
            }
        }
        out.into_iter().map(|(d, s)| (d, s.mean())).collect()
    }

    /// Export as CSV text (`time_s,value` rows with a header).
    pub fn to_csv(&self, value_name: &str) -> String {
        let mut s = String::with_capacity(self.len() * 16 + 16);
        s.push_str("time_s,");
        s.push_str(value_name);
        s.push('\n');
        for (t, v) in self.iter() {
            s.push_str(&format!("{:.6},{:.6}\n", t.as_secs_f64(), v));
        }
        s
    }
}

impl crate::snapshot::Snapshot for TimeSeries {
    fn encode(&self, w: &mut crate::snapshot::SnapshotWriter) {
        self.times.encode(w);
        self.values.encode(w);
    }
    fn decode(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let times = Vec::<SimTime>::decode(r)?;
        let values = Vec::<f64>::decode(r)?;
        if times.len() != values.len() {
            return Err(SnapshotError::Corrupt(format!(
                "time series: {} times vs {} values",
                times.len(),
                values.len()
            )));
        }
        Ok(TimeSeries { times, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn monthly_grouping_november_epoch() {
        let mut ts = TimeSeries::new();
        // One sample per day for 120 days from Nov 1.
        for d in 0..120 {
            ts.push(
                SimTime::ZERO + SimDuration::from_days(d) + SimDuration::HOUR,
                d as f64,
            );
        }
        let months = ts.monthly(Calendar::NOVEMBER_EPOCH);
        assert_eq!(months[0].month_name, "Nov");
        assert_eq!(months[0].stats.count(), 30);
        assert_eq!(months[1].month_name, "Dec");
        assert_eq!(months[1].stats.count(), 31);
        assert_eq!(months[2].month_name, "Jan");
        assert_eq!(months[2].stats.count(), 31);
        assert_eq!(months[3].month_name, "Feb");
        assert_eq!(months[3].stats.count(), 28);
        // Mean of Nov samples is mean of 0..30 = 14.5.
        assert!((months[0].stats.mean() - 14.5).abs() < 1e-12);
    }

    #[test]
    fn monthly_handles_multi_year() {
        let mut ts = TimeSeries::new();
        for d in 0..(365 + 40) {
            ts.push(SimTime::ZERO + SimDuration::from_days(d), 1.0);
        }
        let months = ts.monthly(Calendar::JANUARY_EPOCH);
        assert_eq!(months.len(), 14); // 12 + Jan + Feb of year 2
        assert_eq!(months[12].month_name, "Jan");
        assert_eq!(months[12].rel_month, 12);
    }

    #[test]
    fn daily_means() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(20), 3.0);
        ts.push(SimTime::ZERO + SimDuration::from_days(1), 10.0);
        let days = ts.daily_means();
        assert_eq!(days, vec![(0, 2.0), (1, 10.0)]);
    }

    #[test]
    fn csv_export() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 2.5);
        let csv = ts.to_csv("temp_c");
        assert!(csv.starts_with("time_s,temp_c\n"));
        assert!(csv.contains("1.000000,2.500000"));
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(5), 1.0);
    }
}
