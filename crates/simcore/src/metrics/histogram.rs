//! Fixed-bin histogram with percentile interpolation.

use super::Summary;
use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins plus under/overflow
/// buckets; also keeps a [`Summary`] so exact mean/min/max survive binning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `nbins` equal bins.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// A histogram suited to latencies in milliseconds: 0..`max_ms`.
    pub fn latency_ms(max_ms: f64) -> Self {
        Histogram::new(0.0, max_ms, 1_000)
    }

    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "Histogram::observe(NaN)");
        self.summary.observe(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    pub fn min(&self) -> f64 {
        self.summary.min()
    }

    pub fn max(&self) -> f64 {
        self.summary.max()
    }

    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Fraction of observations that fell outside `[lo, hi)`.
    pub fn outlier_fraction(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        (self.underflow + self.overflow) as f64 / self.count() as f64
    }

    /// Approximate quantile `q ∈ [0, 1]` with linear interpolation within
    /// the containing bin. Underflow counts as `lo`, overflow as `hi`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = q * n as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return self.summary.min().max(self.lo.min(self.summary.min()));
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let frac = (target - acc) / c as f64;
                return self.lo + w * (i as f64 + frac);
            }
            acc = next;
        }
        self.summary.max().min(self.hi)
    }

    /// Convenience percentiles.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.summary.merge(&other.summary);
    }

    /// Bin edges and counts, for export.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
    }

    /// Coalesce the fine bins into at most `max_buckets` *cumulative*
    /// `(le, count)` pairs — the shape Prometheus histograms expose.
    /// Underflow counts toward every bucket (observations ≤ `lo` are ≤
    /// any upper bound); overflow only reaches the implicit `+Inf`
    /// bucket the exporter adds from `count()`.
    pub fn cumulative_buckets(&self, max_buckets: usize) -> Vec<(f64, u64)> {
        assert!(max_buckets > 0);
        let group = self.bins.len().div_ceil(max_buckets);
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = Vec::with_capacity(max_buckets);
        let mut cum = self.underflow;
        for (i, chunk) in self.bins.chunks(group).enumerate() {
            cum += chunk.iter().sum::<u64>();
            let upper_bin = (i * group + chunk.len()) as f64;
            out.push((self.lo + w * upper_bin, cum));
        }
        out
    }
}

impl crate::snapshot::Snapshot for Histogram {
    fn encode(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_f64(self.lo);
        w.put_f64(self.hi);
        self.bins.encode(w);
        w.put_u64(self.underflow);
        w.put_u64(self.overflow);
        self.summary.encode(w);
    }
    fn decode(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let lo = r.take_f64()?;
        let hi = r.take_f64()?;
        let bins = Vec::<u64>::decode(r)?;
        // Re-check the constructor invariants so a decoded histogram can
        // never panic later in `observe`/`quantile`.
        if hi <= lo || hi.is_nan() || lo.is_nan() || bins.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "histogram range [{lo}, {hi}) with {} bins",
                bins.len()
            )));
        }
        Ok(Histogram {
            lo,
            hi,
            bins,
            underflow: r.take_u64()?,
            overflow: r.take_u64()?,
            summary: Summary::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..10_000 {
            h.observe((i % 100) as f64 + 0.5);
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.p50() - 50.0).abs() < 1.5, "p50={}", h.p50());
        assert!((h.p95() - 95.0).abs() < 1.5, "p95={}", h.p95());
        assert!((h.quantile(0.0) - 0.0).abs() < 1.0);
        assert!((h.quantile(1.0) - 100.0).abs() < 1.0);
    }

    #[test]
    fn mean_is_exact_despite_binning() {
        let mut h = Histogram::new(0.0, 10.0, 2); // deliberately coarse
        for x in [1.0, 2.0, 3.0, 9.0] {
            h.observe(x);
        }
        assert!((h.mean() - 3.75).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 9.0);
    }

    #[test]
    fn overflow_and_underflow_tracked() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.observe(-5.0);
        h.observe(15.0);
        h.observe(5.0);
        assert!((h.outlier_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // p99 of data dominated by overflow clamps to hi.
        let q = h.quantile(0.99);
        assert!((5.0..=15.0).contains(&q));
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = Histogram::new(0.0, 100.0, 50);
        let mut b = Histogram::new(0.0, 100.0, 50);
        let mut whole = Histogram::new(0.0, 100.0, 50);
        for i in 0..1000 {
            let x = (i * 37 % 100) as f64;
            whole.observe(x);
            if i % 2 == 0 {
                a.observe(x);
            } else {
                b.observe(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.p50() - whole.p50()).abs() < 1e-9);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
    }

    #[test]
    fn cumulative_buckets_coalesce_and_accumulate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        h.observe(-1.0); // underflow: ≤ every bound
        h.observe(5.0);
        h.observe(55.0);
        h.observe(200.0); // overflow: only in the implicit +Inf
        let b = h.cumulative_buckets(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], (10.0, 2), "underflow + the 5.0 sample");
        assert_eq!(b[5], (60.0, 3));
        assert_eq!(b[9].1, 3, "overflow is not in any finite bucket");
        assert!(b.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        // Coarser than the bin count still covers the range.
        let one = h.cumulative_buckets(1);
        assert_eq!(one, vec![(100.0, 3)]);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::latency_ms(1000.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.outlier_fraction(), 0.0);
    }

    #[test]
    fn bins_iterator_covers_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.observe(3.0);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0].0, 0.0);
        assert_eq!(bins[4].1, 10.0);
        assert_eq!(bins[1].2, 1); // 3.0 falls in [2,4)
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }
}
