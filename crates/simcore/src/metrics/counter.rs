//! Monotone counters.

use serde::{Deserialize, Serialize};

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    pub fn get(&self) -> u64 {
        self.value
    }

    /// Fraction of this counter relative to `total` (0 if total is 0).
    pub fn rate_of(&self, total: &Counter) -> f64 {
        if total.value == 0 {
            0.0
        } else {
            self.value as f64 / total.value as f64
        }
    }
}

impl crate::snapshot::Snapshot for Counter {
    fn encode(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.value);
    }
    fn decode(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(Counter {
            value: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn rate_of_total() {
        let mut miss = Counter::new();
        let mut total = Counter::new();
        for i in 0..10 {
            total.inc();
            if i % 4 == 0 {
                miss.inc();
            }
        }
        assert!((miss.rate_of(&total) - 0.3).abs() < 1e-12);
        assert_eq!(Counter::new().rate_of(&Counter::new()), 0.0);
    }
}
