//! Time-weighted averaging of piecewise-constant signals.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Time-average of a piecewise-constant signal (queue length, power draw,
/// number of busy cores, …). Call [`TimeWeighted::set`] whenever the
/// signal changes; the instrument integrates value×time between changes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64, // value × seconds
    weighted_start: SimTime,
    max: f64,
    min: f64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            value: v0,
            last_change: t0,
            integral: 0.0,
            weighted_start: t0,
            max: v0,
            min: v0,
        }
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Change the signal to `v` at time `t`. `t` must not precede the
    /// previous change.
    pub fn set(&mut self, t: SimTime, v: f64) {
        assert!(!v.is_nan(), "TimeWeighted::set(NaN)");
        assert!(t >= self.last_change, "TimeWeighted: time went backwards");
        self.integral += self.value * (t - self.last_change).as_secs_f64();
        self.value = v;
        self.last_change = t;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Add `delta` to the signal at time `t` (convenience for counters
    /// such as busy-core counts).
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Time-averaged value over `[start, now]`; `now` must be at or after
    /// the last change.
    pub fn average(&self, now: SimTime) -> f64 {
        assert!(now >= self.last_change);
        let total = (now - self.weighted_start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * (now - self.last_change).as_secs_f64();
        integral / total
    }

    /// Integral of the signal over `[start, now]` in value·seconds —
    /// e.g. joules if the signal is watts.
    pub fn integral(&self, now: SimTime) -> f64 {
        assert!(now >= self.last_change);
        self.integral + self.value * (now - self.last_change).as_secs_f64()
    }

    /// Integral expressed in value·hours (e.g. Wh if the signal is W).
    pub fn integral_hours(&self, now: SimTime) -> f64 {
        self.integral(now) / 3600.0
    }

    pub fn max_seen(&self) -> f64 {
        self.max
    }

    pub fn min_seen(&self) -> f64 {
        self.min
    }

    /// Elapsed observation window at `now`.
    pub fn window(&self, now: SimTime) -> SimDuration {
        now - self.weighted_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn piecewise_average() {
        let mut g = TimeWeighted::new(t(0), 0.0);
        g.set(t(10), 4.0); // 0 for 10 s
        g.set(t(20), 2.0); // 4 for 10 s
                           // now at t=30: 2 for 10 s → avg = (0*10 + 4*10 + 2*10)/30 = 2.0
        assert!((g.average(t(30)) - 2.0).abs() < 1e-12);
        assert_eq!(g.current(), 2.0);
        assert_eq!(g.max_seen(), 4.0);
        assert_eq!(g.min_seen(), 0.0);
    }

    #[test]
    fn integral_in_joules_and_wh() {
        // 500 W for one hour = 500 Wh = 1.8 MJ.
        let mut g = TimeWeighted::new(t(0), 500.0);
        let end = SimTime::ZERO + SimDuration::HOUR;
        assert!((g.integral(end) - 1_800_000.0).abs() < 1e-6);
        assert!((g.integral_hours(end) - 500.0).abs() < 1e-9);
        g.set(end, 0.0);
        let end2 = end + SimDuration::HOUR;
        assert!((g.integral_hours(end2) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn add_accumulates() {
        let mut busy = TimeWeighted::new(t(0), 0.0);
        busy.add(t(0), 1.0);
        busy.add(t(5), 1.0);
        busy.add(t(10), -1.0);
        // [0,5): 1, [5,10): 2, [10,20): 1 → avg over 20 s = (5+10+10)/20 = 1.25
        assert!((busy.average(t(20)) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn zero_window_returns_current() {
        let g = TimeWeighted::new(t(5), 7.0);
        assert_eq!(g.average(t(5)), 7.0);
    }

    #[test]
    #[should_panic]
    fn backwards_time_panics() {
        let mut g = TimeWeighted::new(t(10), 0.0);
        g.set(t(5), 1.0);
    }
}
