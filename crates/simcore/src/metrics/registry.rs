//! Global metric-name interner.
//!
//! Experiment hot loops report the same handful of metric names millions
//! of times; hashing and cloning `String` keys per replication row was a
//! measurable cost. [`MetricId::intern`] maps each distinct name to a
//! small dense index exactly once, so a metric row can be a plain
//! `Vec<f64>` and per-report cost drops to an array store.
//!
//! The registry is process-global and append-only: ids are stable for
//! the life of the process, and interned names are leaked (bounded by
//! the number of distinct metric names an experiment defines, a few
//! dozen). Interning is thread-safe — replications interning from rayon
//! workers race only on the first occurrence of a name.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Dense handle for an interned metric name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl MetricId {
    /// Intern `name`, returning its stable id. O(1) amortised; the read
    /// path (already-known name) takes only a shared lock.
    pub fn intern(name: &str) -> MetricId {
        {
            let r = interner().read().unwrap();
            if let Some(&ix) = r.by_name.get(name) {
                return MetricId(ix);
            }
        }
        let mut w = interner().write().unwrap();
        // Double-check: another thread may have interned it between locks.
        if let Some(&ix) = w.by_name.get(name) {
            return MetricId(ix);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let ix = u32::try_from(w.names.len()).expect("metric registry overflow");
        w.names.push(leaked);
        w.by_name.insert(leaked, ix);
        MetricId(ix)
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        interner().read().unwrap().names[self.0 as usize]
    }

    /// Dense index for direct `Vec` addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`index`](Self::index), for iterating dense rows. The
    /// registry is append-only, so any index below [`registry_len`] is a
    /// valid, stable id.
    pub(crate) fn from_index(ix: usize) -> MetricId {
        debug_assert!(ix < registry_len(), "index beyond registry");
        MetricId(ix as u32)
    }
}

/// Number of names interned so far (upper bound for row allocation).
pub fn registry_len() -> usize {
    interner().read().unwrap().names.len()
}

/// All interned names in id order — the checkpointable image of the
/// registry (the registry is process-global, so snapshots carry the name
/// list rather than the ids themselves).
pub fn registry_names() -> Vec<String> {
    interner()
        .read()
        .unwrap()
        .names
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Re-intern a checkpointed name list. In a fresh process this replays
/// the exact id assignment; in a process that already interned other
/// names, ids may differ but every name still resolves — which is safe
/// because snapshots never store raw [`MetricId`] values.
pub fn reintern_names<S: AsRef<str>>(names: &[S]) {
    for n in names {
        MetricId::intern(n.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = MetricId::intern("registry-test-a");
        let b = MetricId::intern("registry-test-a");
        assert_eq!(a, b);
        assert_eq!(a.name(), "registry-test-a");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = MetricId::intern("registry-test-x");
        let b = MetricId::intern("registry-test-y");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<MetricId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| MetricId::intern("registry-test-race")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
