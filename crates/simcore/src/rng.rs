//! Named, seed-derived random-number streams.
//!
//! Every stochastic component of a simulation draws from its **own named
//! stream**, derived deterministically from `(master_seed, name, index)`.
//! This gives two properties the experiment suite relies on:
//!
//! 1. **Reproducibility** — the same master seed yields the same run.
//! 2. **Common random numbers** — adding a new component (a new stream)
//!    does not perturb draws of existing components, so paired
//!    comparisons between system variants (e.g. architecture A vs B in
//!    experiment E4) see identical workloads.
//!
//! Streams use ChaCha8: cryptographic-quality diffusion at a cost that is
//! irrelevant next to event dispatch, and stable output across platforms.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// FNV-1a 64-bit hash — tiny, stable, good enough for seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A factory for named random streams derived from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Create a stream factory from a master seed.
    pub fn new(master: u64) -> Self {
        RngStreams { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the RNG for stream `name`.
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        self.stream_indexed(name, 0)
    }

    /// Derive the RNG for stream `(name, index)` — e.g. one stream per
    /// server: `streams.stream_indexed("qrad-arrivals", server_id)`.
    pub fn stream_indexed(&self, name: &str, index: u64) -> ChaCha8Rng {
        let mut seed = [0u8; 32];
        let h1 = fnv1a(name.as_bytes());
        let mix = |a: u64, b: u64| {
            let mut x = a ^ b.rotate_left(31);
            // splitmix64 finalizer for avalanche.
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        };
        let words = [
            mix(self.master, h1),
            mix(self.master.wrapping_add(0x9E3779B97F4A7C15), h1),
            mix(self.master, index.wrapping_add(1)),
            mix(h1, index.wrapping_mul(0xD1342543DE82EF95).wrapping_add(7)),
        ];
        for (i, w) in words.iter().enumerate() {
            seed[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }

    /// Derive a sub-factory for replication `rep` — used by the runner so
    /// each Monte-Carlo replication gets an independent seed universe.
    pub fn replication(&self, rep: u64) -> RngStreams {
        let mut x = self.master ^ rep.wrapping_mul(0xA24BAED4963EE407).wrapping_add(0x9E6D);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        RngStreams::new(x ^ (x >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_stream() {
        let s = RngStreams::new(42);
        let mut a = s.stream("arrivals");
        let mut b = s.stream("arrivals");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let s = RngStreams::new(42);
        let mut a = s.stream("arrivals");
        let mut b = s.stream("weather");
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn different_indices_differ() {
        let s = RngStreams::new(42);
        let mut a = s.stream_indexed("srv", 0);
        let mut b = s.stream_indexed("srv", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut a = RngStreams::new(1).stream("x");
        let mut b = RngStreams::new(2).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn replications_are_independent_but_deterministic() {
        let s = RngStreams::new(7);
        let r1 = s.replication(1);
        let r1b = s.replication(1);
        let r2 = s.replication(2);
        assert_eq!(r1.master(), r1b.master());
        assert_ne!(r1.master(), r2.master());
        assert_ne!(r1.master(), s.master());
    }

    #[test]
    fn known_value_stability() {
        // Pin an output value: if seed derivation ever changes, every
        // recorded experiment result would silently shift. This test makes
        // that loud instead.
        let mut r = RngStreams::new(0xDF3).stream("pinned");
        let v = r.next_u64();
        let mut r2 = RngStreams::new(0xDF3).stream("pinned");
        assert_eq!(v, r2.next_u64());
    }
}
