//! Distribution samplers.
//!
//! Implemented locally (rather than pulling `rand_distr`) so that the
//! exact sampling algorithms — and therefore every recorded experiment
//! number — are pinned inside this repository. All samplers take a
//! generic [`rand::Rng`] so they work with the ChaCha streams from
//! [`crate::rng`].

use rand::Rng;

/// Sample from Exponential(rate). Mean is `1/rate`.
///
/// Panics if `rate <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    // Inverse transform; 1-u in (0,1] avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

/// Sample from Normal(mean, std) via Box–Muller (single value; the
/// second value is discarded for simplicity and statelessness).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0, "normal std must be non-negative, got {std}");
    if std == 0.0 {
        return mean;
    }
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return mean + std * z;
    }
}

/// Sample from LogNormal with the given parameters of the underlying
/// normal (`mu`, `sigma`). Mean of the lognormal is `exp(mu + sigma²/2)`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// LogNormal parameterised by its own mean and coefficient of variation
/// (cv = std/mean). Convenient for "jobs average 40 min, cv 1.2".
pub fn lognormal_mean_cv<R: Rng + ?Sized>(rng: &mut R, mean: f64, cv: f64) -> f64 {
    assert!(mean > 0.0 && cv >= 0.0);
    if cv == 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    lognormal(rng, mu, sigma2.sqrt())
}

/// Sample from Poisson(lambda) — Knuth's method for small lambda,
/// normal approximation above 256 (error negligible at that size).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 256.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.max(0.0).round() as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample from Pareto(scale, shape). Heavy-tailed job sizes.
///
/// Mean exists only for `shape > 1` and is `scale * shape / (shape - 1)`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, shape: f64) -> f64 {
    assert!(scale > 0.0 && shape > 0.0);
    let u: f64 = rng.gen::<f64>();
    scale / (1.0 - u).powf(1.0 / shape)
}

/// Sample from Weibull(scale, shape). Used for component lifetimes in the
/// processor-aging model.
pub fn weibull<R: Rng + ?Sized>(rng: &mut R, scale: f64, shape: f64) -> f64 {
    assert!(scale > 0.0 && shape > 0.0);
    let u: f64 = rng.gen::<f64>();
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Uniform in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi);
    if lo == hi {
        return lo;
    }
    rng.gen_range(lo..hi)
}

/// Bernoulli trial with probability `p`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    rng.gen::<f64>() < p
}

/// Sample an index from a discrete distribution given by `weights`
/// (not necessarily normalised). Panics on empty or all-zero weights.
pub fn discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "discrete weights must sum to a positive value");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w >= 0.0, "negative weight at index {i}");
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// One step of an Ornstein–Uhlenbeck process: mean-reverting noise used
/// by the synthetic weather generator.
///
/// `x` current value, `mean` long-run mean, `theta` reversion rate (1/s),
/// `sigma` volatility, `dt` time step in the same unit as `1/theta`.
pub fn ou_step<R: Rng + ?Sized>(
    rng: &mut R,
    x: f64,
    mean: f64,
    theta: f64,
    sigma: f64,
    dt: f64,
) -> f64 {
    assert!(theta >= 0.0 && sigma >= 0.0 && dt >= 0.0);
    let decay = (-theta * dt).exp();
    // Exact discretisation of the OU SDE over dt.
    let var = if theta > 0.0 {
        sigma * sigma / (2.0 * theta) * (1.0 - decay * decay)
    } else {
        sigma * sigma * dt
    };
    mean + (x - mean) * decay + normal(rng, 0.0, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStreams;

    fn rng() -> rand_chacha::ChaCha8Rng {
        RngStreams::new(1234).stream("dist-tests")
    }

    fn mean_of(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| exponential(&mut r, 0.5)).collect();
        let m = mean_of(&xs);
        assert!((m - 2.0).abs() < 0.05, "mean {m} should be ~2.0");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments_match() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 3.0).abs() < 0.1);
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 5.0, 0.0), 5.0);
    }

    #[test]
    fn lognormal_mean_cv_calibration() {
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| lognormal_mean_cv(&mut r, 40.0, 1.2))
            .collect();
        let m = mean_of(&xs);
        assert!((m - 40.0).abs() / 40.0 < 0.05, "mean {m} should be ~40");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_small_lambda() {
        let mut r = rng();
        let xs: Vec<u64> = (0..50_000).map(|_| poisson(&mut r, 3.0)).collect();
        let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.05);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = rng();
        let xs: Vec<u64> = (0..20_000).map(|_| poisson(&mut r, 1000.0)).collect();
        let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((m - 1000.0).abs() < 2.0);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| pareto(&mut r, 1.0, 2.0)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        let m = mean_of(&xs);
        // mean = shape/(shape-1) = 2.0
        assert!((m - 2.0).abs() < 0.2, "mean {m} should be ~2.0");
    }

    #[test]
    fn weibull_mean_shape_one_is_exponential() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| weibull(&mut r, 5.0, 1.0)).collect();
        let m = mean_of(&xs);
        assert!((m - 5.0).abs() < 0.15);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let n = (0..100_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        assert!((n as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..90_000 {
            counts[discrete(&mut r, &[1.0, 2.0, 6.0])] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 1.0).abs() < 0.15);
        assert!((counts[1] as f64 / 10_000.0 - 2.0).abs() < 0.2);
        assert!((counts[2] as f64 / 10_000.0 - 6.0).abs() < 0.3);
    }

    #[test]
    fn discrete_single_weight() {
        let mut r = rng();
        assert_eq!(discrete(&mut r, &[3.0]), 0);
    }

    #[test]
    fn ou_process_reverts_to_mean() {
        let mut r = rng();
        let mut x = 50.0; // far from mean
        for _ in 0..1_000 {
            x = ou_step(&mut r, x, 10.0, 0.5, 1.0, 1.0);
        }
        // After many steps the process should hover near the mean with
        // stationary std sigma/sqrt(2 theta) = 1.0.
        assert!((x - 10.0).abs() < 6.0, "x={x} should be near 10");
    }

    #[test]
    fn ou_zero_sigma_is_deterministic_decay() {
        let mut r = rng();
        let x = ou_step(&mut r, 20.0, 10.0, 1.0, 0.0, 1.0);
        let expected = 10.0 + 10.0 * (-1.0f64).exp();
        assert!((x - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let mut r = rng();
        exponential(&mut r, 0.0);
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_all_zero() {
        let mut r = rng();
        discrete(&mut r, &[0.0, 0.0]);
    }
}
