//! Monte-Carlo replication runner.
//!
//! Experiments run `n` independent replications, each a fully
//! deterministic simulation seeded from `master.replication(i)`, executed
//! in parallel with rayon (`par_iter` over independent work — the pattern
//! the session's hpc-parallel guides prescribe). Results are reduced into
//! per-metric [`Summary`]s with 95 % confidence intervals.
//!
//! Metric rows are dense: names are interned once into [`MetricId`]s and
//! each row is a `Vec<f64>` indexed by id, so reporting a metric is an
//! array store rather than a `BTreeMap<String, f64>` insert. The
//! name-keyed [`Aggregate`] API is unchanged.

use crate::metrics::{registry_len, MetricId, Summary};
use crate::rng::RngStreams;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// The outcome of one replication: scalar metrics in a dense id-indexed
/// vector (absent metrics tracked explicitly, so 0.0 stays a valid value).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRow {
    values: Vec<f64>,
    present: Vec<bool>,
}

impl MetricRow {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for every metric interned so far.
    pub fn with_registry_capacity() -> Self {
        let n = registry_len();
        MetricRow {
            values: vec![0.0; n],
            present: vec![false; n],
        }
    }

    /// Set a metric by id (the hot path: an array store).
    pub fn set(&mut self, id: MetricId, value: f64) {
        let ix = id.index();
        if ix >= self.values.len() {
            self.values.resize(ix + 1, 0.0);
            self.present.resize(ix + 1, false);
        }
        self.values[ix] = value;
        self.present[ix] = true;
    }

    /// Set a metric by name (interns on first use).
    pub fn insert(&mut self, name: &str, value: f64) {
        self.set(MetricId::intern(name), value);
    }

    /// Value of a metric, if this row reported it.
    pub fn get(&self, id: MetricId) -> Option<f64> {
        let ix = id.index();
        (ix < self.values.len() && self.present[ix]).then(|| self.values[ix])
    }

    /// Value by name, if this row reported it.
    pub fn get_name(&self, name: &str) -> Option<f64> {
        self.get(MetricId::intern(name))
    }

    /// Number of metrics reported in this row.
    pub fn len(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }

    pub fn is_empty(&self) -> bool {
        !self.present.iter().any(|&p| p)
    }

    /// Iterate `(id, value)` over reported metrics, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, f64)> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .map(move |(ix, _)| (MetricId::from_index(ix), self.values[ix]))
    }
}

/// Aggregated outcome across replications.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Per-metric summaries across replications, keyed by name for
    /// deterministic (alphabetical) reporting order.
    pub metrics: BTreeMap<String, Summary>,
    /// Number of replications.
    pub replications: usize,
}

impl Aggregate {
    /// Mean of a metric across replications. Panics if absent — a typo'd
    /// metric name should fail an experiment loudly.
    pub fn mean(&self, name: &str) -> f64 {
        self.get(name).mean()
    }

    /// 95 % CI half-width of a metric.
    pub fn ci95(&self, name: &str) -> f64 {
        self.get(name).ci95_halfwidth()
    }

    /// Full summary of a metric.
    pub fn get(&self, name: &str) -> &Summary {
        self.metrics
            .get(name)
            .unwrap_or_else(|| panic!("metric `{name}` was not reported by replications"))
    }

    /// All metric names in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(|s| s.as_str())
    }
}

/// Run `n` replications of `sim` in parallel and aggregate their metrics.
///
/// `sim` receives the replication index and a derived [`RngStreams`]; it
/// must be deterministic given those inputs.
pub fn replicate<F>(master: RngStreams, n: usize, sim: F) -> Aggregate
where
    F: Fn(usize, RngStreams) -> MetricRow + Sync,
{
    assert!(n > 0, "need at least one replication");
    let rows: Vec<MetricRow> = (0..n)
        .into_par_iter()
        .map(|i| sim(i, master.replication(i as u64)))
        .collect();
    aggregate(rows)
}

/// Sequential variant, for debugging or when a simulation is itself
/// internally parallel.
pub fn replicate_seq<F>(master: RngStreams, n: usize, mut sim: F) -> Aggregate
where
    F: FnMut(usize, RngStreams) -> MetricRow,
{
    assert!(n > 0, "need at least one replication");
    let rows: Vec<MetricRow> = (0..n)
        .map(|i| sim(i, master.replication(i as u64)))
        .collect();
    aggregate(rows)
}

fn aggregate(rows: Vec<MetricRow>) -> Aggregate {
    let n = rows.len();
    // Dense reduction indexed by MetricId; converted to names at the end.
    let width = rows.iter().map(|r| r.present.len()).max().unwrap_or(0);
    let mut summaries: Vec<Summary> = vec![Summary::default(); width];
    for row in &rows {
        for (ix, &p) in row.present.iter().enumerate() {
            if p {
                summaries[ix].observe(row.values[ix]);
            }
        }
    }
    let mut metrics: BTreeMap<String, Summary> = BTreeMap::new();
    for (ix, s) in summaries.into_iter().enumerate() {
        if s.count() == 0 {
            continue;
        }
        metrics.insert(MetricId::from_index(ix).name().to_string(), s);
    }
    // Guard against replications reporting different metric sets — a
    // frequent source of silently-wrong aggregate statistics.
    for (k, s) in &metrics {
        assert!(
            s.count() as usize == n,
            "metric `{k}` reported by {}/{n} replications",
            s.count()
        );
    }
    Aggregate {
        metrics,
        replications: n,
    }
}

/// Convenience builder for a [`MetricRow`].
pub fn row(pairs: &[(&str, f64)]) -> MetricRow {
    let mut r = MetricRow::new();
    for (k, v) in pairs {
        r.insert(k, *v);
    }
    r
}

/// Run a deterministic parameter sweep in parallel: one simulation per
/// point, each seeded from `master.replication(index)` so the sweep is
/// reproducible and insensitive to rayon's scheduling order. Results
/// come back in input order.
///
/// ```
/// use simcore::runner::sweep;
/// use simcore::RngStreams;
///
/// let loads = [0.5, 1.0, 2.0];
/// let out = sweep(RngStreams::new(7), &loads, |&load, _streams| load * 10.0);
/// assert_eq!(out, vec![5.0, 10.0, 20.0]);
/// ```
pub fn sweep<P, R, F>(master: RngStreams, points: &[P], sim: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, RngStreams) -> R + Sync,
{
    points
        .par_iter()
        .enumerate()
        .map(|(i, p)| sim(p, master.replication(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn parallel_equals_sequential() {
        let master = RngStreams::new(99);
        let sim = |_i: usize, s: RngStreams| {
            let mut r = s.stream("x");
            row(&[("v", r.gen::<f64>())])
        };
        let par = replicate(master, 64, sim);
        let seq = replicate_seq(master, 64, sim);
        assert_eq!(par.mean("v"), seq.mean("v"));
        assert_eq!(par.ci95("v"), seq.ci95("v"));
    }

    #[test]
    fn replications_differ() {
        let agg = replicate(RngStreams::new(7), 16, |_i, s| {
            let mut r = s.stream("x");
            row(&[("v", r.gen::<f64>())])
        });
        assert!(
            agg.get("v").std() > 0.0,
            "replications must not be identical"
        );
        assert_eq!(agg.replications, 16);
    }

    #[test]
    fn deterministic_given_index() {
        let agg = replicate(RngStreams::new(7), 8, |i, _s| row(&[("i", i as f64)]));
        assert!((agg.mean("i") - 3.5).abs() < 1e-12);
        assert_eq!(agg.get("i").min(), 0.0);
        assert_eq!(agg.get("i").max(), 7.0);
    }

    #[test]
    #[should_panic]
    fn inconsistent_metric_sets_panic() {
        let _ = replicate_seq(RngStreams::new(1), 4, |i, _s| {
            if i == 2 {
                row(&[("a", 1.0), ("extra", 2.0)])
            } else {
                row(&[("a", 1.0)])
            }
        });
    }

    #[test]
    #[should_panic]
    fn missing_metric_panics_on_lookup() {
        let agg = replicate_seq(RngStreams::new(1), 2, |_i, _s| row(&[("a", 1.0)]));
        let _ = agg.mean("b");
    }

    #[test]
    fn row_roundtrips_by_id_and_name() {
        let r = row(&[("row-rt-a", 1.5), ("row-rt-b", 0.0)]);
        assert_eq!(r.get_name("row-rt-a"), Some(1.5));
        assert_eq!(r.get_name("row-rt-b"), Some(0.0), "0.0 is a real value");
        assert_eq!(r.get_name("row-rt-absent"), None);
        assert_eq!(r.len(), 2);
        let items: Vec<_> = r.iter().map(|(id, v)| (id.name(), v)).collect();
        assert!(items.contains(&("row-rt-a", 1.5)));
        assert!(items.contains(&("row-rt-b", 0.0)));
    }

    /// `replicate()` aggregates must not depend on how many workers the
    /// thread pool runs: every replication is seeded from its index, and
    /// results are reduced in input order regardless of completion order.
    #[test]
    fn aggregates_are_identical_across_worker_counts() {
        let sim = |i: usize, s: RngStreams| {
            let mut r = s.stream("load");
            row(&[("v", r.gen::<f64>()), ("u", r.gen::<f64>() + i as f64)])
        };
        let fingerprint = |a: &Aggregate| {
            let mut bits = Vec::new();
            for name in ["v", "u"] {
                let s = a.get(name);
                bits.push(s.mean().to_bits());
                bits.push(s.std().to_bits());
                bits.push(s.min().to_bits());
                bits.push(s.max().to_bits());
                bits.push(s.count());
            }
            bits
        };
        rayon::set_num_threads(1);
        let reference = fingerprint(&replicate(RngStreams::new(2024), 24, sim));
        for threads in [2, 3, 8] {
            rayon::set_num_threads(threads);
            let agg = replicate(RngStreams::new(2024), 24, sim);
            assert_eq!(
                fingerprint(&agg),
                reference,
                "aggregate changed with {threads} worker threads"
            );
        }
        rayon::set_num_threads(0); // restore auto for the rest of the suite
    }

    /// Regression guard for the dense-row change: `replicate()` must
    /// aggregate to exactly what a name-keyed `BTreeMap` reduction of the
    /// same rows produces (the pre-`MetricId` representation).
    #[test]
    fn aggregate_matches_name_keyed_reference() {
        let master = RngStreams::new(4242);
        let sim = |i: usize, s: RngStreams| -> Vec<(&'static str, f64)> {
            let mut r = s.stream("load");
            vec![
                ("util", r.gen::<f64>()),
                ("energy_kwh", 100.0 * r.gen::<f64>() + i as f64),
                ("jobs", (i * 3) as f64),
            ]
        };
        let n = 32;

        // Reference: plain name-keyed reduction, as `aggregate` was
        // implemented before interning.
        let mut reference: BTreeMap<String, Summary> = BTreeMap::new();
        for i in 0..n {
            for (k, v) in sim(i, master.replication(i as u64)) {
                reference.entry(k.to_string()).or_default().observe(v);
            }
        }

        let agg = replicate(master, n, |i, s| {
            let mut r = MetricRow::new();
            for (k, v) in sim(i, s) {
                r.insert(k, v);
            }
            r
        });

        assert_eq!(
            agg.metrics.keys().collect::<Vec<_>>(),
            reference.keys().collect::<Vec<_>>()
        );
        for (k, s) in &reference {
            let a = agg.get(k);
            assert_eq!(a.count(), s.count(), "{k} count");
            assert_eq!(a.mean(), s.mean(), "{k} mean must be bit-identical");
            assert_eq!(a.min(), s.min(), "{k} min");
            assert_eq!(a.max(), s.max(), "{k} max");
            assert_eq!(
                a.ci95_halfwidth(),
                s.ci95_halfwidth(),
                "{k} ci95 must be bit-identical"
            );
        }
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn sweep_preserves_order_and_determinism() {
        let master = RngStreams::new(31);
        let points: Vec<u64> = (0..64).collect();
        let run = |p: &u64, s: RngStreams| {
            let mut r = s.stream("x");
            (*p, r.gen::<u64>())
        };
        let a = sweep(master, &points, run);
        let b = sweep(master, &points, run);
        assert_eq!(a, b, "two sweeps must be identical");
        assert!(a.iter().enumerate().all(|(i, (p, _))| *p == i as u64));
        // Different points draw different randomness.
        assert_ne!(a[0].1, a[1].1);
    }
}
