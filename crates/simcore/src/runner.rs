//! Monte-Carlo replication runner.
//!
//! Experiments run `n` independent replications, each a fully
//! deterministic simulation seeded from `master.replication(i)`, executed
//! in parallel with rayon (`par_iter` over independent work — the pattern
//! the session's hpc-parallel guides prescribe). Results are reduced into
//! per-metric [`Summary`]s with 95 % confidence intervals.

use crate::metrics::Summary;
use crate::rng::RngStreams;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// The outcome of one replication: named scalar metrics.
pub type MetricRow = BTreeMap<String, f64>;

/// Aggregated outcome across replications.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Per-metric summaries across replications.
    pub metrics: BTreeMap<String, Summary>,
    /// Number of replications.
    pub replications: usize,
}

impl Aggregate {
    /// Mean of a metric across replications. Panics if absent — a typo'd
    /// metric name should fail an experiment loudly.
    pub fn mean(&self, name: &str) -> f64 {
        self.get(name).mean()
    }

    /// 95 % CI half-width of a metric.
    pub fn ci95(&self, name: &str) -> f64 {
        self.get(name).ci95_halfwidth()
    }

    /// Full summary of a metric.
    pub fn get(&self, name: &str) -> &Summary {
        self.metrics
            .get(name)
            .unwrap_or_else(|| panic!("metric `{name}` was not reported by replications"))
    }

    /// All metric names in deterministic order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(|s| s.as_str())
    }
}

/// Run `n` replications of `sim` in parallel and aggregate their metrics.
///
/// `sim` receives the replication index and a derived [`RngStreams`]; it
/// must be deterministic given those inputs.
pub fn replicate<F>(master: RngStreams, n: usize, sim: F) -> Aggregate
where
    F: Fn(usize, RngStreams) -> MetricRow + Sync,
{
    assert!(n > 0, "need at least one replication");
    let rows: Vec<MetricRow> = (0..n)
        .into_par_iter()
        .map(|i| sim(i, master.replication(i as u64)))
        .collect();
    aggregate(rows)
}

/// Sequential variant, for debugging or when a simulation is itself
/// internally parallel.
pub fn replicate_seq<F>(master: RngStreams, n: usize, mut sim: F) -> Aggregate
where
    F: FnMut(usize, RngStreams) -> MetricRow,
{
    assert!(n > 0, "need at least one replication");
    let rows: Vec<MetricRow> = (0..n).map(|i| sim(i, master.replication(i as u64))).collect();
    aggregate(rows)
}

fn aggregate(rows: Vec<MetricRow>) -> Aggregate {
    let n = rows.len();
    let mut metrics: BTreeMap<String, Summary> = BTreeMap::new();
    for row in &rows {
        for (k, &v) in row {
            metrics.entry(k.clone()).or_default().observe(v);
        }
    }
    // Guard against replications reporting different metric sets — a
    // frequent source of silently-wrong aggregate statistics.
    for (k, s) in &metrics {
        assert!(
            s.count() as usize == n,
            "metric `{k}` reported by {}/{n} replications",
            s.count()
        );
    }
    Aggregate {
        metrics,
        replications: n,
    }
}

/// Convenience macro-free builder for a [`MetricRow`].
pub fn row(pairs: &[(&str, f64)]) -> MetricRow {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn parallel_equals_sequential() {
        let master = RngStreams::new(99);
        let sim = |_i: usize, s: RngStreams| {
            let mut r = s.stream("x");
            row(&[("v", r.gen::<f64>())])
        };
        let par = replicate(master, 64, sim);
        let seq = replicate_seq(master, 64, sim);
        assert_eq!(par.mean("v"), seq.mean("v"));
        assert_eq!(par.ci95("v"), seq.ci95("v"));
    }

    #[test]
    fn replications_differ() {
        let agg = replicate(RngStreams::new(7), 16, |_i, s| {
            let mut r = s.stream("x");
            row(&[("v", r.gen::<f64>())])
        });
        assert!(agg.get("v").std() > 0.0, "replications must not be identical");
        assert_eq!(agg.replications, 16);
    }

    #[test]
    fn deterministic_given_index() {
        let agg = replicate(RngStreams::new(7), 8, |i, _s| row(&[("i", i as f64)]));
        assert!((agg.mean("i") - 3.5).abs() < 1e-12);
        assert_eq!(agg.get("i").min(), 0.0);
        assert_eq!(agg.get("i").max(), 7.0);
    }

    #[test]
    #[should_panic]
    fn inconsistent_metric_sets_panic() {
        let _ = replicate_seq(RngStreams::new(1), 4, |i, _s| {
            if i == 2 {
                row(&[("a", 1.0), ("extra", 2.0)])
            } else {
                row(&[("a", 1.0)])
            }
        });
    }

    #[test]
    #[should_panic]
    fn missing_metric_panics_on_lookup() {
        let agg = replicate_seq(RngStreams::new(1), 2, |_i, _s| row(&[("a", 1.0)]));
        let _ = agg.mean("b");
    }
}

/// Run a deterministic parameter sweep in parallel: one simulation per
/// point, each seeded from `master.replication(index)` so the sweep is
/// reproducible and insensitive to rayon's scheduling order. Results
/// come back in input order.
///
/// ```
/// use simcore::runner::sweep;
/// use simcore::RngStreams;
///
/// let loads = [0.5, 1.0, 2.0];
/// let out = sweep(RngStreams::new(7), &loads, |&load, _streams| load * 10.0);
/// assert_eq!(out, vec![5.0, 10.0, 20.0]);
/// ```
pub fn sweep<P, R, F>(master: RngStreams, points: &[P], sim: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, RngStreams) -> R + Sync,
{
    points
        .par_iter()
        .enumerate()
        .map(|(i, p)| sim(p, master.replication(i as u64)))
        .collect()
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn sweep_preserves_order_and_determinism() {
        let master = RngStreams::new(31);
        let points: Vec<u64> = (0..64).collect();
        let run = |p: &u64, s: RngStreams| {
            let mut r = s.stream("x");
            (*p, r.gen::<u64>())
        };
        let a = sweep(master, &points, run);
        let b = sweep(master, &points, run);
        assert_eq!(a, b, "two sweeps must be identical");
        assert!(a.iter().enumerate().all(|(i, (p, _))| *p == i as u64));
        // Different points draw different randomness.
        assert_ne!(a[0].1, a[1].1);
    }
}
