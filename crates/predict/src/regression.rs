//! Linear regression by normal equations.
//!
//! Feature dimensionality in this crate is tiny (≤ ~30), so solving
//! `(XᵀX + λI) β = Xᵀy` with Gaussian elimination (partial pivoting) is
//! exact enough and dependency-free.

use serde::{Deserialize, Serialize};

/// A fitted linear model `y ≈ β·x` (include a 1-feature for intercepts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearModel {
    pub beta: Vec<f64>,
}

impl LinearModel {
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.beta.len(), "feature width mismatch");
        x.iter().zip(&self.beta).map(|(a, b)| a * b).sum()
    }
}

/// Ordinary least squares. `xs` is row-major (one row per observation).
pub fn ols(xs: &[Vec<f64>], ys: &[f64]) -> LinearModel {
    ridge(xs, ys, 0.0)
}

/// Ridge regression with penalty `lambda ≥ 0` (no penalty on feature 0,
/// by convention the intercept).
pub fn ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> LinearModel {
    assert!(!xs.is_empty(), "no observations");
    assert_eq!(xs.len(), ys.len());
    assert!(lambda >= 0.0);
    let d = xs[0].len();
    assert!(d > 0);
    assert!(xs.iter().all(|r| r.len() == d), "ragged feature rows");
    // XtX and Xty.
    let mut a = vec![vec![0.0f64; d]; d];
    let mut b = vec![0.0f64; d];
    for (row, &y) in xs.iter().zip(ys) {
        for i in 0..d {
            b[i] += row[i] * y;
            for j in 0..d {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate().skip(1) {
        row[i] += lambda;
    }
    let beta = solve(a, b);
    LinearModel { beta }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Panics on a (numerically) singular system — for regression that
/// means collinear features, which is a caller bug worth failing on.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("NaN in matrix")
            })
            .expect("non-empty");
        assert!(
            a[piv][col].abs() > 1e-12,
            "singular system (collinear features?) at column {col}"
        );
        a.swap(col, piv);
        b.swap(col, piv);
        // Eliminate.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (k, cell) in rest[0].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot[k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= a[i][j] * x[j];
        }
        x[i] = s / a[i][i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use simcore::dist::normal;
    use simcore::RngStreams;

    #[test]
    fn recovers_exact_line() {
        // y = 3 + 2x, noise-free.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0, i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
        let m = ols(&xs, &ys);
        assert!((m.beta[0] - 3.0).abs() < 1e-9);
        assert!((m.beta[1] - 2.0).abs() < 1e-9);
        assert!((m.predict(&[1.0, 10.0]) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_noisy_multivariate() {
        let mut rng = RngStreams::new(12).stream("reg");
        let true_beta = [5.0, -1.5, 0.7];
        let xs: Vec<Vec<f64>> = (0..2000)
            .map(|_| vec![1.0, rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 4.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                true_beta.iter().zip(x).map(|(b, v)| b * v).sum::<f64>()
                    + normal(&mut rng, 0.0, 0.5)
            })
            .collect();
        let m = ols(&xs, &ys);
        for (est, tru) in m.beta.iter().zip(&true_beta) {
            assert!((est - tru).abs() < 0.1, "beta {est} vs {tru}");
        }
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let mut rng = RngStreams::new(12).stream("reg2");
        let xs: Vec<Vec<f64>> = (0..50).map(|_| vec![1.0, rng.gen::<f64>()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 * x[1]).collect();
        let plain = ols(&xs, &ys);
        let shrunk = ridge(&xs, &ys, 100.0);
        assert!(shrunk.beta[1].abs() < plain.beta[1].abs());
        assert!(shrunk.beta[1] > 0.0, "still positively correlated");
    }

    #[test]
    fn ridge_handles_collinearity_that_breaks_ols() {
        // Two identical features: OLS normal equations are singular, but
        // ridge regularises them.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let m = ridge(&xs, &ys, 1e-3);
        // The two collinear features share the weight.
        assert!((m.beta[1] + m.beta[2] - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn singular_ols_panics() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        ols(&xs, &ys);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        ols(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]);
    }
}
