//! Forecast evaluation: error metrics and walk-forward testing.

use crate::forecast::{Forecaster, Obs};
use serde::{Deserialize, Serialize};

/// Error metrics of a forecast series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForecastErrors {
    pub mae: f64,
    pub rmse: f64,
    /// Mean absolute percentage error over samples with |actual| > eps.
    pub mape: f64,
    pub n: usize,
}

/// Compute errors from (predicted, actual) pairs.
pub fn errors(pairs: &[(f64, f64)]) -> ForecastErrors {
    assert!(!pairs.is_empty(), "no forecast pairs");
    let n = pairs.len();
    let mae = pairs.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / n as f64;
    let rmse = (pairs.iter().map(|(p, a)| (p - a).powi(2)).sum::<f64>() / n as f64).sqrt();
    let eps = 1e-6;
    let pct: Vec<f64> = pairs
        .iter()
        .filter(|(_, a)| a.abs() > eps)
        .map(|(p, a)| ((p - a) / a).abs())
        .collect();
    let mape = if pct.is_empty() {
        0.0
    } else {
        pct.iter().sum::<f64>() / pct.len() as f64
    };
    ForecastErrors { mae, rmse, mape, n }
}

/// Walk-forward evaluation: fit on `[0, split)`, then predict each test
/// observation one step ahead, refitting every `refit_every` steps
/// (0 = never refit).
pub fn walk_forward<F: Forecaster>(
    forecaster: &mut F,
    data: &[Obs],
    split: usize,
    refit_every: usize,
) -> ForecastErrors {
    assert!(split > 0 && split < data.len(), "bad split {split}");
    forecaster.fit(&data[..split]);
    let mut pairs = Vec::with_capacity(data.len() - split);
    for (i, obs) in data.iter().enumerate().skip(split) {
        if refit_every > 0 && (i - split) > 0 && (i - split).is_multiple_of(refit_every) {
            forecaster.fit(&data[..i]);
        }
        pairs.push((forecaster.predict(obs), obs.demand_w));
    }
    errors(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::SeasonalNaive;

    #[test]
    fn metrics_on_known_pairs() {
        let e = errors(&[(1.0, 2.0), (3.0, 3.0), (5.0, 4.0)]);
        assert!((e.mae - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.rmse - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(e.n, 3);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let e = errors(&[(1.0, 0.0), (2.0, 4.0)]);
        assert!((e.mape - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_forecast_is_zero_error() {
        let e = errors(&[(2.0, 2.0), (3.0, 3.0)]);
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.rmse, 0.0);
        assert_eq!(e.mape, 0.0);
    }

    #[test]
    fn walk_forward_on_perfectly_periodic_data_is_exact() {
        // Demand repeats every 24 h exactly → seasonal-naive is perfect.
        let data: Vec<Obs> = (0..24 * 7)
            .map(|h| Obs {
                hour_index: h,
                outdoor_c: 10.0,
                demand_w: 100.0 + (h % 24) as f64 * 10.0,
            })
            .collect();
        let mut f = SeasonalNaive::default();
        let e = walk_forward(&mut f, &data, 24 * 2, 24);
        assert!(e.mae < 1e-9, "mae = {}", e.mae);
    }

    #[test]
    #[should_panic]
    fn empty_pairs_panic() {
        errors(&[]);
    }
}
