//! Demand forecasters.
//!
//! Three methods behind one trait, compared by experiment E7:
//!
//! - [`SeasonalNaive`]: tomorrow-at-this-hour = today-at-this-hour.
//!   The honest baseline every forecasting paper must beat.
//! - [`Ses`]: simple exponential smoothing on the deseasonalised hourly
//!   profile.
//! - [`RidgeWeather`]: ridge regression on weather features (heating
//!   deficit, hour-of-day harmonics) — the "predictive computing
//!   platform" §III-C calls for, usable *ahead of time* given a weather
//!   forecast.

use crate::regression::{ridge, LinearModel};
use serde::{Deserialize, Serialize};

/// One training/forecast observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Obs {
    /// Hours since the trace start (integral hour index).
    pub hour_index: usize,
    /// Outdoor temperature, °C.
    pub outdoor_c: f64,
    /// Demand, W.
    pub demand_w: f64,
}

/// A demand forecaster.
pub trait Forecaster {
    /// Fit on a training history.
    fn fit(&mut self, history: &[Obs]);
    /// Predict demand for an observation's exogenous part (hour index +
    /// weather); the observation's `demand_w` is ignored.
    fn predict(&self, next: &Obs) -> f64;
    /// Method name for reports.
    fn name(&self) -> &'static str;
}

/// Seasonal-naive: predict the demand observed 24 h earlier.
#[derive(Debug, Clone, Default)]
pub struct SeasonalNaive {
    history: Vec<Obs>,
}

impl Forecaster for SeasonalNaive {
    fn fit(&mut self, history: &[Obs]) {
        assert!(history.len() >= 24, "need at least one day of history");
        self.history = history.to_vec();
    }

    fn predict(&self, next: &Obs) -> f64 {
        let target = next.hour_index as i64 - 24;
        // History is hour-indexed; find the matching hour (last match).
        self.history
            .iter()
            .rev()
            .find(|o| o.hour_index as i64 == target)
            .map(|o| o.demand_w)
            .unwrap_or_else(|| {
                // Fall back to the same hour-of-day mean.
                let hod = next.hour_index % 24;
                let matching: Vec<f64> = self
                    .history
                    .iter()
                    .filter(|o| o.hour_index % 24 == hod)
                    .map(|o| o.demand_w)
                    .collect();
                matching.iter().sum::<f64>() / matching.len().max(1) as f64
            })
    }

    fn name(&self) -> &'static str {
        "seasonal-naive"
    }
}

/// Simple exponential smoothing per hour-of-day slot.
#[derive(Debug, Clone)]
pub struct Ses {
    /// Smoothing factor in `(0, 1]`.
    pub alpha: f64,
    level: [f64; 24],
    seen: [bool; 24],
}

impl Ses {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ses {
            alpha,
            level: [0.0; 24],
            seen: [false; 24],
        }
    }
}

impl Forecaster for Ses {
    fn fit(&mut self, history: &[Obs]) {
        assert!(!history.is_empty());
        for o in history {
            let slot = o.hour_index % 24;
            if self.seen[slot] {
                self.level[slot] = self.alpha * o.demand_w + (1.0 - self.alpha) * self.level[slot];
            } else {
                self.level[slot] = o.demand_w;
                self.seen[slot] = true;
            }
        }
    }

    fn predict(&self, next: &Obs) -> f64 {
        let slot = next.hour_index % 24;
        assert!(self.seen[slot], "no history for hour slot {slot}");
        self.level[slot]
    }

    fn name(&self) -> &'static str {
        "exp-smoothing"
    }
}

/// Ridge regression on weather + time features.
#[derive(Debug, Clone)]
pub struct RidgeWeather {
    pub lambda: f64,
    /// Heating threshold used for the deficit feature, °C.
    pub base_c: f64,
    model: Option<LinearModel>,
}

impl RidgeWeather {
    pub fn new(lambda: f64, base_c: f64) -> Self {
        RidgeWeather {
            lambda,
            base_c,
            model: None,
        }
    }

    fn features(&self, o: &Obs) -> Vec<f64> {
        // Heating demand is (deficit × occupancy); occupancy is a step
        // function of the day segment, so interact the deficit with
        // segment indicators (night is the baseline) rather than smooth
        // harmonics that cannot track the steps.
        let hod = o.hour_index % 24;
        let d = (self.base_c - o.outdoor_c).max(0.0);
        let seg = |lo: usize, hi: usize| if (lo..hi).contains(&hod) { 1.0 } else { 0.0 };
        vec![
            1.0,
            d,
            d * seg(6, 9),   // morning peak
            d * seg(9, 17),  // workday trough
            d * seg(17, 23), // evening peak
        ]
    }
}

impl Forecaster for RidgeWeather {
    fn fit(&mut self, history: &[Obs]) {
        assert!(history.len() > 12, "not enough data for 6 features");
        let xs: Vec<Vec<f64>> = history.iter().map(|o| self.features(o)).collect();
        let ys: Vec<f64> = history.iter().map(|o| o.demand_w).collect();
        self.model = Some(ridge(&xs, &ys, self.lambda));
    }

    fn predict(&self, next: &Obs) -> f64 {
        let m = self.model.as_ref().expect("fit() before predict()");
        m.predict(&self.features(next)).max(0.0)
    }

    fn name(&self) -> &'static str {
        "ridge-weather"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic demand: deficit-linear with a diurnal wave.
    fn synth(hours: usize) -> Vec<Obs> {
        (0..hours)
            .map(|h| {
                let hod = (h % 24) as f64;
                let outdoor = 8.0
                    + 6.0 * ((h as f64 / 24.0) * 0.26).sin()
                    + 3.0 * (2.0 * std::f64::consts::PI * (hod - 15.0) / 24.0).cos();
                let occ = if (6.0..23.0).contains(&hod) { 1.0 } else { 0.5 };
                Obs {
                    hour_index: h,
                    outdoor_c: outdoor,
                    demand_w: 55.0 * (16.0f64 - outdoor).max(0.0) * occ,
                }
            })
            .collect()
    }

    #[test]
    fn seasonal_naive_repeats_yesterday() {
        let h = synth(72);
        let mut f = SeasonalNaive::default();
        f.fit(&h[..48]);
        let pred = f.predict(&h[48]);
        assert_eq!(pred, h[24].demand_w);
    }

    #[test]
    fn ses_tracks_slot_level() {
        let h = synth(24 * 14);
        let mut f = Ses::new(0.3);
        f.fit(&h);
        let next = Obs {
            hour_index: 24 * 14 + 8,
            outdoor_c: 5.0,
            demand_w: 0.0,
        };
        let p = f.predict(&next);
        // Should be in the ballpark of recent hour-8 demands.
        let recent: Vec<f64> = h
            .iter()
            .rev()
            .filter(|o| o.hour_index % 24 == 8)
            .take(3)
            .map(|o| o.demand_w)
            .collect();
        let lo = recent.iter().copied().fold(f64::INFINITY, f64::min) * 0.5;
        let hi = recent.iter().copied().fold(0.0, f64::max) * 1.5;
        assert!((lo..=hi).contains(&p), "p={p}, recent={recent:?}");
    }

    #[test]
    fn ridge_beats_naive_on_weather_driven_demand() {
        let h = synth(24 * 28);
        let (train, test) = h.split_at(24 * 21);
        let mut naive = SeasonalNaive::default();
        let mut ridge = RidgeWeather::new(1.0, 16.0);
        naive.fit(train);
        ridge.fit(train);
        let mae = |f: &dyn Forecaster| {
            test.iter()
                .map(|o| (f.predict(o) - o.demand_w).abs())
                .sum::<f64>()
                / test.len() as f64
        };
        // Extend naive's history progressively is not done here — it uses
        // train only, so weather swings hurt it; ridge sees the forecast
        // temperature and must win clearly.
        let m_naive = mae(&naive);
        let m_ridge = mae(&ridge);
        assert!(
            m_ridge < m_naive * 0.8,
            "ridge {m_ridge:.1} should beat naive {m_naive:.1}"
        );
    }

    #[test]
    fn ridge_never_predicts_negative() {
        let h = synth(24 * 7);
        let mut f = RidgeWeather::new(1.0, 16.0);
        f.fit(&h);
        let hot = Obs {
            hour_index: 24 * 7,
            outdoor_c: 30.0,
            demand_w: 0.0,
        };
        assert!(f.predict(&hot) >= 0.0);
    }

    #[test]
    #[should_panic]
    fn ridge_predict_before_fit_panics() {
        let f = RidgeWeather::new(1.0, 16.0);
        f.predict(&Obs {
            hour_index: 0,
            outdoor_c: 10.0,
            demand_w: 0.0,
        });
    }
}
