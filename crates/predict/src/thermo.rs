//! Thermosensitivity estimation.
//!
//! The grid-operator model: demand is linear in the *heating deficit*
//! `max(0, base − T_out)`. Given (T_out, demand) observations we
//! recover the threshold `base` by scanning a candidate grid and
//! keeping the OLS fit with the lowest residual, then report the slope
//! in W/K. Experiment E7 checks the recovered parameters against the
//! generator's ground truth in `thermal::demand`.

use crate::regression::ols;
use serde::{Deserialize, Serialize};

/// A fitted thermosensitivity model `demand ≈ intercept + slope · deficit`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermoFit {
    /// Estimated heating threshold, °C.
    pub base_c: f64,
    /// Demand slope below the threshold, W/K.
    pub slope_w_per_k: f64,
    /// Demand intercept (non-thermosensitive load), W.
    pub intercept_w: f64,
    /// Root-mean-square residual of the best fit, W.
    pub rmse_w: f64,
    /// Coefficient of determination of the best fit.
    pub r2: f64,
}

impl ThermoFit {
    /// Predicted demand at outdoor temperature `t_out`, W.
    pub fn predict_w(&self, t_out_c: f64) -> f64 {
        (self.intercept_w + self.slope_w_per_k * (self.base_c - t_out_c).max(0.0)).max(0.0)
    }
}

/// Fit the thermosensitivity model to (outdoor °C, demand W) samples.
/// `base_grid` is the candidate-threshold scan range (inclusive, 0.5 °C
/// steps).
pub fn fit(samples: &[(f64, f64)], base_grid: (f64, f64)) -> ThermoFit {
    assert!(samples.len() >= 8, "need a reasonable sample count");
    assert!(base_grid.1 > base_grid.0);
    let mean_y = samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64;
    let ss_tot: f64 = samples.iter().map(|s| (s.1 - mean_y).powi(2)).sum();
    let mut best: Option<ThermoFit> = None;
    let mut base = base_grid.0;
    while base <= base_grid.1 + 1e-9 {
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|&(t, _)| vec![1.0, (base - t).max(0.0)])
            .collect();
        // Degenerate if no sample is below the threshold.
        if xs.iter().all(|r| r[1] == 0.0) {
            base += 0.5;
            continue;
        }
        let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let m = ols(&xs, &ys);
        let ss_res: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| (y - m.predict(x)).powi(2))
            .sum();
        let rmse = (ss_res / samples.len() as f64).sqrt();
        let fit = ThermoFit {
            base_c: base,
            slope_w_per_k: m.beta[1],
            intercept_w: m.beta[0],
            rmse_w: rmse,
            r2: if ss_tot > 0.0 {
                1.0 - ss_res / ss_tot
            } else {
                0.0
            },
        };
        if best.as_ref().map(|b| rmse < b.rmse_w).unwrap_or(true) {
            best = Some(fit);
        }
        base += 0.5;
    }
    best.expect("at least one threshold candidate must be usable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{Calendar, SimDuration};
    use simcore::RngStreams;
    use thermal::demand::{generate_trace, DemandModel};
    use thermal::weather::{Weather, WeatherConfig};

    #[test]
    fn recovers_synthetic_ground_truth() {
        let streams = RngStreams::new(21);
        let weather = Weather::generate(
            WeatherConfig::paris(Calendar::JANUARY_EPOCH),
            SimDuration::YEAR,
            &streams,
        );
        let model = DemandModel::residential(500);
        let trace = generate_trace(model, &weather, SimDuration::HOUR, &streams);
        // Use full-occupancy evening samples so the occupancy factor does
        // not bias the slope (the estimator fits the 18–23 h regime).
        let samples: Vec<(f64, f64)> = trace
            .iter()
            .filter(|s| {
                let h = s.t.hour_of_day();
                (18.0..22.0).contains(&h)
            })
            .map(|s| (s.outdoor_c, s.demand_w))
            .collect();
        let fit = super::fit(&samples, (10.0, 20.0));
        let true_slope = 500.0 * 55.0; // n_homes × slope
        assert!(
            (fit.base_c - 16.0).abs() <= 1.0,
            "threshold {} should be ≈ 16 °C",
            fit.base_c
        );
        assert!(
            (fit.slope_w_per_k - true_slope).abs() / true_slope < 0.1,
            "slope {} vs true {}",
            fit.slope_w_per_k,
            true_slope
        );
        assert!(fit.r2 > 0.8, "r² = {}", fit.r2);
    }

    #[test]
    fn prediction_is_piecewise_linear() {
        let f = ThermoFit {
            base_c: 16.0,
            slope_w_per_k: 100.0,
            intercept_w: 50.0,
            rmse_w: 0.0,
            r2: 1.0,
        };
        assert_eq!(f.predict_w(20.0), 50.0);
        assert_eq!(f.predict_w(16.0), 50.0);
        assert_eq!(f.predict_w(15.0), 150.0);
        assert_eq!(f.predict_w(6.0), 1_050.0);
    }

    #[test]
    fn prediction_clamps_at_zero() {
        let f = ThermoFit {
            base_c: 16.0,
            slope_w_per_k: 100.0,
            intercept_w: -500.0,
            rmse_w: 0.0,
            r2: 1.0,
        };
        assert_eq!(f.predict_w(16.0), 0.0);
    }

    #[test]
    fn exact_synthetic_line_gives_perfect_fit() {
        let samples: Vec<(f64, f64)> = (-10..25)
            .map(|t| {
                let t = t as f64;
                (t, 30.0 + 80.0 * (15.0f64 - t).max(0.0))
            })
            .collect();
        let fit = super::fit(&samples, (10.0, 20.0));
        assert!((fit.base_c - 15.0).abs() < 0.26);
        assert!((fit.slope_w_per_k - 80.0).abs() < 2.0);
        assert!(fit.rmse_w < 10.0);
    }

    #[test]
    #[should_panic]
    fn too_few_samples_panics() {
        super::fit(&[(0.0, 1.0); 3], (10.0, 20.0));
    }
}
