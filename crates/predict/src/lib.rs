//! # predict — heat-demand prediction
//!
//! §III-C: "A solution to manage the variability in heat demand is to
//! build a predictive computing platform, with a model to predict the
//! heat demand and the thermosensitivity in houses equipped with DF
//! servers. Several studies reveal that the thermosensitivity is in
//! general correlated to the external weather."
//!
//! - [`regression`]: ordinary least squares and ridge regression via
//!   normal equations (features are small here; no LAPACK needed).
//! - [`thermo`]: thermosensitivity estimation — recover the slope
//!   (W/K) and heating threshold (°C) from (outdoor temp, demand)
//!   observations.
//! - [`forecast`]: demand forecasters (seasonal-naive, exponential
//!   smoothing, weather-feature ridge regression) behind one trait.
//! - [`eval`]: MAE / RMSE / MAPE and walk-forward evaluation.

pub mod eval;
pub mod forecast;
pub mod regression;
pub mod thermo;

pub use forecast::{Forecaster, RidgeWeather, SeasonalNaive, Ses};
pub use thermo::ThermoFit;
