//! Deterministic fault injection and recovery (§IV).
//!
//! The paper claims a resource-oriented DF fleet "can easily guarantee
//! that the basic services delivered by the resources (heat for
//! instance) will continue to be delivered even if there are problems
//! in the central point". A single master-outage window plus
//! independent worker MTBF (all the seed simulator could inject)
//! exercises a sliver of that claim; this module makes fault shape a
//! declarative simulation input, the way LEAF-style fog simulators
//! treat failure models.
//!
//! A [`FaultPlan`] composes five injectors:
//!
//! - **Worker churn** — the per-worker exponential crash/repair process
//!   (absorbing the legacy `worker_mtbf`/`worker_repair_time` fields).
//! - **Cluster outages** — correlated building-level power cuts that
//!   take every worker of one cluster dark for a window.
//! - **Master outages** — repeated windows generalising the legacy
//!   single `Option<(start, end)>`.
//! - **Link faults** — degradation (latency stretch, bandwidth derate)
//!   or full partition of one [`LinkClass`] for a window.
//! - **Sensor faults** — dropout or stuck-at on the room-temperature
//!   sensors feeding the regulators; the control loop degrades to
//!   last-known-good minus a conservative bias and never panics.
//!
//! plus a [`RecoveryPolicy`]: retry budgets with exponential backoff
//! for rejected edge requests, quarantine for flapping workers, and
//! boiler backfill that keeps rooms warm when compute capacity
//! collapses.
//!
//! Everything is deterministic: the only randomness (churn gap draws)
//! comes from the platform's dedicated `"worker-failures"` RNG stream,
//! so enabling a plan never perturbs weather, workload, or any other
//! draw — and an empty plan leaves the platform bit-identical to a
//! build without the fault layer.

use dfnet::link::{Degradation, Link, LinkClass};
use sched::retry::{QuarantinePolicy, RetryPolicy};
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// A half-open activity window `[start, end)`, as offsets from t = 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    pub start: SimDuration,
    pub end: SimDuration,
}

impl Window {
    pub fn new(start: SimDuration, end: SimDuration) -> Self {
        Window { start, end }
    }

    pub fn from_hours(start_h: i64, end_h: i64) -> Self {
        Window::new(
            SimDuration::from_hours(start_h),
            SimDuration::from_hours(end_h),
        )
    }

    pub fn contains(&self, now: SimTime) -> bool {
        now >= SimTime::ZERO + self.start && now < SimTime::ZERO + self.end
    }

    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.start.is_negative() || self.end <= self.start {
            return Err(format!("bad window {}..{}", self.start, self.end));
        }
        Ok(())
    }
}

/// The per-worker crash/repair process (exponential MTBF).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerChurn {
    pub mtbf: SimDuration,
    pub repair_time: SimDuration,
}

/// A correlated building-level power outage: every worker of `cluster`
/// goes dark for the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutage {
    pub cluster: usize,
    pub window: Window,
}

/// A network fault on one link class: degradation while the window is
/// active, or (with `partition`) no connectivity at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    pub link: LinkClass,
    pub window: Window,
    pub degradation: Degradation,
    /// The link is severed outright: horizontal offloads (fiber) or
    /// vertical offloads (WAN) become impossible during the window.
    pub partition: bool,
}

/// How a faulty room sensor misreads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// No reading at all: the regulator holds the last-known-good
    /// temperature minus a conservative bias.
    Dropout,
    /// The sensor reports a constant value regardless of the room.
    StuckAt(f64),
}

/// A sensor fault on one worker's room sensor (or a whole cluster's).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFault {
    pub cluster: usize,
    /// `None` hits every worker of the cluster.
    pub worker: Option<usize>,
    pub window: Window,
    pub kind: SensorFaultKind,
}

/// The recovery half of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retry budget for rejected edge requests.
    pub retry: RetryPolicy,
    /// Quarantine for flapping workers (`None` disables).
    pub quarantine: Option<QuarantinePolicy>,
    /// Stage gas-boiler heat into the rooms of failed workers so
    /// comfort holds while compute capacity is down (§II-B's
    /// conventional-boiler complement, wired into the control loop).
    pub boiler_backfill: bool,
    /// Boiler output per backfilled room at full thermostat demand, W.
    pub backfill_power_w: f64,
    /// Conservative bias subtracted from last-known-good readings when
    /// a sensor drops out (reads the room as colder than remembered, so
    /// the regulator errs toward heating), °C.
    pub sensor_bias_c: f64,
}

impl RecoveryPolicy {
    /// Retries + quarantine + boiler backfill, all on.
    pub fn standard() -> Self {
        RecoveryPolicy {
            retry: RetryPolicy::standard(),
            quarantine: Some(QuarantinePolicy::standard()),
            boiler_backfill: true,
            backfill_power_w: 500.0,
            sensor_bias_c: 0.5,
        }
    }

    /// Every recovery mechanism off — faults land unmitigated.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            retry: RetryPolicy::disabled(),
            quarantine: None,
            boiler_backfill: false,
            backfill_power_w: 0.0,
            sensor_bias_c: 0.5,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.retry.validate()?;
        if let Some(q) = &self.quarantine {
            q.validate()?;
        }
        let backfill_ok = self.backfill_power_w.is_finite() && self.backfill_power_w > 0.0;
        if self.boiler_backfill && !backfill_ok {
            return Err("boiler backfill needs positive power".into());
        }
        if !self.sensor_bias_c.is_finite() || self.sensor_bias_c < 0.0 {
            return Err(format!("bad sensor bias {}", self.sensor_bias_c));
        }
        Ok(())
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// A declarative, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-worker crash/repair churn (`None` disables; the legacy
    /// `PlatformConfig::worker_mtbf` fields are absorbed into this when
    /// the plan itself does not set churn).
    pub worker_churn: Option<WorkerChurn>,
    /// Correlated building-level power outages.
    pub cluster_outages: Vec<ClusterOutage>,
    /// Master-node outage windows (union with the legacy single
    /// window, if configured).
    pub master_outages: Vec<Window>,
    /// Link degradations and partitions.
    pub link_faults: Vec<LinkFault>,
    /// Room-sensor faults feeding the regulators.
    pub sensor_faults: Vec<SensorFault>,
    /// The recovery layer (only consulted while the plan is active).
    pub recovery: RecoveryPolicy,
}

impl FaultPlan {
    /// The empty plan: no injectors, recovery moot. A platform built
    /// with this is bit-identical to one without the fault layer.
    pub fn none() -> Self {
        FaultPlan {
            worker_churn: None,
            cluster_outages: Vec::new(),
            master_outages: Vec::new(),
            link_faults: Vec::new(),
            sensor_faults: Vec::new(),
            recovery: RecoveryPolicy::disabled(),
        }
    }

    /// No injectors at all → the platform skips the fault runtime.
    pub fn is_empty(&self) -> bool {
        self.worker_churn.is_none()
            && self.cluster_outages.is_empty()
            && self.master_outages.is_empty()
            && self.link_faults.is_empty()
            && self.sensor_faults.is_empty()
    }

    pub fn with_churn(mut self, mtbf: SimDuration, repair_time: SimDuration) -> Self {
        self.worker_churn = Some(WorkerChurn { mtbf, repair_time });
        self
    }

    pub fn with_cluster_outage(mut self, cluster: usize, window: Window) -> Self {
        self.cluster_outages.push(ClusterOutage { cluster, window });
        self
    }

    pub fn with_master_outage(mut self, window: Window) -> Self {
        self.master_outages.push(window);
        self
    }

    pub fn with_link_fault(
        mut self,
        link: LinkClass,
        window: Window,
        degradation: Degradation,
        partition: bool,
    ) -> Self {
        self.link_faults.push(LinkFault {
            link,
            window,
            degradation,
            partition,
        });
        self
    }

    pub fn with_sensor_fault(
        mut self,
        cluster: usize,
        worker: Option<usize>,
        window: Window,
        kind: SensorFaultKind,
    ) -> Self {
        self.sensor_faults.push(SensorFault {
            cluster,
            worker,
            window,
            kind,
        });
        self
    }

    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Whether `self` is a valid *branch plan* over `base`: everything
    /// that could have fired before the snapshot offset `at` must be
    /// identical, and everything added must act strictly after it — so
    /// restoring a warm-up taken under `base` and continuing under
    /// `self` is bit-identical to a cold run under `self` up to `at`.
    ///
    /// Rules:
    /// - worker churn identical (its RNG draws start at t = 0);
    /// - recovery identical when `base` has injectors; when `base` is
    ///   empty the warm-up ran with no fault runtime at all, so the
    ///   branch recovery must keep retries off (a retry layer changes
    ///   rejection handling from the first event);
    /// - each injector list extends `base`'s as an exact prefix, and
    ///   every added window starts at or after `at` — cluster outages
    ///   need an extra `control_period` of slack because outage
    ///   transitions are scheduled one control tick ahead.
    pub fn is_extension_of(
        &self,
        base: &FaultPlan,
        at: SimDuration,
        control_period: SimDuration,
    ) -> Result<(), String> {
        if self.worker_churn != base.worker_churn {
            return Err("branch plan must keep the base worker churn".into());
        }
        if base.is_empty() {
            if self.recovery.retry.enabled() {
                return Err(
                    "branching from a fault-free warm-up cannot enable retries (they act from t = 0)"
                        .into(),
                );
            }
        } else if self.recovery != base.recovery {
            return Err("branch plan must keep the base recovery policy".into());
        }
        fn prefix<T: PartialEq + Copy>(
            ours: &[T],
            theirs: &[T],
            what: &str,
            earliest: SimDuration,
            window: impl Fn(&T) -> Window,
        ) -> Result<(), String> {
            if ours.len() < theirs.len() || ours[..theirs.len()] != *theirs {
                return Err(format!(
                    "branch {what} must extend the base list as a prefix"
                ));
            }
            for f in &ours[theirs.len()..] {
                if window(f).start < earliest {
                    return Err(format!(
                        "added {what} window starts {} before the branch point {}",
                        window(f).start,
                        earliest
                    ));
                }
            }
            Ok(())
        }
        prefix(
            &self.cluster_outages,
            &base.cluster_outages,
            "cluster outage",
            at + control_period,
            |o| o.window,
        )?;
        prefix(
            &self.master_outages,
            &base.master_outages,
            "master outage",
            at,
            |w| *w,
        )?;
        prefix(
            &self.link_faults,
            &base.link_faults,
            "link fault",
            at,
            |f| f.window,
        )?;
        prefix(
            &self.sensor_faults,
            &base.sensor_faults,
            "sensor fault",
            at,
            |s| s.window,
        )?;
        Ok(())
    }

    /// Validate against a fleet shape.
    pub fn validate(&self, n_clusters: usize, workers_per_cluster: usize) -> Result<(), String> {
        if let Some(c) = &self.worker_churn {
            if c.mtbf <= SimDuration::ZERO {
                return Err("churn MTBF must be positive".into());
            }
            if c.repair_time.is_negative() {
                return Err("churn repair time cannot be negative".into());
            }
        }
        for o in &self.cluster_outages {
            o.window.validate()?;
            if o.cluster >= n_clusters {
                return Err(format!(
                    "outage cluster {} out of range (fleet has {n_clusters})",
                    o.cluster
                ));
            }
        }
        for w in &self.master_outages {
            w.validate()?;
        }
        for f in &self.link_faults {
            f.window.validate()?;
            f.degradation.validate()?;
        }
        for s in &self.sensor_faults {
            s.window.validate()?;
            if s.cluster >= n_clusters {
                return Err(format!("sensor fault cluster {} out of range", s.cluster));
            }
            if let Some(w) = s.worker {
                if w >= workers_per_cluster {
                    return Err(format!("sensor fault worker {w} out of range"));
                }
            }
            if let SensorFaultKind::StuckAt(v) = s.kind {
                if !v.is_finite() {
                    return Err(format!("stuck-at value {v} must be finite"));
                }
            }
        }
        self.recovery.validate()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// A timeline entry of the run report: what broke or healed, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    WorkerFail,
    WorkerRepair,
    Quarantine,
    ClusterDown,
    ClusterUp,
}

impl FaultEventKind {
    /// Every kind, in declaration order (pre-interning telemetry tags).
    pub const ALL: [FaultEventKind; 5] = [
        FaultEventKind::WorkerFail,
        FaultEventKind::WorkerRepair,
        FaultEventKind::Quarantine,
        FaultEventKind::ClusterDown,
        FaultEventKind::ClusterUp,
    ];

    /// Stable snake_case name for telemetry and run reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultEventKind::WorkerFail => "worker_fail",
            FaultEventKind::WorkerRepair => "worker_repair",
            FaultEventKind::Quarantine => "quarantine",
            FaultEventKind::ClusterDown => "cluster_down",
            FaultEventKind::ClusterUp => "cluster_up",
        }
    }
}

/// One fault-timeline record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub t: SimTime,
    pub kind: FaultEventKind,
    pub cluster: usize,
    /// `None` for cluster-scope events.
    pub worker: Option<usize>,
}

impl simcore::snapshot::Snapshot for FaultEventKind {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u8(match self {
            FaultEventKind::WorkerFail => 0,
            FaultEventKind::WorkerRepair => 1,
            FaultEventKind::Quarantine => 2,
            FaultEventKind::ClusterDown => 3,
            FaultEventKind::ClusterUp => 4,
        });
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(FaultEventKind::WorkerFail),
            1 => Ok(FaultEventKind::WorkerRepair),
            2 => Ok(FaultEventKind::Quarantine),
            3 => Ok(FaultEventKind::ClusterDown),
            4 => Ok(FaultEventKind::ClusterUp),
            b => Err(simcore::snapshot::SnapshotError::Corrupt(format!(
                "fault event kind tag {b}"
            ))),
        }
    }
}

impl simcore::snapshot::Snapshot for FaultEvent {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.t.encode(w);
        self.kind.encode(w);
        w.put_usize(self.cluster);
        self.worker.encode(w);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(FaultEvent {
            t: SimTime::decode(r)?,
            kind: FaultEventKind::decode(r)?,
            cluster: r.take_usize()?,
            worker: Option::decode(r)?,
        })
    }
}

/// Live per-run fault state, built by the platform only when the plan
/// has at least one injector (so fault-free runs pay nothing).
#[derive(Debug, Clone)]
pub struct FaultRuntime {
    plan: FaultPlan,
    /// Retry attempt counts for edge jobs in an open retry chain.
    pub retry_book: workloads::RetryBook,
    /// Failure history for quarantine decisions.
    pub flap: sched::retry::FlapTracker,
    /// Whether each cluster is inside a power outage right now.
    pub cluster_dark: Vec<bool>,
    /// Whether each planned cluster outage has had its down/up
    /// transitions scheduled yet (outages are scheduled lazily, one
    /// control tick ahead, so a restored run can pick up outages added
    /// by a branch plan).
    pub outage_scheduled: Vec<bool>,
    has_link_faults: bool,
    has_sensor_faults: bool,
}

impl FaultRuntime {
    pub fn new(plan: FaultPlan, n_clusters: usize, n_worker_slots: usize) -> Self {
        let has_link_faults = !plan.link_faults.is_empty();
        let has_sensor_faults = !plan.sensor_faults.is_empty();
        let outage_scheduled = vec![false; plan.cluster_outages.len()];
        FaultRuntime {
            plan,
            retry_book: workloads::RetryBook::new(),
            flap: sched::retry::FlapTracker::new(n_worker_slots),
            cluster_dark: vec![false; n_clusters],
            outage_scheduled,
            has_link_faults,
            has_sensor_faults,
        }
    }

    /// Checkpoint the runtime's mutable state (the plan itself is
    /// config, rebuilt on restore).
    pub fn snapshot_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        use simcore::snapshot::Snapshot;
        self.retry_book.encode(w);
        self.flap.encode(w);
        self.cluster_dark.encode(w);
        self.outage_scheduled.encode(w);
    }

    /// Overlay checkpointed state onto a fresh runtime. A branch plan
    /// may have *more* outages than the snapshot knew about; the
    /// scheduled-flags vector grows with `false` for the additions.
    pub fn restore_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::{Snapshot, SnapshotError};
        self.retry_book = workloads::RetryBook::decode(r)?;
        self.flap = sched::retry::FlapTracker::decode(r)?;
        let dark = Vec::<bool>::decode(r)?;
        if dark.len() != self.cluster_dark.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot tracks {} clusters, config built {}",
                dark.len(),
                self.cluster_dark.len()
            )));
        }
        self.cluster_dark = dark;
        let mut scheduled = Vec::<bool>::decode(r)?;
        if scheduled.len() > self.plan.cluster_outages.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot tracks {} cluster outages, plan has {}",
                scheduled.len(),
                self.plan.cluster_outages.len()
            )));
        }
        scheduled.resize(self.plan.cluster_outages.len(), false);
        self.outage_scheduled = scheduled;
        Ok(())
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn has_sensor_faults(&self) -> bool {
        self.has_sensor_faults
    }

    /// Whether any plan master-outage window covers `now`.
    pub fn master_down(&self, now: SimTime) -> bool {
        self.plan.master_outages.iter().any(|w| w.contains(now))
    }

    /// Whether `class` is fully partitioned at `now`.
    pub fn partitioned(&self, class: LinkClass, now: SimTime) -> bool {
        self.has_link_faults
            && self
                .plan
                .link_faults
                .iter()
                .any(|f| f.partition && f.link == class && f.window.contains(now))
    }

    /// `base` with every active degradation of `class` folded in
    /// (a partitioned link is the caller's concern — transfer times on
    /// a severed link are meaningless).
    pub fn effective_link(&self, class: LinkClass, now: SimTime, base: Link) -> Link {
        if !self.has_link_faults {
            return base;
        }
        let mut link = base;
        for f in &self.plan.link_faults {
            if f.link == class && f.window.contains(now) {
                link = link.degraded(f.degradation);
            }
        }
        link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfnet::protocol::Protocol;

    #[test]
    fn empty_plan_is_empty_and_validates() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.validate(4, 16).is_ok());
        assert_eq!(FaultPlan::default(), p);
    }

    #[test]
    fn builders_compose_and_validate() {
        let p = FaultPlan::none()
            .with_churn(SimDuration::from_hours(12), SimDuration::from_hours(1))
            .with_cluster_outage(1, Window::from_hours(2, 4))
            .with_master_outage(Window::from_hours(1, 2))
            .with_master_outage(Window::from_hours(4, 5))
            .with_link_fault(
                LinkClass::Fiber,
                Window::from_hours(2, 3),
                Degradation::brownout(),
                false,
            )
            .with_sensor_fault(
                0,
                Some(3),
                Window::from_hours(1, 3),
                SensorFaultKind::StuckAt(25.0),
            )
            .with_recovery(RecoveryPolicy::standard());
        assert!(!p.is_empty());
        assert!(p.validate(4, 16).is_ok());
        // Out-of-range cluster index.
        assert!(p.validate(1, 16).is_err());
    }

    #[test]
    fn bad_plans_are_rejected() {
        let p = FaultPlan::none().with_cluster_outage(0, Window::from_hours(4, 2));
        assert!(p.validate(4, 16).is_err());
        let p = FaultPlan::none().with_sensor_fault(
            0,
            None,
            Window::from_hours(0, 1),
            SensorFaultKind::StuckAt(f64::NAN),
        );
        assert!(p.validate(4, 16).is_err());
        let p = FaultPlan::none().with_churn(SimDuration::ZERO, SimDuration::ZERO);
        assert!(p.validate(4, 16).is_err());
    }

    #[test]
    fn windows_are_half_open() {
        let w = Window::from_hours(2, 4);
        assert!(!w.contains(SimTime::ZERO + SimDuration::from_hours(1)));
        assert!(w.contains(SimTime::ZERO + SimDuration::from_hours(2)));
        assert!(w.contains(SimTime::ZERO + SimDuration::from_secs(4 * 3600 - 1)));
        assert!(!w.contains(SimTime::ZERO + SimDuration::from_hours(4)));
        assert_eq!(w.duration(), SimDuration::from_hours(2));
    }

    #[test]
    fn runtime_reports_masters_partitions_and_degradations() {
        let plan = FaultPlan::none()
            .with_master_outage(Window::from_hours(1, 2))
            .with_link_fault(
                LinkClass::Wan,
                Window::from_hours(1, 3),
                Degradation::none(),
                true,
            )
            .with_link_fault(
                LinkClass::Fiber,
                Window::from_hours(0, 2),
                Degradation::brownout(),
                false,
            );
        let rt = FaultRuntime::new(plan, 2, 8);
        let t0 = SimTime::ZERO;
        let t90 = SimTime::ZERO + SimDuration::from_secs(90 * 60);
        assert!(!rt.master_down(t0));
        assert!(rt.master_down(t90));
        assert!(!rt.partitioned(LinkClass::Wan, t0));
        assert!(rt.partitioned(LinkClass::Wan, t90));
        assert!(!rt.partitioned(LinkClass::Fiber, t90), "degraded ≠ severed");
        let base = Link::new(Protocol::Fiber);
        let eff = rt.effective_link(LinkClass::Fiber, t90, base);
        assert!(eff.transfer_time(1_000_000) > base.transfer_time(1_000_000));
        // Outside the window the link is pristine.
        let late = SimTime::ZERO + SimDuration::from_hours(5);
        let eff = rt.effective_link(LinkClass::Fiber, late, base);
        assert_eq!(
            eff.transfer_time(1_000_000).as_micros(),
            base.transfer_time(1_000_000).as_micros()
        );
    }
}
