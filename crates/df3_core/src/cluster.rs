//! A gateway-fronted cluster of DF workers.
//!
//! Implements both §III-B architectures over the same worker pool:
//! class A shares every worker between flows (context-switch cost on
//! alternation), class B dedicates `edge_workers` to edge traffic. The
//! cluster owns the edge (EDF) and DCC (FIFO) ready queues of its
//! gateways and exposes the load snapshot the peak policies consume.

use crate::config::ArchClass;
use crate::regulator::HeatRegulator;
use crate::worker::WorkerSim;
use dfhw::dvfs::DvfsLadder;
use sched::queue::{Discipline, ReadyQueue};
use sched::ClusterLoad;
use simcore::time::{SimDuration, SimTime};
use std::sync::Arc;
use thermal::batch::ThermalBatch;
use thermal::room::RoomParams;
use thermal::thermostat::{ModulatingThermostat, SetpointSchedule};
use workloads::{Job, JobId};

/// Result of a local dispatch attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dispatch {
    /// Started on `worker`; completes at the given time.
    Started { worker: usize, finish: SimTime },
    /// No eligible worker can take it right now.
    Full,
}

/// One cluster.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    pub id: usize,
    pub arch: ArchClass,
    workers: Vec<WorkerSim>,
    /// First room slot of this cluster in the fleet [`ThermalBatch`]
    /// (worker `w`'s room is slot `room_base + w`).
    room_base: usize,
    pub edge_queue: ReadyQueue,
    pub dcc_queue: ReadyQueue,
}

impl ClusterSim {
    /// Build a cluster of `n_workers` Q.rads, appending their rooms to
    /// the fleet batch with per-room thermal diversity (initial
    /// temperatures spread around 17 °C so rooms are not artificially
    /// synchronised).
    pub fn new(
        id: usize,
        n_workers: usize,
        arch: ArchClass,
        setpoint_c: f64,
        rooms: &mut ThermalBatch,
    ) -> Self {
        assert!(n_workers > 0);
        let ladder = Arc::new(DvfsLadder::desktop_i7());
        let room_base = rooms.len();
        let workers = (0..n_workers)
            .map(|w| {
                let initial_c = 16.0 + ((id * 31 + w * 7) % 40) as f64 / 20.0; // 16.0..18.0
                rooms.push(RoomParams::typical_apartment_room(), initial_c);
                let mut ws = WorkerSim::new(
                    w,
                    ladder.clone(),
                    HeatRegulator::for_qrad(),
                    ModulatingThermostat::new(
                        SetpointSchedule {
                            day_c: setpoint_c,
                            night_c: setpoint_c - 3.0,
                            day_start_h: 6.0,
                            night_start_h: 22.0,
                        },
                        1.5,
                    ),
                );
                if let ArchClass::DedicatedEdge { edge_workers, .. } = arch {
                    ws.edge_dedicated = w < edge_workers;
                }
                ws
            })
            .collect();
        ClusterSim {
            id,
            arch,
            workers,
            room_base,
            edge_queue: ReadyQueue::new(Discipline::Edf),
            dcc_queue: ReadyQueue::new(Discipline::Fifo),
        }
    }

    /// Room slot of worker `w` in the fleet batch.
    #[inline]
    pub fn room_slot(&self, w: usize) -> usize {
        self.room_base + w
    }

    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    pub fn worker(&self, w: usize) -> &WorkerSim {
        &self.workers[w]
    }

    pub fn worker_mut(&mut self, w: usize) -> &mut WorkerSim {
        &mut self.workers[w]
    }

    fn switch_cost(&self) -> SimDuration {
        match self.arch {
            ArchClass::SharedWorkers { switch_cost } => switch_cost,
            ArchClass::DedicatedEdge { .. } => SimDuration::ZERO,
        }
    }

    /// Whether worker `w` may run `job` under the architecture.
    fn eligible(&self, w: usize, job: &Job) -> bool {
        match self.arch {
            ArchClass::SharedWorkers { .. } => true,
            ArchClass::DedicatedEdge { .. } => self.workers[w].edge_dedicated == job.is_edge(),
        }
    }

    /// Minimum width a DCC job may be shrunk to (moldable tasks, ref
    /// [14]): wide batches of independent frames time-share fewer cores
    /// when the heat budget is tight. Edge jobs stay rigid — shrinking
    /// them would stretch a deadline-bound computation.
    const MOLDABLE_MIN_CORES: usize = 1;

    /// Moldable width for `job` on a worker with `free` budgeted cores:
    /// `None` if the job cannot be placed at all.
    fn moldable_width(job: &Job, free: usize) -> Option<usize> {
        if free >= job.cores {
            Some(job.cores)
        } else if !job.is_edge() && free >= Self::MOLDABLE_MIN_CORES {
            Some(free)
        } else {
            None
        }
    }

    /// Tick a single worker off-cycle (the wake path): advance its room
    /// in the fleet batch by the elapsed interval, then complete its
    /// control decision against `backlog` cores.
    fn tick_worker(
        &mut self,
        i: usize,
        now: SimTime,
        outdoor_c: f64,
        backlog: usize,
        rooms: &mut ThermalBatch,
    ) -> f64 {
        let slot = self.room_base + i;
        let w = &mut self.workers[i];
        let dt = now.saturating_since(w.last_tick());
        let room_c = rooms.step_one(slot, dt, outdoor_c, w.heat_w());
        w.complete_tick(now, room_c, backlog)
    }

    /// Try to start `job` now. Tries workers with free budgeted cores
    /// first (preferring ones already serving the job's flow, to avoid
    /// switch costs); failing that, wakes an eligible idle worker via
    /// its regulator (the board may be off between control ticks).
    /// DCC jobs are **moldable**: they shrink to the available width.
    pub fn try_dispatch(
        &mut self,
        now: SimTime,
        outdoor_c: f64,
        job: Job,
        rooms: &mut ThermalBatch,
    ) -> Dispatch {
        let cost = self.switch_cost();
        // Pass 1: free capacity under the current budgets.
        let mut best: Option<(bool, usize, usize)> = None; // (flow match, free, idx)
        for (i, w) in self.workers.iter().enumerate() {
            if !self.eligible(i, &job) || Self::moldable_width(&job, w.free_cores()).is_none() {
                continue;
            }
            let matches = match self.arch {
                ArchClass::SharedWorkers { .. } => {
                    // Prefer a worker whose last job had the same flow.
                    w.running().last().map(|s| s.job.is_edge()) == Some(job.is_edge())
                }
                _ => true,
            };
            // Maximise (flow match, free cores); ties go to the lowest
            // index, which the strict `>` on the pair already ensures.
            let better = match best {
                None => true,
                Some((m, f, _)) => (matches, w.free_cores()) > (m, f),
            };
            if better {
                best = Some((matches, w.free_cores(), i));
            }
        }
        if let Some((_, _, i)) = best {
            let mut placed = job;
            placed.cores =
                Self::moldable_width(&job, self.workers[i].free_cores()).expect("width checked");
            let finish = self.workers[i]
                .dispatch(now, placed, cost)
                .expect("free_cores checked");
            return Dispatch::Started { worker: i, finish };
        }
        // Pass 2: wake an eligible worker whose board is budget-limited
        // but whose thermostat still demands heat. Failed boards cannot
        // wake — skipping them keeps arrival handling O(healthy) while
        // a cluster is dark.
        for i in 0..self.workers.len() {
            if !self.eligible(i, &job) || self.workers[i].is_failed() {
                continue;
            }
            let backlog = job.cores + self.workers[i].busy_cores();
            self.tick_worker(i, now, outdoor_c, backlog, rooms);
            if let Some(width) = Self::moldable_width(&job, self.workers[i].free_cores()) {
                let mut placed = job;
                placed.cores = width;
                let finish = self.workers[i]
                    .dispatch(now, placed, cost)
                    .expect("woken with room");
                return Dispatch::Started { worker: i, finish };
            }
        }
        Dispatch::Full
    }

    /// Load snapshot for the peak policies. Failed workers contribute
    /// no capacity: a dark building reports zero total cores, so DCC
    /// load-balancing and sibling selection route around it instead of
    /// mistaking it for an empty cluster (in fault-free runs every
    /// worker is healthy and the snapshot is unchanged).
    pub fn load(&self) -> ClusterLoad {
        let total: usize = self
            .workers
            .iter()
            .filter(|w| !w.is_failed())
            .map(|w| w.n_cores())
            .sum();
        let busy: usize = self.workers.iter().map(|w| w.busy_cores()).sum();
        let preemptible: usize = self.workers.iter().map(|w| w.preemptible_cores()).sum();
        ClusterLoad {
            cluster: self.id,
            total_cores: total,
            busy_cores: busy,
            preemptible_cores: preemptible,
            queued_edge: self.edge_queue.len(),
            queued_dcc: self.dcc_queue.len(),
        }
    }

    /// Heat-driven core capacity right now: what the thermostats would
    /// let compute if backlog were unlimited (the §III-C seasonality
    /// metric, experiment E6).
    pub fn usable_cores(&self) -> usize {
        self.workers.iter().map(|w| w.potential_cores()).sum()
    }

    /// Preempt enough local DCC work to place `job`, on one worker.
    /// Returns the preempted jobs (they must be requeued and their
    /// finish events cancelled by the caller) and the worker index, or
    /// `None` if no single worker can be cleared for the job.
    pub fn preempt_for(&mut self, now: SimTime, job: &Job) -> Option<(usize, Vec<Job>)> {
        // Pick the eligible worker where free + preemptible is largest.
        let target = (0..self.workers.len())
            .filter(|&i| self.eligible(i, job))
            .filter(|&i| {
                self.workers[i].free_cores() + self.workers[i].preemptible_cores() >= job.cores
            })
            .max_by_key(|&i| {
                (
                    self.workers[i].free_cores() + self.workers[i].preemptible_cores(),
                    usize::MAX - i,
                )
            })?;
        let need = job.cores - self.workers[target].free_cores();
        let running: Vec<sched::preempt::RunningTask> = self.workers[target]
            .running()
            .iter()
            .filter(|s| !s.job.is_edge())
            .map(|s| sched::preempt::RunningTask {
                id: s.job.id,
                cores: s.cores,
                started: s.started,
                progress_gops: (now.saturating_since(s.started)).as_secs_f64()
                    * s.cores as f64
                    * s.gops_per_core,
                total_gops: s.job.work_gops,
            })
            .collect();
        let victims = sched::preempt::select_victims(
            &running,
            need,
            sched::preempt::VictimOrder::LeastProgressFirst,
        )?;
        let jobs: Vec<Job> = victims
            .iter()
            .map(|&id| self.workers[target].preempt(id, now))
            .collect();
        Some((target, jobs))
    }

    /// Dispatch queued work after capacity changed. Edge first (EDF),
    /// then DCC (FIFO with fit-skipping). Returns the started jobs as
    /// (worker, job, finish).
    pub fn drain(
        &mut self,
        now: SimTime,
        outdoor_c: f64,
        rooms: &mut ThermalBatch,
    ) -> Vec<(usize, Job, SimTime)> {
        let mut started = Vec::new();
        // Expired edge requests are dropped (recorded by the platform).
        // The platform calls `take_expired` separately to count them.
        while let Some(job) = self.edge_queue.peek().copied() {
            match self.try_dispatch(now, outdoor_c, job, rooms) {
                Dispatch::Started { worker, finish } => {
                    self.edge_queue.pop();
                    started.push((worker, job, finish));
                }
                Dispatch::Full => break,
            }
        }
        // DCC jobs are moldable down to one core, so a single Full means
        // no eligible worker has any budgeted core free — every later
        // DCC job would fail too. Stop there (keeps drain O(started)
        // even with thousands queued).
        while let Some(job) = self.dcc_queue.pop() {
            match self.try_dispatch(now, outdoor_c, job, rooms) {
                Dispatch::Started { worker, finish } => {
                    started.push((worker, job, finish));
                }
                Dispatch::Full => {
                    self.dcc_queue.push_front(job);
                    break;
                }
            }
        }
        started
    }

    /// Drop queued edge jobs whose deadline already passed.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<Job> {
        self.edge_queue.drop_expired(now)
    }

    /// Stage every worker's pending thermal step (elapsed interval +
    /// current heat output) into the fleet batch. The platform stages
    /// *all* clusters, sweeps the batch once, then calls
    /// [`ClusterSim::finish_control_tick`] — one tight loop over the
    /// whole fleet instead of per-worker `exp` calls.
    pub fn stage_thermal(&self, now: SimTime, rooms: &mut ThermalBatch) {
        for (i, w) in self.workers.iter().enumerate() {
            let dt = now.saturating_since(w.last_tick());
            rooms.stage(self.room_base + i, dt, w.heat_w());
        }
    }

    /// Re-stage boiler heat into the rooms of failed workers (after
    /// [`ClusterSim::stage_thermal`], which staged them at 0 W): the
    /// recovery layer's backfill keeps comfort §IV-stable while boards
    /// are dark. The boiler modulates on the same thermostat as the
    /// server it stands in for. Returns the staged boiler energy, kWh.
    pub fn stage_backfill(&self, now: SimTime, rooms: &mut ThermalBatch, unit_w: f64) -> f64 {
        let mut kwh = 0.0;
        for (i, w) in self.workers.iter().enumerate() {
            if !w.is_failed() {
                continue;
            }
            let dt = now.saturating_since(w.last_tick());
            if dt <= SimDuration::ZERO {
                continue;
            }
            let slot = self.room_base + i;
            let demand = w.thermostat.demand(now, rooms.temperature_c(slot));
            let power = demand * unit_w;
            if power > 0.0 {
                rooms.stage(slot, dt, power);
                kwh += power * dt.as_secs_f64() / 3.6e6;
            }
        }
        kwh
    }

    /// Jobs owned by this cluster right now, by flow: queued plus
    /// running slices, as `(edge, dcc)` — the in-flight half of the
    /// platform's work-conservation ledger.
    pub fn in_flight_by_flow(&self) -> (u64, u64) {
        let mut edge = self.edge_queue.len() as u64;
        let mut dcc = self.dcc_queue.len() as u64;
        for w in &self.workers {
            for s in w.running() {
                if s.job.is_edge() {
                    edge += 1;
                } else {
                    dcc += 1;
                }
            }
        }
        (edge, dcc)
    }

    /// Complete the control loop on every worker after the fleet sweep:
    /// energy accounting, thermostat reads, regulator decisions.
    /// Returns (mean room temp, usable cores, mean demand).
    pub fn finish_control_tick(&mut self, now: SimTime, rooms: &ThermalBatch) -> (f64, usize, f64) {
        let queued_cores: usize = self
            .edge_queue
            .iter()
            .chain(self.dcc_queue.iter())
            .map(|j| j.cores)
            .sum();
        let n = self.workers.len();
        let mut temp_sum = 0.0;
        let mut demand_sum = 0.0;
        for (i, w) in self.workers.iter_mut().enumerate() {
            // Every worker sees the shared backlog (it may be assigned
            // any queued job next drain).
            let room_c = rooms.temperature_c(self.room_base + i);
            let d = w.complete_tick(now, room_c, queued_cores + w.busy_cores());
            temp_sum += room_c;
            demand_sum += d;
        }
        (
            temp_sum / n as f64,
            self.usable_cores(),
            demand_sum / n as f64,
        )
    }

    /// Run the full control loop on this cluster alone: stage, sweep,
    /// complete. Returns (mean room temp, usable cores, mean demand).
    pub fn control_tick(
        &mut self,
        now: SimTime,
        outdoor_c: f64,
        rooms: &mut ThermalBatch,
    ) -> (f64, usize, f64) {
        self.stage_thermal(now, rooms);
        rooms.step_staged(outdoor_c);
        self.finish_control_tick(now, rooms)
    }

    /// Remove a finished job from `worker`.
    pub fn finish(&mut self, worker: usize, id: JobId) {
        self.workers[worker].remove(id);
    }

    /// Total DF energy drawn so far, kWh (all workers).
    pub fn energy_kwh(&self) -> f64 {
        self.workers.iter().map(|w| w.energy_kwh()).sum()
    }

    /// Compute-attributable energy, kWh.
    pub fn compute_energy_kwh(&self) -> f64 {
        self.workers.iter().map(|w| w.compute_energy_kwh()).sum()
    }

    /// Checkpoint the cluster's dynamic state: every worker plus both
    /// ready queues. `room_base` and the worker skeletons are rebuilt
    /// by `Platform::new` from the config before the overlay.
    pub fn snapshot_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        use simcore::snapshot::Snapshot;
        w.put_usize(self.workers.len());
        for worker in &self.workers {
            worker.snapshot_state(w);
        }
        self.edge_queue.encode(w);
        self.dcc_queue.encode(w);
    }

    /// Overlay a checkpointed dynamic state onto a freshly built cluster.
    pub fn restore_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::{Snapshot, SnapshotError};
        let n = r.take_usize()?;
        if n != self.workers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "cluster {}: snapshot has {n} workers, config built {}",
                self.id,
                self.workers.len()
            )));
        }
        for worker in &mut self.workers {
            worker.restore_state(r)?;
        }
        self.edge_queue = ReadyQueue::decode(r)?;
        self.dcc_queue = ReadyQueue::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Flow, JobId};

    fn edge(id: u64, cores: usize) -> Job {
        Job {
            id: JobId(id),
            flow: Flow::EdgeIndirect,
            arrival: SimTime::ZERO,
            work_gops: 30.0,
            cores,
            deadline: Some(SimDuration::from_secs(30)),
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    fn dcc(id: u64, cores: usize, work: f64) -> Job {
        Job {
            id: JobId(id),
            flow: Flow::Dcc,
            arrival: SimTime::ZERO,
            work_gops: work,
            cores,
            deadline: None,
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    /// Chill every room so thermostats demand full heat: dispatching
    /// then goes through the wake path with a full power budget.
    fn chill(c: &mut ClusterSim, rooms: &mut ThermalBatch) {
        for w in 0..c.n_workers() {
            rooms.set_temperature_c(c.room_slot(w), 10.0);
        }
        c.control_tick(SimTime::ZERO, 0.0, rooms);
    }

    fn cluster_a() -> (ClusterSim, ThermalBatch) {
        let mut rooms = ThermalBatch::new();
        let mut c = ClusterSim::new(
            0,
            4,
            ArchClass::SharedWorkers {
                switch_cost: SimDuration::from_secs(2),
            },
            20.0,
            &mut rooms,
        );
        chill(&mut c, &mut rooms);
        (c, rooms)
    }

    fn cluster_b() -> (ClusterSim, ThermalBatch) {
        let mut rooms = ThermalBatch::new();
        let mut c = ClusterSim::new(
            0,
            4,
            ArchClass::DedicatedEdge {
                edge_workers: 1,
                vpn_overhead: SimDuration::from_micros(400),
            },
            20.0,
            &mut rooms,
        );
        chill(&mut c, &mut rooms);
        (c, rooms)
    }

    #[test]
    fn dispatch_lands_on_a_worker() {
        let (mut c, mut rooms) = cluster_a();
        match c.try_dispatch(SimTime::ZERO, 0.0, dcc(1, 4, 120.0), &mut rooms) {
            Dispatch::Started { finish, .. } => {
                assert_eq!(finish, SimTime::from_secs(10));
            }
            Dispatch::Full => panic!("cold cluster must have room"),
        }
        assert_eq!(c.load().busy_cores, 4);
    }

    #[test]
    fn arch_b_partitions_workers() {
        let (mut c, mut rooms) = cluster_b();
        // Edge jobs only fit the single dedicated worker (16 cores).
        match c.try_dispatch(SimTime::ZERO, 0.0, edge(1, 16), &mut rooms) {
            Dispatch::Started { worker, .. } => assert_eq!(worker, 0),
            Dispatch::Full => panic!("edge worker free"),
        }
        // A second edge job finds the edge worker full → Full even though
        // 3 DCC workers are idle.
        assert_eq!(
            c.try_dispatch(SimTime::ZERO, 0.0, edge(2, 1), &mut rooms),
            Dispatch::Full
        );
        // DCC jobs cannot use the dedicated edge worker.
        for i in 0..3 {
            match c.try_dispatch(SimTime::ZERO, 0.0, dcc(10 + i, 16, 100.0), &mut rooms) {
                Dispatch::Started { worker, .. } => assert!(worker >= 1),
                Dispatch::Full => panic!("DCC workers free"),
            }
        }
        assert_eq!(
            c.try_dispatch(SimTime::ZERO, 0.0, dcc(20, 1, 10.0), &mut rooms),
            Dispatch::Full
        );
    }

    #[test]
    fn full_cluster_reports_full_and_preempts() {
        let (mut c, mut rooms) = cluster_a();
        for i in 0..4 {
            assert!(matches!(
                c.try_dispatch(SimTime::ZERO, 0.0, dcc(i, 16, 1e5), &mut rooms),
                Dispatch::Started { .. }
            ));
        }
        let e = edge(100, 4);
        assert_eq!(
            c.try_dispatch(SimTime::ZERO, 0.0, e, &mut rooms),
            Dispatch::Full
        );
        let (worker, victims) = c
            .preempt_for(SimTime::from_secs(10), &e)
            .expect("preemptible DCC work exists");
        assert_eq!(victims.len(), 1, "one 16-core victim frees plenty");
        assert!(
            victims[0].work_gops < 1e5,
            "victim keeps only remaining work"
        );
        assert!(c.worker(worker).free_cores() >= 4);
    }

    #[test]
    fn queues_drain_in_priority_order() {
        let (mut c, mut rooms) = cluster_a();
        // Fill the cluster.
        for i in 0..4 {
            c.try_dispatch(SimTime::ZERO, 0.0, dcc(i, 16, 480.0), &mut rooms); // finish at t=10
        }
        c.edge_queue.push(edge(50, 4));
        c.dcc_queue.push(dcc(51, 4, 100.0));
        // Nothing drains while full.
        assert!(c.drain(SimTime::from_secs(5), 0.0, &mut rooms).is_empty());
        // Finish one worker's job → drain starts edge first, then DCC.
        c.finish(0, JobId(0));
        let started = c.drain(SimTime::from_secs(10), 0.0, &mut rooms);
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].1.id, JobId(50), "edge first");
        assert_eq!(started[1].1.id, JobId(51));
    }

    #[test]
    fn expired_edge_jobs_are_dropped() {
        let (mut c, _rooms) = cluster_a();
        c.edge_queue.push(edge(1, 4)); // 30 s deadline from t=0
        let expired = c.take_expired(SimTime::from_secs(31));
        assert_eq!(expired.len(), 1);
        assert!(c.edge_queue.is_empty());
    }

    #[test]
    fn warm_rooms_shrink_capacity() {
        // Capacity is heat-driven (§III-C): with a backlog queued, cold
        // rooms budget many cores; warm rooms budget none.
        let (mut c, mut rooms) = cluster_a();
        for i in 0..4 {
            c.dcc_queue.push(dcc(100 + i, 16, 1e6));
        }
        c.control_tick(SimTime::ZERO, 0.0, &mut rooms);
        let cold_cores = c.usable_cores();
        assert!(cold_cores >= 48, "cold cluster budget {cold_cores}");
        // Warm every room far above the setpoint.
        for w in 0..c.n_workers() {
            rooms.set_temperature_c(c.room_slot(w), 26.0);
        }
        c.control_tick(SimTime::from_secs(600), 20.0, &mut rooms);
        let warm_cores = c.usable_cores();
        assert_eq!(warm_cores, 0, "no heat demand, no capacity");
    }

    #[test]
    fn failed_workers_vanish_from_load_and_dispatch() {
        let (mut c, mut rooms) = cluster_a();
        assert_eq!(c.load().total_cores, 64);
        for w in 0..c.n_workers() {
            c.worker_mut(w).fail(SimTime::ZERO);
        }
        assert_eq!(c.load().total_cores, 0, "a dark cluster has no capacity");
        assert_eq!(c.load().utilisation(), 1.0, "…and never looks idle");
        assert_eq!(
            c.try_dispatch(SimTime::ZERO, 0.0, edge(1, 1), &mut rooms),
            Dispatch::Full
        );
    }

    #[test]
    fn backfill_stages_boiler_heat_for_failed_rooms_only() {
        let (mut c, mut rooms) = cluster_a();
        c.worker_mut(0).fail(SimTime::ZERO);
        // Cold rooms → full thermostat demand on the failed slot.
        for w in 0..c.n_workers() {
            rooms.set_temperature_c(c.room_slot(w), 10.0);
        }
        let before = rooms.temperature_c(c.room_slot(0));
        let t1 = SimTime::from_secs(600);
        c.stage_thermal(t1, &mut rooms);
        let kwh = c.stage_backfill(t1, &mut rooms, 500.0);
        rooms.step_staged(0.0);
        // 500 W × 600 s ≈ 0.083 kWh staged into the one failed room.
        assert!((kwh - 500.0 * 600.0 / 3.6e6).abs() < 1e-9, "kwh {kwh}");
        assert!(
            rooms.temperature_c(c.room_slot(0)) > before,
            "boiler must warm the dark room"
        );
    }

    #[test]
    fn in_flight_counts_queued_and_running_by_flow() {
        let (mut c, mut rooms) = cluster_a();
        c.try_dispatch(SimTime::ZERO, 0.0, dcc(1, 8, 100.0), &mut rooms);
        c.try_dispatch(SimTime::ZERO, 0.0, edge(2, 2), &mut rooms);
        c.edge_queue.push(edge(3, 1));
        assert_eq!(c.in_flight_by_flow(), (2, 1));
    }

    #[test]
    fn load_snapshot_is_consistent() {
        let (mut c, mut rooms) = cluster_a();
        c.try_dispatch(SimTime::ZERO, 0.0, dcc(1, 8, 100.0), &mut rooms);
        c.try_dispatch(SimTime::ZERO, 0.0, edge(2, 2), &mut rooms);
        let l = c.load();
        assert_eq!(l.total_cores, 64);
        assert_eq!(l.busy_cores, 10);
        assert_eq!(l.preemptible_cores, 8, "only the DCC job is preemptible");
    }
}
