//! The remote datacenter tier.
//!
//! Vertical offloading (§III-B) sends work "towards datacenter nodes";
//! the hybrid infrastructure (§III-A) processes requests "in classical
//! datacenter nodes" when no heat is wanted. The datacenter here is a
//! fixed pool of Xeon cores behind a WAN, FIFO-scheduled, with cooling
//! overhead charged per joule (the PUE gap of experiment E2).

use dfhw::dvfs::DvfsLadder;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workloads::{Job, JobId};

/// Datacenter configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DatacenterConfig {
    pub cores: usize,
    /// One-way WAN latency from the clusters.
    pub wan_latency: SimDuration,
    /// Cooling + distribution overhead per IT joule (PUE − 1).
    pub overhead_ratio: f64,
}

impl DatacenterConfig {
    pub fn standard(cores: usize) -> Self {
        DatacenterConfig {
            cores,
            wan_latency: SimDuration::from_millis(22),
            overhead_ratio: 0.55,
        }
    }
}

/// The datacenter pool.
#[derive(Debug, Clone)]
pub struct Datacenter {
    pub config: DatacenterConfig,
    gops_per_core: f64,
    watts_per_core: f64,
    busy_cores: usize,
    queue: VecDeque<Job>,
    running: Vec<(Job, usize, SimTime)>,
    /// IT energy, J.
    it_energy_j: f64,
    last_energy_update: SimTime,
    completed: u64,
}

impl Datacenter {
    pub fn new(config: DatacenterConfig) -> Self {
        let ladder = DvfsLadder::server_xeon();
        let top = ladder.n_states() - 1;
        Datacenter {
            config,
            gops_per_core: ladder.throughput(top),
            watts_per_core: ladder.power_w(top, 1.0),
            busy_cores: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            it_energy_j: 0.0,
            last_energy_update: SimTime::ZERO,
            completed: 0,
        }
    }

    pub fn free_cores(&self) -> usize {
        self.config.cores - self.busy_cores
    }

    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Jobs queued plus running, by flow, as `(edge, dcc)` — the
    /// datacenter leg of the platform's work-conservation ledger.
    pub fn in_flight_by_flow(&self) -> (u64, u64) {
        let mut edge = 0u64;
        let mut dcc = 0u64;
        for j in self
            .queue
            .iter()
            .chain(self.running.iter().map(|(j, _, _)| j))
        {
            if j.is_edge() {
                edge += 1;
            } else {
                dcc += 1;
            }
        }
        (edge, dcc)
    }

    fn accrue_energy(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_energy_update).as_secs_f64();
        self.it_energy_j += self.busy_cores as f64 * self.watts_per_core * dt;
        self.last_energy_update = now;
    }

    /// Submit a job; returns the finish time if it starts immediately,
    /// or `None` if it queued. (The WAN latency is accounted by the
    /// caller, which knows the request's origin.)
    pub fn submit(&mut self, now: SimTime, job: Job) -> Option<SimTime> {
        self.accrue_energy(now);
        if self.free_cores() >= job.cores {
            let finish = now + job.service_time(self.gops_per_core);
            self.busy_cores += job.cores;
            self.running.push((job, job.cores, finish));
            Some(finish)
        } else {
            self.queue.push_back(job);
            None
        }
    }

    /// Complete a job at `now`; returns jobs that can now start, with
    /// their finish times (the caller schedules their completions).
    pub fn complete(&mut self, now: SimTime, id: JobId) -> Vec<(Job, SimTime)> {
        self.accrue_energy(now);
        let idx = self
            .running
            .iter()
            .position(|(j, _, _)| j.id == id)
            .unwrap_or_else(|| panic!("job {id:?} not running in datacenter"));
        let (_, cores, _) = self.running.swap_remove(idx);
        self.busy_cores -= cores;
        self.completed += 1;
        let mut started = Vec::new();
        while let Some(front) = self.queue.front() {
            if front.cores > self.free_cores() {
                break;
            }
            let job = self.queue.pop_front().expect("non-empty");
            let finish = now + job.service_time(self.gops_per_core);
            self.busy_cores += job.cores;
            self.running.push((job, job.cores, finish));
            started.push((job, finish));
        }
        started
    }

    /// Total facility energy so far (IT × (1 + overhead)), kWh.
    pub fn facility_kwh(&mut self, now: SimTime) -> f64 {
        self.accrue_energy(now);
        self.it_energy_j * (1.0 + self.config.overhead_ratio) / 3.6e6
    }

    /// IT-only energy, kWh.
    pub fn it_kwh(&mut self, now: SimTime) -> f64 {
        self.accrue_energy(now);
        self.it_energy_j / 3.6e6
    }

    /// Service speed, Gops per core.
    pub fn gops_per_core(&self) -> f64 {
        self.gops_per_core
    }

    /// Checkpoint the pool's dynamic state. Config and the Xeon speed
    /// grades are rebuilt from the platform config on restore.
    pub fn snapshot_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        use simcore::snapshot::Snapshot;
        w.put_usize(self.busy_cores);
        self.queue.encode(w);
        self.running.encode(w);
        w.put_f64(self.it_energy_j);
        self.last_energy_update.encode(w);
        w.put_u64(self.completed);
    }

    /// Overlay a checkpointed dynamic state onto a fresh pool.
    pub fn restore_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::{Snapshot, SnapshotError};
        self.busy_cores = r.take_usize()?;
        self.queue = VecDeque::decode(r)?;
        self.running = Vec::decode(r)?;
        self.it_energy_j = r.take_f64()?;
        self.last_energy_update = SimTime::decode(r)?;
        self.completed = r.take_u64()?;
        let occupied: usize = self.running.iter().map(|(_, c, _)| *c).sum();
        if occupied != self.busy_cores || self.busy_cores > self.config.cores {
            return Err(SnapshotError::Corrupt(format!(
                "datacenter ledger: {} busy cores vs {} running on a {}-core pool",
                self.busy_cores, occupied, self.config.cores
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Flow;

    fn job(id: u64, cores: usize, work: f64) -> Job {
        Job {
            id: JobId(id),
            flow: Flow::Dcc,
            arrival: SimTime::ZERO,
            work_gops: work,
            cores,
            deadline: None,
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    #[test]
    fn immediate_start_when_free() {
        let mut dc = Datacenter::new(DatacenterConfig::standard(8));
        let f = dc.submit(SimTime::ZERO, job(1, 4, 120.0)).unwrap();
        // 120 Gop / (4 × 3 Gops) = 10 s.
        assert_eq!(f, SimTime::from_secs(10));
        assert_eq!(dc.free_cores(), 4);
    }

    #[test]
    fn queues_when_full_and_drains_fifo() {
        let mut dc = Datacenter::new(DatacenterConfig::standard(4));
        dc.submit(SimTime::ZERO, job(1, 4, 120.0)).unwrap();
        assert!(dc.submit(SimTime::ZERO, job(2, 2, 60.0)).is_none());
        assert!(dc.submit(SimTime::ZERO, job(3, 2, 60.0)).is_none());
        assert_eq!(dc.queued(), 2);
        let started = dc.complete(SimTime::from_secs(10), JobId(1));
        assert_eq!(started.len(), 2, "both queued 2-core jobs start");
        assert_eq!(dc.queued(), 0);
        assert_eq!(dc.free_cores(), 0);
        assert_eq!(started[0].1, SimTime::from_secs(20));
    }

    #[test]
    fn fifo_respects_head_blocking() {
        let mut dc = Datacenter::new(DatacenterConfig::standard(6));
        dc.submit(SimTime::ZERO, job(1, 3, 90.0)).unwrap();
        dc.submit(SimTime::ZERO, job(2, 3, 900.0)).unwrap();
        assert!(dc.submit(SimTime::ZERO, job(3, 4, 60.0)).is_none()); // head of queue
        assert!(dc.submit(SimTime::ZERO, job(4, 2, 30.0)).is_none()); // would fit, but behind head
                                                                      // Completing job 1 frees 3 cores; the head needs 4 → strict FIFO
                                                                      // starts nothing, even though job 4 would fit.
        let started = dc.complete(SimTime::from_secs(10), JobId(1));
        assert!(started.is_empty());
        assert_eq!(dc.queued(), 2);
    }

    #[test]
    fn energy_accrues_with_overhead() {
        let mut dc = Datacenter::new(DatacenterConfig::standard(8));
        dc.submit(SimTime::ZERO, job(1, 8, 8.0 * 3.0 * 3_600.0))
            .unwrap(); // 1 h on 8 cores
        let one_hour = SimTime::ZERO + SimDuration::HOUR;
        dc.complete(one_hour, JobId(1));
        let it = dc.it_kwh(one_hour);
        let fac = dc.facility_kwh(one_hour);
        let expected_it = 8.0 * dc.watts_per_core / 1_000.0;
        assert!((it - expected_it).abs() < 1e-6);
        assert!((fac / it - 1.55).abs() < 1e-9, "PUE 1.55");
    }

    #[test]
    #[should_panic]
    fn completing_unknown_job_panics() {
        let mut dc = Datacenter::new(DatacenterConfig::standard(4));
        dc.complete(SimTime::ZERO, JobId(7));
    }
}
