//! # df3_core — Data Furnace in Three Flows
//!
//! The paper's primary contribution (§II-C, Figures 3 and 5): one
//! platform that services **heating requests**, **Internet (DCC)
//! computing requests**, and **local edge computing requests** (direct
//! and indirect) from the same fleet of data-furnace servers.
//!
//! - [`regulator`]: the per-server DVFS heat regulator of §III-B —
//!   translate a thermostat's heat demand into a power budget, a
//!   P-state, a usable-core count, and (when no compute is available)
//!   a resistive-backup share.
//! - [`worker`]: one DF server in one room — server power heats the
//!   room, the thermostat closes the loop, cores run jobs.
//! - [`cluster`]: a gateway-fronted cluster of workers implementing
//!   both §III-B architectures: class A (shared workers, context-switch
//!   and isolation costs) and class B (dedicated edge workers in a VPN).
//! - [`datacenter`]: the remote overflow tier for vertical offloading
//!   and the hybrid §III-A design.
//! - [`platform`]: the discrete-event model wiring weather, rooms,
//!   clusters, datacenter, request flows, policies, and metrics.
//! - [`stats`]: everything the experiments measure.
//! - [`smartgrid`]: the smart-grid manager of §III-A — monthly capacity
//!   offers negotiated from predicted heat demand.
//! - [`boiler`]: the digital-boiler variant of §II-B/§III-C — DHW
//!   tanks give stable year-round capacity, always-on mode trades it
//!   for waste heat.
//! - [`faults`]: deterministic fault injection and recovery (§IV) —
//!   declarative [`FaultPlan`]s composing worker churn, cluster
//!   blackouts, master outages, link faults, and sensor faults, plus
//!   retry/quarantine/boiler-backfill recovery.
//! - [`config`]: platform configuration presets.
//! - [`report`]: run exporters — JSONL report, Chrome trace-event
//!   timeline, Prometheus text snapshot — over one run's stats, flight
//!   recorder, and phase profiler.

pub mod boiler;
pub mod cluster;
pub mod config;
pub mod datacenter;
pub mod faults;
pub mod platform;
pub mod regulator;
pub mod report;
pub mod smartgrid;
pub mod stats;
pub mod worker;

pub use config::{ArchClass, PlatformConfig, WatchdogConfig};
pub use faults::{FaultPlan, RecoveryPolicy, SensorFaultKind, Window};
pub use platform::{PausedRun, Platform, PlatformOutcome, RunTo};
pub use regulator::{HeatRegulator, RegulatorDecision};
pub use report::{ExportOptions, RunReport};
