//! The DF3 platform: the discrete-event model of Figure 3 / Figure 5.
//!
//! Wires together weather, per-room thermals, the DVFS regulators, the
//! cluster gateways and queues, the peak-management policies, and the
//! remote datacenter, then runs a [`workloads::job::JobStream`] through
//! the three flows and reports [`PlatformStats`].
//!
//! ## Network accounting
//!
//! Message delays are analytic (the links are never congested in these
//! experiments): each job's response time includes its flow's ingress
//! and egress path costs — device↔worker for direct edge, the extra
//! master hop for indirect edge (§II-C), the VPN overhead under
//! architecture B, an inter-cluster fiber hop for horizontal offloads,
//! and the WAN for anything that lands in the datacenter.

use crate::cluster::{ClusterSim, Dispatch};
use crate::config::{ArchClass, PlatformConfig};
use crate::datacenter::{Datacenter, DatacenterConfig};
use crate::stats::PlatformStats;
use dfnet::link::Link;
use dfnet::protocol::Protocol;
use sched::PeakAction;
use simcore::engine::{Engine, Model, Scheduler};
use simcore::event::EventId;
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;
use thermal::batch::ThermalBatch;
use thermal::weather::{Weather, WeatherConfig, WeatherTable};
use workloads::job::JobStream;
use workloads::{Flow, Job, JobId};

/// Where a job's service happened (for network accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Venue {
    Local { cluster: usize },
    Horizontal { from: usize, to: usize },
    Datacenter,
}

/// Events of the platform model.
#[derive(Debug, Clone)]
enum Ev {
    Arrival(Job),
    FinishLocal {
        cluster: usize,
        worker: usize,
        job: Job,
        venue: Venue,
    },
    FinishDc {
        job: Job,
    },
    ControlTick,
    WorkerFail {
        cluster: usize,
        worker: usize,
    },
    WorkerRepair {
        cluster: usize,
        worker: usize,
    },
}

/// Finish-event handles of running local jobs, indexed by global worker
/// slot (`cluster * workers_per_cluster + worker`). Every lookup site
/// knows the worker, and a worker runs only a handful of concurrent
/// slices, so a linear scan of a small per-slot vector replaces hashing
/// `JobId`s on every dispatch, finish, preemption, and failure.
struct RunningEvents {
    slots: Vec<Vec<(JobId, EventId)>>,
}

impl RunningEvents {
    fn new(n_slots: usize) -> Self {
        RunningEvents {
            slots: vec![Vec::new(); n_slots],
        }
    }

    fn insert(&mut self, slot: usize, job: JobId, ev: EventId) {
        self.slots[slot].push((job, ev));
    }

    fn remove(&mut self, slot: usize, job: JobId) -> Option<EventId> {
        let v = &mut self.slots[slot];
        let ix = v.iter().position(|&(j, _)| j == job)?;
        Some(v.swap_remove(ix).1)
    }
}

/// The assembled platform (a `simcore::Model`).
pub struct Platform {
    config: PlatformConfig,
    /// Tabulated weather trace: `outdoor_c` is two loads and a lerp.
    weather: WeatherTable,
    /// Every room in the fleet, in one SoA batch (cluster `c`, worker
    /// `w` lives at slot `wslot(c, w)`), stepped in one sweep per
    /// control tick.
    rooms: ThermalBatch,
    clusters: Vec<ClusterSim>,
    datacenter: Option<Datacenter>,
    /// Finish-event handles of running local jobs, for preemption.
    running_events: RunningEvents,
    pub stats: PlatformStats,
    // Link models (uncongested, analytic).
    lan: Link,
    device_link: Link,
    fiber: Link,
    wan: Link,
    last_energy_sample: SimTime,
    /// Seed-derived streams (worker-failure processes).
    streams: RngStreams,
}

/// Outcome of a platform run.
#[derive(Debug)]
pub struct PlatformOutcome {
    pub stats: PlatformStats,
    pub events: u64,
    pub end: SimTime,
    /// High-water mark of concurrently pending events in the engine.
    pub peak_queue: usize,
}

impl Platform {
    /// Build a platform from a config (weather is derived from the seed).
    pub fn new(config: PlatformConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("bad config: {e}"));
        let streams = RngStreams::new(config.seed);
        let weather = WeatherTable::tabulate(&Weather::generate(
            WeatherConfig::paris(config.calendar),
            config.horizon + SimDuration::DAY,
            &streams,
        ));
        let n_worker_slots = config.n_clusters * config.workers_per_cluster;
        let mut rooms = ThermalBatch::with_capacity(n_worker_slots);
        rooms.set_scalar_reference(config.scalar_thermal);
        let clusters = (0..config.n_clusters)
            .map(|i| {
                ClusterSim::new(
                    i,
                    config.workers_per_cluster,
                    config.arch,
                    config.setpoint_c,
                    &mut rooms,
                )
            })
            .collect();
        let datacenter = (config.datacenter_cores > 0)
            .then(|| Datacenter::new(DatacenterConfig::standard(config.datacenter_cores)));
        Platform {
            config,
            weather,
            rooms,
            clusters,
            datacenter,
            running_events: RunningEvents::new(n_worker_slots),
            stats: PlatformStats::new(),
            lan: Link::new(Protocol::EthernetLan),
            device_link: Link::new(Protocol::Wifi),
            fiber: Link::new(Protocol::Fiber),
            wan: Link::new(Protocol::WanInternet).with_extra_latency(0.022),
            last_energy_sample: SimTime::ZERO,
            streams,
        }
    }

    /// Run `jobs` through the platform. Consumes self.
    pub fn run(self, jobs: &JobStream) -> PlatformOutcome {
        let horizon = SimTime::ZERO + self.config.horizon;
        let mut engine = Engine::new(
            PlatformModel {
                p: self,
                jobs: jobs.jobs().to_vec(),
            },
            horizon,
        );
        engine.event_budget = 500_000_000;
        let (model, summary) = engine.run();
        let mut p = model.p;
        p.finalise_energy(summary.end_time);
        PlatformOutcome {
            stats: p.stats,
            events: summary.events,
            end: summary.end_time,
            peak_queue: summary.peak_queue,
        }
    }

    fn outdoor(&self, t: SimTime) -> f64 {
        self.weather.outdoor_c(t)
    }

    /// Global worker-slot index for the running-events map.
    #[inline]
    fn wslot(&self, cluster: usize, worker: usize) -> usize {
        cluster * self.config.workers_per_cluster + worker
    }

    /// Draw the next failure time for a worker after `after` from its
    /// exponential failure process (None when failures are disabled).
    fn next_failure(&self, cluster: usize, worker: usize, after: SimTime) -> Option<SimTime> {
        let mtbf = self.config.worker_mtbf?;
        let idx = (cluster * self.config.workers_per_cluster + worker) as u64;
        // One independent stream per (worker, epoch): advance the stream
        // by hashing the current time in so repeated draws differ.
        let mut rng = self.streams.stream_indexed(
            "worker-failures",
            idx ^ (after.as_micros() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let gap = simcore::dist::exponential(&mut rng, 1.0 / mtbf.as_secs_f64());
        Some(after + SimDuration::from_secs_f64(gap))
    }

    /// Whether the master nodes are inside their configured outage.
    fn master_down(&self, now: SimTime) -> bool {
        match self.config.master_outage {
            Some((a, b)) => now >= SimTime::ZERO + a && now < SimTime::ZERO + b,
            None => false,
        }
    }

    /// Network time added to a job's response by its flow and venue.
    fn net_penalty(&self, job: &Job, venue: Venue) -> SimDuration {
        let ingress_local = match job.flow {
            Flow::EdgeDirect => self.device_link.transfer_time(job.input_bytes),
            Flow::EdgeIndirect => {
                // Device → gateway → master → worker (§II-C's extra hop).
                self.device_link.transfer_time(job.input_bytes)
                    + self.lan.transfer_time(job.input_bytes)
                    + self.lan.transfer_time(job.input_bytes)
            }
            Flow::Dcc => self.fiber.transfer_time(job.input_bytes),
        };
        let egress_local = match job.flow {
            Flow::EdgeDirect | Flow::EdgeIndirect => {
                self.device_link.transfer_time(job.output_bytes)
            }
            Flow::Dcc => self.fiber.transfer_time(job.output_bytes),
        };
        let vpn = match (self.config.arch, job.is_edge()) {
            (ArchClass::DedicatedEdge { vpn_overhead, .. }, true) => vpn_overhead * 2,
            _ => SimDuration::ZERO,
        };
        let venue_extra = match venue {
            Venue::Local { .. } => SimDuration::ZERO,
            Venue::Horizontal { .. } => {
                self.fiber.transfer_time(job.input_bytes)
                    + self.fiber.transfer_time(job.output_bytes)
            }
            Venue::Datacenter => {
                self.wan.transfer_time(job.input_bytes) + self.wan.transfer_time(job.output_bytes)
            }
        };
        ingress_local + egress_local + vpn + venue_extra
    }

    /// Record a completion.
    fn record_completion(&mut self, now: SimTime, job: &Job, venue: Venue) {
        let response = now.saturating_since(job.arrival) + self.net_penalty(job, venue);
        let finish_with_net = job.arrival + response;
        if job.is_edge() {
            let met = job.meets_deadline(finish_with_net);
            self.stats
                .record_edge(response.as_millis_f64(), met, job.work_gops, job.org);
        } else {
            // Ideal: full-speed local run with no waiting.
            let ideal = job.service_time(3.0) + self.net_penalty(job, Venue::Local { cluster: 0 });
            self.stats.record_dcc(
                response.as_secs_f64(),
                ideal.as_secs_f64(),
                job.work_gops,
                job.org,
                venue == Venue::Datacenter,
            );
        }
    }

    /// Home cluster of a job: edge requests originate in a specific
    /// building; DCC requests are load-balanced to the emptiest cluster.
    fn route_cluster(&self, job: &Job) -> usize {
        if job.is_edge() {
            (job.id.0 as usize).wrapping_mul(0x9E37_79B9).rotate_left(7) % self.clusters.len()
        } else {
            (0..self.clusters.len())
                .max_by_key(|&i| {
                    let l = self.clusters[i].load();
                    (l.free_cores(), usize::MAX - i)
                })
                .expect("at least one cluster")
        }
    }

    fn submit_to_dc(&mut self, now: SimTime, job: Job, sched: &mut Scheduler<Ev>) -> bool {
        let Some(dc) = self.datacenter.as_mut() else {
            return false;
        };
        match dc.submit(now, job) {
            Some(finish) => {
                sched.at(finish, Ev::FinishDc { job });
            }
            None => { /* queued in the DC; completion scheduled on start */ }
        }
        true
    }

    fn start_local(
        &mut self,
        cluster: usize,
        worker: usize,
        job: Job,
        finish: SimTime,
        venue: Venue,
        sched: &mut Scheduler<Ev>,
    ) {
        let ev = sched.at(
            finish,
            Ev::FinishLocal {
                cluster,
                worker,
                job,
                venue,
            },
        );
        let slot = self.wslot(cluster, worker);
        self.running_events.insert(slot, job.id, ev);
    }

    /// Handle a job that found its home cluster full: consult the peak
    /// policy and carry out the action.
    fn handle_full(&mut self, now: SimTime, home: usize, job: Job, sched: &mut Scheduler<Ev>) {
        let outdoor = self.outdoor(now);
        let local = self.clusters[home].load();
        let siblings: Vec<sched::ClusterLoad> = self
            .clusters
            .iter()
            .filter(|c| c.id != home)
            .map(|c| c.load())
            .collect();
        let action = self.config.peak_policy.decide(&job, &local, &siblings);
        match action {
            PeakAction::Preempt => {
                if let Some((worker, victims)) = self.clusters[home].preempt_for(now, &job) {
                    let slot = self.wslot(home, worker);
                    for v in victims {
                        let ev = self
                            .running_events
                            .remove(slot, v.id)
                            .expect("victim had a finish event");
                        sched.cancel(ev);
                        self.stats.preemptions.inc();
                        self.clusters[home].dcc_queue.push(v);
                    }
                    let cost = match self.config.arch {
                        ArchClass::SharedWorkers { switch_cost } => switch_cost,
                        _ => SimDuration::ZERO,
                    };
                    let finish = self.clusters[home]
                        .worker_mut(worker)
                        .dispatch(now, job, cost)
                        .expect("preemption freed the cores");
                    self.start_local(
                        home,
                        worker,
                        job,
                        finish,
                        Venue::Local { cluster: home },
                        sched,
                    );
                } else {
                    self.enqueue(home, job);
                }
            }
            PeakAction::OffloadVertical => {
                if self.submit_to_dc(now, job, sched) {
                    self.stats.offload_vertical.inc();
                } else {
                    self.enqueue(home, job);
                }
            }
            PeakAction::OffloadHorizontal { target } => {
                match self.clusters[target].try_dispatch(now, outdoor, job, &mut self.rooms) {
                    Dispatch::Started { worker, finish } => {
                        self.stats.offload_horizontal.inc();
                        self.start_local(
                            target,
                            worker,
                            job,
                            finish,
                            Venue::Horizontal {
                                from: home,
                                to: target,
                            },
                            sched,
                        );
                    }
                    Dispatch::Full => self.enqueue(target, job),
                }
            }
            PeakAction::Delay => {
                self.stats.delays.inc();
                self.enqueue(home, job);
            }
            PeakAction::Reject => {
                if job.is_edge() {
                    self.stats.edge_rejected.inc();
                } else {
                    self.stats.dcc_rejected.inc();
                }
            }
        }
    }

    fn enqueue(&mut self, cluster: usize, job: Job) {
        if job.is_edge() {
            self.clusters[cluster].edge_queue.push(job);
        } else {
            self.clusters[cluster].dcc_queue.push(job);
        }
    }

    /// Start everything a cluster's drain released.
    fn drain_cluster(&mut self, now: SimTime, cluster: usize, sched: &mut Scheduler<Ev>) {
        let outdoor = self.outdoor(now);
        for job in self.clusters[cluster].take_expired(now) {
            let _ = job;
            self.stats.edge_expired.inc();
        }
        let started = self.clusters[cluster].drain(now, outdoor, &mut self.rooms);
        for (worker, job, finish) in started {
            self.start_local(
                cluster,
                worker,
                job,
                finish,
                Venue::Local { cluster },
                sched,
            );
        }
    }

    fn finalise_energy(&mut self, end: SimTime) {
        // Close each worker's energy integral by a final control tick.
        // The weather wraps past its span, so no clamp is needed even
        // when the engine overruns the generated trace.
        let outdoor = self.outdoor(end);
        for c in &mut self.clusters {
            c.control_tick(end, outdoor, &mut self.rooms);
        }
        self.stats.df_total_kwh = self.clusters.iter().map(|c| c.energy_kwh()).sum();
        self.stats.df_compute_kwh = self.clusters.iter().map(|c| c.compute_energy_kwh()).sum();
        if let Some(dc) = self.datacenter.as_mut() {
            self.stats.dc_it_kwh = dc.it_kwh(end);
            self.stats.dc_facility_kwh = dc.facility_kwh(end);
        }
        self.last_energy_sample = end;
    }
}

struct PlatformModel {
    p: Platform,
    jobs: Vec<Job>,
}

impl Model for PlatformModel {
    type Event = Ev;

    fn init(&mut self, sched: &mut Scheduler<Ev>) {
        for job in &self.jobs {
            if job.arrival < sched.horizon() {
                sched.at(job.arrival, Ev::Arrival(*job));
            }
        }
        sched.immediately(Ev::ControlTick);
        if self.p.config.worker_mtbf.is_some() {
            for c in 0..self.p.config.n_clusters {
                for w in 0..self.p.config.workers_per_cluster {
                    if let Some(at) = self.p.next_failure(c, w, SimTime::ZERO) {
                        if at < sched.horizon() {
                            sched.at(
                                at,
                                Ev::WorkerFail {
                                    cluster: c,
                                    worker: w,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrival(mut job) => {
                // Master outage (§IV): indirect edge requests need the
                // master; they fail — or degrade to direct under the
                // resource-oriented fallback.
                if job.flow == Flow::EdgeIndirect && self.p.master_down(now) {
                    if self.p.config.roc_fallback_direct {
                        job.flow = Flow::EdgeDirect;
                    } else {
                        self.p.stats.edge_rejected.inc();
                        return;
                    }
                }
                let home = self.p.route_cluster(&job);
                let load = self.p.clusters[home].load();
                if !self.p.config.admission.admit(&job, &load) {
                    if job.is_edge() {
                        self.p.stats.edge_rejected.inc();
                    } else {
                        self.p.stats.dcc_rejected.inc();
                    }
                    return;
                }
                let outdoor = self.p.outdoor(now);
                match self.p.clusters[home].try_dispatch(now, outdoor, job, &mut self.p.rooms) {
                    Dispatch::Started { worker, finish } => {
                        self.p.start_local(
                            home,
                            worker,
                            job,
                            finish,
                            Venue::Local { cluster: home },
                            sched,
                        );
                    }
                    Dispatch::Full => self.p.handle_full(now, home, job, sched),
                }
            }
            Ev::FinishLocal {
                cluster,
                worker,
                job,
                venue,
            } => {
                let slot = self.p.wslot(cluster, worker);
                self.p
                    .running_events
                    .remove(slot, job.id)
                    .expect("finished job had a tracked event");
                self.p.clusters[cluster].finish(worker, job.id);
                self.p.record_completion(now, &job, venue);
                self.p.drain_cluster(now, cluster, sched);
            }
            Ev::FinishDc { job } => {
                let started = self
                    .p
                    .datacenter
                    .as_mut()
                    .expect("DC event without a DC")
                    .complete(now, job.id);
                self.p.record_completion(now, &job, Venue::Datacenter);
                for (j, finish) in started {
                    sched.at(finish, Ev::FinishDc { job: j });
                }
            }
            Ev::WorkerFail { cluster, worker } => {
                self.p.stats.worker_failures.inc();
                let orphans = self.p.clusters[cluster].worker_mut(worker).fail(now);
                let slot = self.p.wslot(cluster, worker);
                for job in orphans {
                    if let Some(ev) = self.p.running_events.remove(slot, job.id) {
                        sched.cancel(ev);
                    }
                    self.p.enqueue(cluster, job);
                }
                sched.after(
                    self.p.config.worker_repair_time,
                    Ev::WorkerRepair { cluster, worker },
                );
                // Orphaned work may fit elsewhere right away.
                self.p.drain_cluster(now, cluster, sched);
            }
            Ev::WorkerRepair { cluster, worker } => {
                self.p.clusters[cluster].worker_mut(worker).repair();
                if let Some(at) = self.p.next_failure(cluster, worker, now) {
                    if at < sched.horizon() {
                        sched.at(at, Ev::WorkerFail { cluster, worker });
                    }
                }
                self.p.drain_cluster(now, cluster, sched);
            }
            Ev::ControlTick => {
                let outdoor = self.p.outdoor(now);
                let mut temp = 0.0;
                let mut usable = 0usize;
                let mut demand = 0.0;
                let n = self.p.clusters.len();
                // Stage every worker's pending interval, then advance
                // the entire fleet's thermals in ONE sweep over the SoA
                // batch — the district-scale fast path.
                for c in &self.p.clusters {
                    c.stage_thermal(now, &mut self.p.rooms);
                }
                self.p.rooms.step_staged(outdoor);
                for i in 0..n {
                    let (t, u, d) = self.p.clusters[i].finish_control_tick(now, &self.p.rooms);
                    temp += t;
                    usable += u;
                    demand += d;
                    self.p.drain_cluster(now, i, sched);
                }
                self.p
                    .stats
                    .sample_tick(now, temp / n as f64, usable as f64, demand / n as f64);
                sched.after(self.p.config.control_period, Ev::ControlTick);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::edge::{location_service_jobs, LocationServiceConfig};

    fn tiny_config() -> PlatformConfig {
        PlatformConfig {
            n_clusters: 2,
            workers_per_cluster: 4,
            horizon: SimDuration::from_hours(6),
            datacenter_cores: 64,
            ..PlatformConfig::small_winter()
        }
    }

    fn edge_stream(hours: i64) -> JobStream {
        location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeIndirect),
            SimDuration::from_hours(hours),
            &RngStreams::new(77),
            0,
        )
    }

    #[test]
    fn edge_requests_complete_fast_in_winter() {
        let p = Platform::new(tiny_config());
        let jobs = edge_stream(6);
        let n_jobs = jobs.len() as u64;
        let out = p.run(&jobs);
        let s = &out.stats;
        assert!(
            s.edge_completed.get() > n_jobs * 9 / 10,
            "{}/{} completed",
            s.edge_completed.get(),
            n_jobs
        );
        assert!(
            s.edge_attainment() > 0.95,
            "attainment {}",
            s.edge_attainment()
        );
        assert!(
            s.edge_response_ms.p50() < 100.0,
            "p50 {} ms should be edge-scale (compute + LAN)",
            s.edge_response_ms.p50()
        );
    }

    #[test]
    fn dcc_overflow_reaches_datacenter() {
        use workloads::dcc::{finance_jobs, FinanceConfig};
        let mut cfg = tiny_config();
        cfg.peak_policy = sched::PeakPolicy::VerticalFirst;
        // 2×4 Q.rads = 128 cores; a heavy finance stream overflows them.
        let mut fin = FinanceConfig::bank();
        fin.batches_per_day = 600.0;
        let jobs = finance_jobs(fin, SimDuration::from_hours(6), &RngStreams::new(3), 0);
        let out = Platform::new(cfg).run(&jobs);
        assert!(out.stats.offload_vertical.get() > 0, "peaks must offload");
        assert!(out.stats.dc_share() > 0.0);
        assert!(out.stats.dcc_completed.get() > 0);
    }

    #[test]
    fn rooms_are_heated_to_comfort() {
        // Cover a full day so the daytime setpoint (20 °C) is exercised —
        // the first 6 h are night setback (17 °C) where no warming is due.
        let mut cfg = tiny_config();
        cfg.horizon = SimDuration::from_hours(24);
        let p = Platform::new(cfg);
        let jobs = edge_stream(24);
        let out = p.run(&jobs);
        let temps = out.stats.room_temp_c.summary();
        // Starting ~17 °C, rooms must climb toward the 20 °C day setpoint.
        assert!(
            temps.max() > 18.5,
            "rooms should warm up, max mean {}",
            temps.max()
        );
        // And never run away past the setpoint band (no waste heat).
        assert!(temps.max() < 22.0, "no overshoot, got {}", temps.max());
    }

    #[test]
    fn energy_is_accounted() {
        let p = Platform::new(tiny_config());
        let out = p.run(&edge_stream(6));
        assert!(
            out.stats.df_total_kwh > 0.5,
            "kwh {}",
            out.stats.df_total_kwh
        );
        assert!(out.stats.df_compute_kwh <= out.stats.df_total_kwh);
        assert!(out.stats.pue() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let jobs = edge_stream(3);
        let a = Platform::new(tiny_config()).run(&jobs);
        let b = Platform::new(tiny_config()).run(&jobs);
        assert_eq!(a.events, b.events);
        assert_eq!(
            a.stats.edge_response_ms.p99(),
            b.stats.edge_response_ms.p99()
        );
        assert_eq!(a.stats.df_total_kwh, b.stats.df_total_kwh);
    }

    #[test]
    fn preempt_policy_fires_under_pressure() {
        use workloads::dcc::{boinc_jobs, BoincConfig};
        use workloads::job::JobStream;
        let mut cfg = tiny_config();
        cfg.peak_policy = sched::PeakPolicy::Hybrid;
        cfg.datacenter_cores = 64;
        // A 2 s container swap would blow every 300 ms edge deadline on
        // preemption (that effect is measured by experiment E4); here use
        // a light swap so the preemption path itself is what's tested.
        cfg.arch = ArchClass::SharedWorkers {
            switch_cost: SimDuration::from_millis(100),
        };
        // Saturate with BOINC work, then add edge traffic.
        let mut boinc = BoincConfig::standard();
        boinc.tasks_per_hour = 4_000.0;
        boinc.mean_work_gops = 40_000.0;
        let bg = boinc_jobs(boinc, SimDuration::from_hours(6), &RngStreams::new(5), 0);
        let edge = location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeIndirect),
            SimDuration::from_hours(6),
            &RngStreams::new(5),
            10_000_000,
        );
        let jobs = bg.merge(edge);
        let out = Platform::new(cfg).run(&jobs);
        assert!(
            out.stats.preemptions.get() > 0,
            "saturated cluster must preempt for edge"
        );
        assert!(out.stats.edge_attainment() > 0.8);
        let _ = JobStream::new(vec![]);
    }

    #[test]
    fn batched_and_scalar_thermal_are_bit_identical() {
        // The whole point of keeping `Room::step` alive behind
        // `scalar_thermal`: the SoA fast path must not change a single
        // bit of any platform-level statistic.
        let jobs = edge_stream(6);
        let mut cfg = tiny_config();
        cfg.scalar_thermal = false;
        let fast = Platform::new(cfg.clone()).run(&jobs);
        cfg.scalar_thermal = true;
        let slow = Platform::new(cfg).run(&jobs);

        assert_eq!(fast.events, slow.events);
        assert_eq!(fast.stats.df_total_kwh, slow.stats.df_total_kwh);
        assert_eq!(fast.stats.df_compute_kwh, slow.stats.df_compute_kwh);
        assert_eq!(
            fast.stats.edge_response_ms.p99(),
            slow.stats.edge_response_ms.p99()
        );
        let (a, b) = (
            fast.stats.room_temp_c.summary(),
            slow.stats.room_temp_c.summary(),
        );
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.mean(), b.mean());
    }
}
