//! The DF3 platform: the discrete-event model of Figure 3 / Figure 5.
//!
//! Wires together weather, per-room thermals, the DVFS regulators, the
//! cluster gateways and queues, the peak-management policies, and the
//! remote datacenter, then runs a [`workloads::job::JobStream`] through
//! the three flows and reports [`PlatformStats`].
//!
//! ## Network accounting
//!
//! Message delays are analytic (the links are never congested in these
//! experiments): each job's response time includes its flow's ingress
//! and egress path costs — device↔worker for direct edge, the extra
//! master hop for indirect edge (§II-C), the VPN overhead under
//! architecture B, an inter-cluster fiber hop for horizontal offloads,
//! and the WAN for anything that lands in the datacenter.
//!
//! ## Faults and recovery
//!
//! A [`crate::faults::FaultPlan`] on the config turns on the fault
//! runtime: worker churn (absorbing the legacy `worker_mtbf` fields),
//! correlated cluster power outages, repeated master-outage windows,
//! link degradation/partition, and sensor faults. The recovery layer
//! re-dispatches orphans through the normal offload decision, retries
//! rejected edge requests while their deadline allows, quarantines
//! flapping workers, and stages boiler heat into dark rooms. An empty
//! plan skips the runtime entirely: fault-free runs are bit-identical
//! to a build without the fault layer.

use crate::cluster::{ClusterSim, Dispatch};
use crate::config::{ArchClass, PlatformConfig};
use crate::datacenter::{Datacenter, DatacenterConfig};
use crate::faults::{FaultEventKind, FaultPlan, FaultRuntime, SensorFaultKind};
use crate::stats::PlatformStats;
use crate::worker::SensorState;
use dfnet::link::{Link, LinkClass};
use dfnet::protocol::Protocol;
use sched::PeakAction;
use simcore::engine::{Engine, EngineRun, Model, RunSummary, Scheduler};
use simcore::event::EventId;
use simcore::snapshot::{Snapshot, SnapshotError, SnapshotFile, SnapshotReader, SnapshotWriter};
use simcore::telemetry::{
    FieldSet, FlightRecorder, Phase, PhaseProfiler, TagId, Telemetry, Track, Value,
};
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;
use thermal::batch::ThermalBatch;
use thermal::weather::{Weather, WeatherConfig, WeatherTable};
use workloads::job::JobStream;
use workloads::{Flow, Job, JobId};

/// Where a job's service happened (for network accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Venue {
    Local { cluster: usize },
    Horizontal { from: usize, to: usize },
    Datacenter,
}

/// Events of the platform model.
#[derive(Debug, Clone)]
enum Ev {
    Arrival(Job),
    FinishLocal {
        cluster: usize,
        worker: usize,
        job: Job,
        venue: Venue,
    },
    FinishDc {
        job: Job,
    },
    ControlTick,
    WorkerFail {
        cluster: usize,
        worker: usize,
    },
    WorkerRepair {
        cluster: usize,
        worker: usize,
    },
    /// A building-level power outage begins (`outage` indexes the
    /// plan's `cluster_outages`).
    ClusterDown {
        outage: usize,
    },
    /// The outage's window ends; power is restored.
    ClusterUp {
        outage: usize,
    },
    /// A scheduled re-submission of a rejected edge request.
    Retry {
        job: Job,
    },
}

/// Finish-event handles of running local jobs, indexed by global worker
/// slot (`cluster * workers_per_cluster + worker`). Every lookup site
/// knows the worker, and a worker runs only a handful of concurrent
/// slices, so a linear scan of a small per-slot vector replaces hashing
/// `JobId`s on every dispatch, finish, preemption, and failure.
struct RunningEvents {
    slots: Vec<Vec<(JobId, EventId)>>,
}

impl RunningEvents {
    fn new(n_slots: usize) -> Self {
        RunningEvents {
            slots: vec![Vec::new(); n_slots],
        }
    }

    fn insert(&mut self, slot: usize, job: JobId, ev: EventId) {
        self.slots[slot].push((job, ev));
    }

    fn remove(&mut self, slot: usize, job: JobId) -> Option<EventId> {
        let v = &mut self.slots[slot];
        let ix = v.iter().position(|&(j, _)| j == job)?;
        Some(v.swap_remove(ix).1)
    }
}

/// Dense flow index for per-flow telemetry tag arrays.
#[inline]
fn flow_ix(f: Flow) -> usize {
    match f {
        Flow::Dcc => 0,
        Flow::EdgeDirect => 1,
        Flow::EdgeIndirect => 2,
    }
}

/// Telemetry tags pre-interned at construction. Interning works on a
/// disabled recorder too (stable ids without storage), so enabled and
/// disabled runs share one code path and identically-driven runs get
/// identical ids — exports stay byte-reproducible.
struct Tags {
    /// Per-flow job-span tags, indexed by [`flow_ix`].
    job_span: [TagId; 3],
    job_reject: TagId,
    job_retry: TagId,
    job_abandon: TagId,
    job_expire: TagId,
    peak_preempt: TagId,
    peak_offload_vertical: TagId,
    peak_offload_horizontal: TagId,
    peak_delay: TagId,
    /// Fault-timeline tags, indexed by `FaultEventKind as usize`.
    fault: [TagId; 5],
    tick_sample: TagId,
    wd_temp_band: TagId,
    wd_queue_depth: TagId,
    wd_ledger_drift: TagId,
    k_job: TagId,
    k_gops: TagId,
    k_cluster: TagId,
    k_worker: TagId,
    k_from: TagId,
    k_to: TagId,
    k_attempts: TagId,
    k_temp_c: TagId,
    k_lo_c: TagId,
    k_hi_c: TagId,
    k_queued: TagId,
    k_limit: TagId,
    k_usable_cores: TagId,
    k_heat_demand: TagId,
    k_arrived: TagId,
    k_accounted: TagId,
}

impl Tags {
    fn intern(r: &mut FlightRecorder) -> Self {
        Tags {
            job_span: [
                r.tag("job.dcc"),
                r.tag("job.edge_direct"),
                r.tag("job.edge_indirect"),
            ],
            job_reject: r.tag("job.reject"),
            job_retry: r.tag("job.retry"),
            job_abandon: r.tag("job.abandon"),
            job_expire: r.tag("job.expire"),
            peak_preempt: r.tag("peak.preempt"),
            peak_offload_vertical: r.tag("peak.offload_vertical"),
            peak_offload_horizontal: r.tag("peak.offload_horizontal"),
            peak_delay: r.tag("peak.delay"),
            fault: FaultEventKind::ALL.map(|k| r.tag(&format!("fault.{}", k.label()))),
            tick_sample: r.tag("tick.sample"),
            wd_temp_band: r.tag("watchdog.temp_band"),
            wd_queue_depth: r.tag("watchdog.queue_depth"),
            wd_ledger_drift: r.tag("watchdog.ledger_drift"),
            k_job: r.tag("job"),
            k_gops: r.tag("gops"),
            k_cluster: r.tag("cluster"),
            k_worker: r.tag("worker"),
            k_from: r.tag("from"),
            k_to: r.tag("to"),
            k_attempts: r.tag("attempts"),
            k_temp_c: r.tag("temp_c"),
            k_lo_c: r.tag("lo_c"),
            k_hi_c: r.tag("hi_c"),
            k_queued: r.tag("queued"),
            k_limit: r.tag("limit"),
            k_usable_cores: r.tag("usable_cores"),
            k_heat_demand: r.tag("heat_demand"),
            k_arrived: r.tag("arrived"),
            k_accounted: r.tag("accounted"),
        }
    }
}

/// The assembled platform (a `simcore::Model`).
pub struct Platform {
    config: PlatformConfig,
    /// Tabulated weather trace: `outdoor_c` is two loads and a lerp.
    weather: WeatherTable,
    /// Every room in the fleet, in one SoA batch (cluster `c`, worker
    /// `w` lives at slot `wslot(c, w)`), stepped in one sweep per
    /// control tick.
    rooms: ThermalBatch,
    clusters: Vec<ClusterSim>,
    datacenter: Option<Datacenter>,
    /// Finish-event handles of running local jobs, for preemption.
    running_events: RunningEvents,
    pub stats: PlatformStats,
    /// Flight recorder (plus the phase profiler reclaimed from the
    /// engine after the run). Only ever observes: a disabled recorder
    /// leaves the run bit-identical to a build without telemetry.
    pub telemetry: Telemetry,
    /// Pre-interned telemetry tag ids.
    tags: Tags,
    // Link models (uncongested, analytic).
    lan: Link,
    device_link: Link,
    fiber: Link,
    wan: Link,
    last_energy_sample: SimTime,
    /// Seed-derived streams (worker-failure processes).
    streams: RngStreams,
    /// Fault runtime — `None` when the plan is empty, so fault-free
    /// runs pay nothing and stay bit-identical.
    faults: Option<FaultRuntime>,
    /// When each worker slot went dark (for MTTR accounting).
    down_since: Vec<Option<SimTime>>,
    /// Pending churn-failure event per worker slot (cancelled when a
    /// cluster outage takes the whole building down first).
    fail_events: Vec<Option<EventId>>,
    /// Pending repair event per worker slot (cancelled when a cluster
    /// outage's restoration repairs the board early).
    repair_events: Vec<Option<EventId>>,
    /// Retry events scheduled but not yet fired (in-flight for the
    /// conservation ledger).
    retries_pending: u64,
    /// Churn parameters in force: the plan's churn when set, else the
    /// legacy `worker_mtbf`/`worker_repair_time` shorthands.
    effective_mtbf: Option<SimDuration>,
    effective_repair: SimDuration,
}

/// Outcome of a platform run.
#[derive(Debug)]
pub struct PlatformOutcome {
    pub stats: PlatformStats,
    pub events: u64,
    pub end: SimTime,
    /// High-water mark of concurrently pending events in the engine.
    pub peak_queue: usize,
    /// Flight recorder and phase profiler of the run (both empty and
    /// disabled unless the config turned telemetry on).
    pub telemetry: Telemetry,
}

impl Platform {
    /// Build a platform from a config (weather is derived from the seed).
    pub fn new(config: PlatformConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("bad config: {e}"));
        let streams = RngStreams::new(config.seed);
        let weather = WeatherTable::tabulate(&Weather::generate(
            WeatherConfig::paris(config.calendar),
            config.horizon + SimDuration::DAY,
            &streams,
        ));
        let n_worker_slots = config.n_clusters * config.workers_per_cluster;
        let mut rooms = ThermalBatch::with_capacity(n_worker_slots);
        rooms.set_scalar_reference(config.scalar_thermal);
        let mut clusters: Vec<ClusterSim> = (0..config.n_clusters)
            .map(|i| {
                ClusterSim::new(
                    i,
                    config.workers_per_cluster,
                    config.arch,
                    config.setpoint_c,
                    &mut rooms,
                )
            })
            .collect();
        let datacenter = (config.datacenter_cores > 0)
            .then(|| Datacenter::new(DatacenterConfig::standard(config.datacenter_cores)));
        let faults = (!config.faults.is_empty())
            .then(|| FaultRuntime::new(config.faults.clone(), config.n_clusters, n_worker_slots));
        let (effective_mtbf, effective_repair) = match config.faults.worker_churn {
            Some(c) => (Some(c.mtbf), c.repair_time),
            None => (config.worker_mtbf, config.worker_repair_time),
        };
        if let Some(rt) = &faults {
            if rt.has_sensor_faults() {
                let bias = rt.plan().recovery.sensor_bias_c;
                for c in &mut clusters {
                    for w in 0..c.n_workers() {
                        c.worker_mut(w).sensor_bias_c = bias;
                    }
                }
            }
        }
        let mut telemetry = Telemetry::from_config(config.telemetry);
        let tags = Tags::intern(&mut telemetry.recorder);
        Platform {
            config,
            weather,
            rooms,
            clusters,
            datacenter,
            running_events: RunningEvents::new(n_worker_slots),
            stats: PlatformStats::new(),
            telemetry,
            tags,
            lan: Link::new(Protocol::EthernetLan),
            device_link: Link::new(Protocol::Wifi),
            fiber: Link::new(Protocol::Fiber),
            wan: Link::new(Protocol::WanInternet).with_extra_latency(0.022),
            last_energy_sample: SimTime::ZERO,
            streams,
            faults,
            down_since: vec![None; n_worker_slots],
            fail_events: vec![None; n_worker_slots],
            repair_events: vec![None; n_worker_slots],
            retries_pending: 0,
            effective_mtbf,
            effective_repair,
        }
    }

    /// Run `jobs` through the platform. Consumes self.
    pub fn run(self, jobs: &JobStream) -> PlatformOutcome {
        match self.run_to(jobs, SimTime::MAX) {
            RunTo::Finished(out) => out,
            RunTo::Paused(_) => unreachable!("the horizon always precedes SimTime::MAX"),
        }
    }

    /// Run `jobs`, pausing before the first event at or after
    /// `pause_at` (the horizon still wins: a run whose next event is
    /// past the horizon finishes normally). A paused run can be
    /// snapshotted, resumed, or both.
    pub fn run_to(self, jobs: &JobStream, pause_at: SimTime) -> RunTo {
        let horizon = SimTime::ZERO + self.config.horizon;
        let mut engine = Engine::new(
            PlatformModel {
                p: self,
                jobs: jobs.jobs().to_vec(),
            },
            horizon,
        );
        engine.event_budget = 500_000_000;
        match engine.run_until(pause_at) {
            EngineRun::Paused(engine) => RunTo::Paused(PausedRun { engine: *engine }),
            EngineRun::Finished(model, summary) => RunTo::Finished(finish_outcome(model, summary)),
        }
    }

    /// Rebuild a paused run from `snapshot_bytes` taken under the SAME
    /// config (weather, fleet shape, policies, fault plan — everything
    /// is fingerprint-checked). The job stream is not needed: every
    /// pre-horizon arrival was scheduled at init and lives in the
    /// snapshotted event queue.
    pub fn restore(config: PlatformConfig, bytes: &[u8]) -> Result<PausedRun, SnapshotError> {
        Self::restore_impl(config, None, bytes)
    }

    /// Rebuild a paused run from a snapshot taken under `base_plan`,
    /// continuing under `config.faults` instead — a *branch*. The
    /// branch plan must extend the base plan with injectors acting
    /// strictly after the snapshot point
    /// (see [`FaultPlan::is_extension_of`]); everything else in the
    /// config must match the warm-up exactly.
    pub fn restore_branch(
        base_plan: &FaultPlan,
        config: PlatformConfig,
        bytes: &[u8],
    ) -> Result<PausedRun, SnapshotError> {
        Self::restore_impl(config, Some(base_plan), bytes)
    }

    fn restore_impl(
        config: PlatformConfig,
        base_plan: Option<&FaultPlan>,
        bytes: &[u8],
    ) -> Result<PausedRun, SnapshotError> {
        let file = SnapshotFile::from_bytes(bytes)?;
        let mut r = file.section("meta")?;
        let config_fp = r.take_u64()?;
        let plan_fp = r.take_u64()?;
        let now = SimTime::decode(&mut r)?;
        let events = r.take_u64()?;
        r.expect_end()?;
        if config_fp != config_fingerprint(&config) {
            return Err(SnapshotError::Corrupt(
                "snapshot was taken under a different platform config".into(),
            ));
        }
        match base_plan {
            None => {
                if plan_fp != plan_fingerprint(&config.faults) {
                    return Err(SnapshotError::Corrupt(
                        "snapshot was taken under a different fault plan \
                         (use restore_branch to extend one)"
                            .into(),
                    ));
                }
            }
            Some(base) => {
                if plan_fp != plan_fingerprint(base) {
                    return Err(SnapshotError::Corrupt(
                        "base plan is not the one the snapshot was taken under".into(),
                    ));
                }
                config
                    .faults
                    .is_extension_of(
                        base,
                        now.saturating_since(SimTime::ZERO),
                        config.control_period,
                    )
                    .map_err(SnapshotError::Corrupt)?;
                if base.is_empty() && !config.faults.is_empty() && config.worker_mtbf.is_some() {
                    return Err(SnapshotError::Corrupt(
                        "cannot branch a fault plan onto a fault-free warm-up that used \
                         legacy worker churn (failures before the branch point would be \
                         handled differently)"
                            .into(),
                    ));
                }
            }
        }
        let mut p = Platform::new(config);
        let mut r = file.section("engine")?;
        let sched = Scheduler::<Ev>::decode(&mut r)?;
        r.expect_end()?;
        if sched.now() != now {
            return Err(SnapshotError::Corrupt(format!(
                "engine clock {} disagrees with snapshot meta {now}",
                sched.now()
            )));
        }
        let mut r = file.section("rng")?;
        p.streams = simcore::RngStreams::decode(&mut r)?;
        r.expect_end()?;
        let mut r = file.section("registry")?;
        let names = Vec::<String>::decode(&mut r)?;
        r.expect_end()?;
        simcore::metrics::reintern_names(&names);
        let mut r = file.section("telemetry")?;
        p.telemetry.recorder = FlightRecorder::decode(&mut r)?;
        r.expect_end()?;
        let mut r = file.section("thermal")?;
        let rooms = ThermalBatch::decode(&mut r)?;
        r.expect_end()?;
        if rooms.len() != p.rooms.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {} rooms, config builds {}",
                rooms.len(),
                p.rooms.len()
            )));
        }
        p.rooms = rooms;
        let mut r = file.section("platform")?;
        p.restore_state(&mut r)?;
        r.expect_end()?;
        let telemetry_on = p.config.telemetry.enabled;
        let mut engine = Engine::restored(
            PlatformModel {
                p,
                jobs: Vec::new(),
            },
            sched,
            events,
        );
        engine.event_budget = 500_000_000;
        if telemetry_on {
            // The profiler measures wall-clock phases of *this* process;
            // it is deliberately not part of the snapshot.
            engine.scheduler_mut().profiler = PhaseProfiler::enabled();
        }
        Ok(PausedRun { engine })
    }

    fn outdoor(&self, t: SimTime) -> f64 {
        self.weather.outdoor_c(t)
    }

    /// Global worker-slot index for the running-events map.
    #[inline]
    fn wslot(&self, cluster: usize, worker: usize) -> usize {
        cluster * self.config.workers_per_cluster + worker
    }

    /// Draw the next failure time for a worker after `after` from its
    /// exponential failure process (None when churn is disabled).
    fn next_failure(&self, cluster: usize, worker: usize, after: SimTime) -> Option<SimTime> {
        let mtbf = self.effective_mtbf?;
        let idx = (cluster * self.config.workers_per_cluster + worker) as u64;
        // One independent stream per (worker, epoch): advance the stream
        // by hashing the current time in so repeated draws differ.
        let mut rng = self.streams.stream_indexed(
            "worker-failures",
            idx ^ (after.as_micros() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let gap = simcore::dist::exponential(&mut rng, 1.0 / mtbf.as_secs_f64());
        Some(after + SimDuration::from_secs_f64(gap))
    }

    /// Schedule (and track) the next churn failure of a worker.
    fn schedule_next_failure(
        &mut self,
        cluster: usize,
        worker: usize,
        after: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        if let Some(at) = self.next_failure(cluster, worker, after) {
            if at < sched.horizon() {
                let ev = sched.at(at, Ev::WorkerFail { cluster, worker });
                let slot = self.wslot(cluster, worker);
                self.fail_events[slot] = Some(ev);
            }
        }
    }

    /// Whether the master nodes are inside an outage window (legacy
    /// single window or any plan window).
    fn master_down(&self, now: SimTime) -> bool {
        let legacy = match self.config.master_outage {
            Some((a, b)) => now >= SimTime::ZERO + a && now < SimTime::ZERO + b,
            None => false,
        };
        legacy || self.faults.as_ref().is_some_and(|rt| rt.master_down(now))
    }

    /// Whether `class` is severed right now by a plan partition.
    fn partitioned(&self, class: LinkClass, now: SimTime) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|rt| rt.partitioned(class, now))
    }

    /// Network time added to a job's response by its flow and venue,
    /// over the given link set.
    fn net_penalty_links(
        &self,
        job: &Job,
        venue: Venue,
        device_link: Link,
        lan: Link,
        fiber: Link,
        wan: Link,
    ) -> SimDuration {
        let ingress_local = match job.flow {
            Flow::EdgeDirect => device_link.transfer_time(job.input_bytes),
            Flow::EdgeIndirect => {
                // Device → gateway → master → worker (§II-C's extra hop).
                device_link.transfer_time(job.input_bytes)
                    + lan.transfer_time(job.input_bytes)
                    + lan.transfer_time(job.input_bytes)
            }
            Flow::Dcc => fiber.transfer_time(job.input_bytes),
        };
        let egress_local = match job.flow {
            Flow::EdgeDirect | Flow::EdgeIndirect => device_link.transfer_time(job.output_bytes),
            Flow::Dcc => fiber.transfer_time(job.output_bytes),
        };
        let vpn = match (self.config.arch, job.is_edge()) {
            (ArchClass::DedicatedEdge { vpn_overhead, .. }, true) => vpn_overhead * 2,
            _ => SimDuration::ZERO,
        };
        let venue_extra = match venue {
            Venue::Local { .. } => SimDuration::ZERO,
            Venue::Horizontal { .. } => {
                fiber.transfer_time(job.input_bytes) + fiber.transfer_time(job.output_bytes)
            }
            Venue::Datacenter => {
                wan.transfer_time(job.input_bytes) + wan.transfer_time(job.output_bytes)
            }
        };
        ingress_local + egress_local + vpn + venue_extra
    }

    /// Network penalty at `now`: base links, with any active plan
    /// degradations folded in (links are `Copy`; the fault-free path
    /// passes the base links through untouched).
    fn net_penalty(&self, now: SimTime, job: &Job, venue: Venue) -> SimDuration {
        match &self.faults {
            Some(rt) => self.net_penalty_links(
                job,
                venue,
                rt.effective_link(LinkClass::Device, now, self.device_link),
                rt.effective_link(LinkClass::Lan, now, self.lan),
                rt.effective_link(LinkClass::Fiber, now, self.fiber),
                rt.effective_link(LinkClass::Wan, now, self.wan),
            ),
            None => {
                self.net_penalty_links(job, venue, self.device_link, self.lan, self.fiber, self.wan)
            }
        }
    }

    /// Record a fault-timeline entry in both the stats and the flight
    /// recorder (cluster group's track; lane = worker when known).
    fn record_fault_event(
        &mut self,
        t: SimTime,
        kind: FaultEventKind,
        cluster: usize,
        worker: Option<usize>,
    ) {
        self.stats.push_fault_event(t, kind, cluster, worker);
        if self.telemetry.is_enabled() {
            let mut fields = FieldSet::from([(self.tags.k_cluster, Value::U64(cluster as u64))]);
            if let Some(w) = worker {
                fields.push(self.tags.k_worker, Value::U64(w as u64));
            }
            self.telemetry.recorder.instant(
                t,
                self.tags.fault[kind as usize],
                Track::new(cluster as u32 + 1, worker.map_or(0, |w| w as u32)),
                fields,
            );
        }
    }

    /// Record a terminal/retry job instant (reject, retry, abandon,
    /// expire) on the platform track.
    fn record_job_instant(&mut self, t: SimTime, tag: TagId, job: &Job, attempts: Option<u32>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let mut fields = FieldSet::from([(self.tags.k_job, Value::U64(job.id.0))]);
        if let Some(a) = attempts {
            fields.push(self.tags.k_attempts, Value::U64(u64::from(a)));
        }
        self.telemetry
            .recorder
            .instant(t, tag, Track::PLATFORM, fields);
    }

    /// Record a completion.
    fn record_completion(&mut self, now: SimTime, job: &Job, venue: Venue) {
        if let Some(rt) = self.faults.as_mut() {
            rt.retry_book.forget(job.id);
        }
        let response = now.saturating_since(job.arrival) + self.net_penalty(now, job, venue);
        let finish_with_net = job.arrival + response;
        if job.is_edge() {
            let met = job.meets_deadline(finish_with_net);
            self.stats
                .record_edge(response.as_millis_f64(), met, job.work_gops, job.org);
        } else {
            // Ideal: full-speed local run with no waiting, on pristine
            // links (degradation must show up as slowdown, not shrink
            // the baseline).
            let ideal = job.service_time(3.0)
                + self.net_penalty_links(
                    job,
                    Venue::Local { cluster: 0 },
                    self.device_link,
                    self.lan,
                    self.fiber,
                    self.wan,
                );
            self.stats.record_dcc(
                response.as_secs_f64(),
                ideal.as_secs_f64(),
                job.work_gops,
                job.org,
                venue == Venue::Datacenter,
            );
        }
    }

    /// Home cluster of a job: edge requests originate in a specific
    /// building; DCC requests are load-balanced to the emptiest cluster.
    fn route_cluster(&self, job: &Job) -> usize {
        if job.is_edge() {
            (job.id.0 as usize).wrapping_mul(0x9E37_79B9).rotate_left(7) % self.clusters.len()
        } else {
            (0..self.clusters.len())
                .max_by_key(|&i| {
                    let l = self.clusters[i].load();
                    (l.free_cores(), usize::MAX - i)
                })
                .expect("at least one cluster")
        }
    }

    fn submit_to_dc(&mut self, now: SimTime, job: Job, sched: &mut Scheduler<Ev>) -> bool {
        if self.partitioned(LinkClass::Wan, now) {
            return false; // the WAN is severed; no vertical offloading
        }
        let Some(dc) = self.datacenter.as_mut() else {
            return false;
        };
        match dc.submit(now, job) {
            Some(finish) => {
                sched.at(finish, Ev::FinishDc { job });
            }
            None => { /* queued in the DC; completion scheduled on start */ }
        }
        true
    }

    fn start_local(
        &mut self,
        cluster: usize,
        worker: usize,
        job: Job,
        finish: SimTime,
        venue: Venue,
        sched: &mut Scheduler<Ev>,
    ) {
        let ev = sched.at(
            finish,
            Ev::FinishLocal {
                cluster,
                worker,
                job,
                venue,
            },
        );
        let slot = self.wslot(cluster, worker);
        self.running_events.insert(slot, job.id, ev);
    }

    /// Terminal-or-retry for an edge request the platform cannot place:
    /// with an enabled retry policy, re-submission is scheduled with
    /// exponential backoff while the budget and the deadline both
    /// allow; the request is abandoned (counted, never silent) once a
    /// started chain runs dry. Without a retry layer this is the plain
    /// legacy rejection.
    fn reject_edge(&mut self, now: SimTime, job: Job, sched: &mut Scheduler<Ev>) {
        let Some(policy) = self
            .faults
            .as_ref()
            .map(|rt| rt.plan().recovery.retry)
            .filter(|p| p.enabled())
        else {
            self.stats.edge_rejected.inc();
            self.record_job_instant(now, self.tags.job_reject, &job, None);
            return;
        };
        let attempts = self
            .faults
            .as_ref()
            .expect("retry policy implies runtime")
            .retry_book
            .attempts(job.id);
        if attempts < policy.max_attempts {
            let due = now + policy.backoff(attempts + 1);
            let in_time = match job.absolute_deadline() {
                Some(d) => due < d,
                None => true,
            };
            if in_time {
                self.faults
                    .as_mut()
                    .expect("checked")
                    .retry_book
                    .record_attempt(job.id);
                self.stats.jobs_retried.inc();
                self.record_job_instant(now, self.tags.job_retry, &job, Some(attempts + 1));
                self.retries_pending += 1;
                sched.at(due, Ev::Retry { job });
                return;
            }
        }
        if attempts > 0 {
            self.faults
                .as_mut()
                .expect("checked")
                .retry_book
                .forget(job.id);
            self.stats.jobs_abandoned.inc();
            self.record_job_instant(now, self.tags.job_abandon, &job, Some(attempts));
        } else {
            self.stats.edge_rejected.inc();
            self.record_job_instant(now, self.tags.job_reject, &job, None);
        }
    }

    /// Admission + placement shared by fresh arrivals and retries.
    fn place(&mut self, now: SimTime, mut job: Job, sched: &mut Scheduler<Ev>) {
        // Master outage (§IV): indirect edge requests need the master;
        // they fail — or degrade to direct under the resource-oriented
        // fallback.
        if job.flow == Flow::EdgeIndirect && self.master_down(now) {
            if self.config.roc_fallback_direct {
                job.flow = Flow::EdgeDirect;
            } else {
                self.reject_edge(now, job, sched);
                return;
            }
        }
        let home = self.route_cluster(&job);
        let load = self.clusters[home].load();
        if !self.config.admission.admit(&job, &load) {
            if job.is_edge() {
                self.reject_edge(now, job, sched);
            } else {
                self.stats.dcc_rejected.inc();
            }
            return;
        }
        let outdoor = self.outdoor(now);
        match self.clusters[home].try_dispatch(now, outdoor, job, &mut self.rooms) {
            Dispatch::Started { worker, finish } => {
                self.start_local(
                    home,
                    worker,
                    job,
                    finish,
                    Venue::Local { cluster: home },
                    sched,
                );
            }
            Dispatch::Full => self.handle_full(now, home, job, sched),
        }
    }

    /// Handle a job that found its home cluster full: consult the peak
    /// policy and carry out the action.
    fn handle_full(&mut self, now: SimTime, home: usize, job: Job, sched: &mut Scheduler<Ev>) {
        let t_offload = sched.profiler.start();
        let outdoor = self.outdoor(now);
        let local = self.clusters[home].load();
        // A severed inter-cluster fiber hides every sibling: horizontal
        // offloading is impossible during the partition.
        let siblings: Vec<sched::ClusterLoad> = if self.partitioned(LinkClass::Fiber, now) {
            Vec::new()
        } else {
            self.clusters
                .iter()
                .filter(|c| c.id != home)
                .map(|c| c.load())
                .collect()
        };
        let action = self.config.peak_policy.decide(&job, &local, &siblings);
        if self.telemetry.is_enabled() {
            // Rejects get their instant from `reject_edge`/the DCC
            // counter below; the other four decisions are recorded
            // here on the home cluster's track.
            let decided = match action {
                PeakAction::Preempt => Some((
                    self.tags.peak_preempt,
                    FieldSet::from([(self.tags.k_cluster, Value::U64(home as u64))]),
                )),
                PeakAction::OffloadVertical => Some((
                    self.tags.peak_offload_vertical,
                    FieldSet::from([(self.tags.k_from, Value::U64(home as u64))]),
                )),
                PeakAction::OffloadHorizontal { target } => Some((
                    self.tags.peak_offload_horizontal,
                    FieldSet::from([
                        (self.tags.k_from, Value::U64(home as u64)),
                        (self.tags.k_to, Value::U64(target as u64)),
                    ]),
                )),
                PeakAction::Delay => Some((
                    self.tags.peak_delay,
                    FieldSet::from([(self.tags.k_cluster, Value::U64(home as u64))]),
                )),
                PeakAction::Reject => None,
            };
            if let Some((tag, mut fields)) = decided {
                fields.push(self.tags.k_job, Value::U64(job.id.0));
                self.telemetry
                    .recorder
                    .instant(now, tag, Track::new(home as u32 + 1, 0), fields);
            }
        }
        match action {
            PeakAction::Preempt => {
                if let Some((worker, victims)) = self.clusters[home].preempt_for(now, &job) {
                    let slot = self.wslot(home, worker);
                    for v in victims {
                        let ev = self
                            .running_events
                            .remove(slot, v.id)
                            .expect("victim had a finish event");
                        sched.cancel(ev);
                        self.stats.preemptions.inc();
                        self.clusters[home].dcc_queue.push(v);
                    }
                    let cost = match self.config.arch {
                        ArchClass::SharedWorkers { switch_cost } => switch_cost,
                        _ => SimDuration::ZERO,
                    };
                    let finish = self.clusters[home]
                        .worker_mut(worker)
                        .dispatch(now, job, cost)
                        .expect("preemption freed the cores");
                    self.start_local(
                        home,
                        worker,
                        job,
                        finish,
                        Venue::Local { cluster: home },
                        sched,
                    );
                } else {
                    self.enqueue(home, job);
                }
            }
            PeakAction::OffloadVertical => {
                if self.submit_to_dc(now, job, sched) {
                    self.stats.offload_vertical.inc();
                } else {
                    self.enqueue(home, job);
                }
            }
            PeakAction::OffloadHorizontal { target } => {
                match self.clusters[target].try_dispatch(now, outdoor, job, &mut self.rooms) {
                    Dispatch::Started { worker, finish } => {
                        self.stats.offload_horizontal.inc();
                        self.start_local(
                            target,
                            worker,
                            job,
                            finish,
                            Venue::Horizontal {
                                from: home,
                                to: target,
                            },
                            sched,
                        );
                    }
                    Dispatch::Full => self.enqueue(target, job),
                }
            }
            PeakAction::Delay => {
                self.stats.delays.inc();
                self.enqueue(home, job);
            }
            PeakAction::Reject => {
                if job.is_edge() {
                    self.reject_edge(now, job, sched);
                } else {
                    self.stats.dcc_rejected.inc();
                }
            }
        }
        sched.profiler.stop(Phase::Offload, t_offload);
    }

    fn enqueue(&mut self, cluster: usize, job: Job) {
        if job.is_edge() {
            self.clusters[cluster].edge_queue.push(job);
        } else {
            self.clusters[cluster].dcc_queue.push(job);
        }
    }

    /// Break one worker: account the lost progress, cancel the orphans'
    /// finish events, and re-dispatch each orphan through the normal
    /// offload decision (a failed building's work spills to siblings or
    /// the datacenter instead of queueing behind a dark board). A crash
    /// loses in-flight progress: orphans restart from their full work.
    fn fail_worker(
        &mut self,
        now: SimTime,
        cluster: usize,
        worker: usize,
        sched: &mut Scheduler<Ev>,
    ) {
        self.stats.worker_failures.inc();
        self.record_fault_event(now, FaultEventKind::WorkerFail, cluster, Some(worker));
        let slot = self.wslot(cluster, worker);
        if self.down_since[slot].is_none() {
            self.down_since[slot] = Some(now);
        }
        let slices: Vec<(Job, usize, SimTime)> = self.clusters[cluster]
            .worker(worker)
            .running()
            .iter()
            .map(|s| (s.job, s.cores, s.started))
            .collect();
        for &(_, cores, started) in &slices {
            self.stats.wasted_core_s += now.saturating_since(started).as_secs_f64() * cores as f64;
        }
        // `fail` checkpoints remaining work; a crash keeps nothing, so
        // the checkpointed jobs are discarded in favour of full restarts.
        let _ = self.clusters[cluster].worker_mut(worker).fail(now);
        for (job, _, _) in slices {
            if let Some(ev) = self.running_events.remove(slot, job.id) {
                sched.cancel(ev);
            }
            self.redispatch_orphan(now, cluster, job, sched);
        }
    }

    /// Re-dispatch an orphaned job after its worker failed, through the
    /// same placement logic as an arrival (deadline-aware: an already
    /// overdue edge orphan expires instead of wasting a slot).
    fn redispatch_orphan(
        &mut self,
        now: SimTime,
        home: usize,
        job: Job,
        sched: &mut Scheduler<Ev>,
    ) {
        self.stats.jobs_requeued.inc();
        if let Some(d) = job.absolute_deadline() {
            if now >= d {
                self.stats.edge_expired.inc();
                self.record_job_instant(now, self.tags.job_expire, &job, None);
                if let Some(rt) = self.faults.as_mut() {
                    rt.retry_book.forget(job.id);
                }
                return;
            }
        }
        let outdoor = self.outdoor(now);
        match self.clusters[home].try_dispatch(now, outdoor, job, &mut self.rooms) {
            Dispatch::Started { worker, finish } => {
                self.start_local(
                    home,
                    worker,
                    job,
                    finish,
                    Venue::Local { cluster: home },
                    sched,
                );
            }
            Dispatch::Full => self.handle_full(now, home, job, sched),
        }
    }

    /// Return a worker to service, closing its MTTR interval.
    fn repair_worker(&mut self, now: SimTime, cluster: usize, worker: usize) {
        let slot = self.wslot(cluster, worker);
        if let Some(start) = self.down_since[slot].take() {
            let dt = now.saturating_since(start).as_secs_f64();
            self.stats.mttr_s.observe(dt);
            self.stats.repair_s.observe(dt);
        }
        self.record_fault_event(now, FaultEventKind::WorkerRepair, cluster, Some(worker));
        self.clusters[cluster].worker_mut(worker).repair();
    }

    /// Schedule the down/up transitions of every planned cluster outage
    /// that becomes due within the next control period. Running this at
    /// the *start* of each control tick keeps the event order identical
    /// to scheduling everything at init (a transition landing on a tick
    /// timestamp gets a lower sequence number than that tick's own
    /// event, which was scheduled at the end of the previous handler),
    /// while letting a branch-restored run schedule outages its warm-up
    /// never knew about.
    fn schedule_due_outages(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let Some(rt) = self.faults.as_mut() else {
            return;
        };
        for i in 0..rt.outage_scheduled.len() {
            if rt.outage_scheduled[i] {
                continue;
            }
            let o = rt.plan().cluster_outages[i];
            let start = SimTime::ZERO + o.window.start;
            if start > now + self.config.control_period {
                continue;
            }
            rt.outage_scheduled[i] = true;
            if start < sched.horizon() {
                sched.at(start.max(now), Ev::ClusterDown { outage: i });
                let end = SimTime::ZERO + o.window.end;
                if end < sched.horizon() {
                    sched.at(end.max(now), Ev::ClusterUp { outage: i });
                }
            }
        }
    }

    /// Refresh every targeted room sensor from the plan's windows (run
    /// at each control tick; cheap because it only walks the plan's
    /// fault list, not the fleet).
    fn apply_sensor_states(&mut self, now: SimTime) {
        let Some(rt) = &self.faults else { return };
        if !rt.has_sensor_faults() {
            return;
        }
        let faults = rt.plan().sensor_faults.clone();
        let wpc = self.config.workers_per_cluster;
        // Reset every targeted sensor, then overlay the active windows
        // (a later fault in the plan wins on overlap).
        for f in &faults {
            let range = match f.worker {
                Some(w) => w..w + 1,
                None => 0..wpc,
            };
            for w in range {
                self.clusters[f.cluster]
                    .worker_mut(w)
                    .set_sensor(SensorState::Healthy);
            }
        }
        let mut any_active = false;
        for f in &faults {
            if !f.window.contains(now) {
                continue;
            }
            any_active = true;
            let state = match f.kind {
                SensorFaultKind::Dropout => SensorState::Dropout,
                SensorFaultKind::StuckAt(v) => SensorState::StuckAt(v),
            };
            let range = match f.worker {
                Some(w) => w..w + 1,
                None => 0..wpc,
            };
            for w in range {
                self.clusters[f.cluster].worker_mut(w).set_sensor(state);
            }
        }
        if any_active {
            self.stats.sensor_faulted_ticks.inc();
        }
    }

    /// Start everything a cluster's drain released.
    fn drain_cluster(&mut self, now: SimTime, cluster: usize, sched: &mut Scheduler<Ev>) {
        let outdoor = self.outdoor(now);
        for job in self.clusters[cluster].take_expired(now) {
            self.stats.edge_expired.inc();
            self.record_job_instant(now, self.tags.job_expire, &job, None);
            if let Some(rt) = self.faults.as_mut() {
                rt.retry_book.forget(job.id);
            }
        }
        let started = self.clusters[cluster].drain(now, outdoor, &mut self.rooms);
        for (worker, job, finish) in started {
            self.start_local(
                cluster,
                worker,
                job,
                finish,
                Venue::Local { cluster },
                sched,
            );
        }
    }

    fn finalise_energy(&mut self, end: SimTime) {
        // Close each worker's energy integral by a final control tick.
        // The weather wraps past its span, so no clamp is needed even
        // when the engine overruns the generated trace.
        let outdoor = self.outdoor(end);
        for c in &mut self.clusters {
            c.control_tick(end, outdoor, &mut self.rooms);
        }
        self.stats.df_total_kwh = self.clusters.iter().map(|c| c.energy_kwh()).sum();
        self.stats.df_compute_kwh = self.clusters.iter().map(|c| c.compute_energy_kwh()).sum();
        if let Some(dc) = self.datacenter.as_mut() {
            self.stats.dc_it_kwh = dc.it_kwh(end);
            self.stats.dc_facility_kwh = dc.facility_kwh(end);
        }
        self.last_energy_sample = end;
    }

    /// Close the work-conservation ledger: everything still queued,
    /// running, in the datacenter, or awaiting a retry is in-flight;
    /// arrivals must equal terminal outcomes plus in-flight. Drift is
    /// recorded as a `watchdog.ledger_drift` event (the debug asserts
    /// below still hold in debug builds; release runs land with their
    /// evidence instead of dying).
    fn finalise_accounting(&mut self, end: SimTime) {
        let mut edge = self.retries_pending;
        let mut dcc = 0u64;
        for c in &self.clusters {
            let (e, d) = c.in_flight_by_flow();
            edge += e;
            dcc += d;
        }
        if let Some(dc) = &self.datacenter {
            let (e, d) = dc.in_flight_by_flow();
            edge += e;
            dcc += d;
        }
        self.stats.edge_in_flight_end = edge;
        self.stats.dcc_in_flight_end = dcc;
        if self.telemetry.is_enabled() {
            let ledgers = [
                (
                    self.stats.edge_arrived.get(),
                    self.stats.edge_terminal() + edge,
                ),
                (
                    self.stats.dcc_arrived.get(),
                    self.stats.dcc_completed.get() + self.stats.dcc_rejected.get() + dcc,
                ),
            ];
            for (arrived, accounted) in ledgers {
                if arrived != accounted {
                    self.telemetry.recorder.instant(
                        end,
                        self.tags.wd_ledger_drift,
                        Track::PLATFORM,
                        [
                            (self.tags.k_arrived, Value::U64(arrived)),
                            (self.tags.k_accounted, Value::U64(accounted)),
                        ],
                    );
                }
            }
        }
        debug_assert_eq!(
            self.stats.edge_arrived.get(),
            self.stats.edge_terminal() + edge,
            "edge conservation: arrived = completed+rejected+expired+abandoned+in-flight"
        );
        debug_assert_eq!(
            self.stats.dcc_arrived.get(),
            self.stats.dcc_completed.get() + self.stats.dcc_rejected.get() + dcc,
            "dcc conservation: arrived = completed+rejected+in-flight"
        );
    }

    /// Checkpoint every run-mutated field of the platform. Statics —
    /// weather, links, tag interning, the room/worker skeletons — are
    /// pure functions of the config and are rebuilt by
    /// [`Platform::new`] before [`Platform::restore_state`] overlays
    /// this.
    fn snapshot_state(&self, w: &mut SnapshotWriter) {
        self.stats.encode(w);
        w.put_usize(self.clusters.len());
        for c in &self.clusters {
            c.snapshot_state(w);
        }
        w.put_bool(self.datacenter.is_some());
        if let Some(dc) = &self.datacenter {
            dc.snapshot_state(w);
        }
        self.running_events.slots.encode(w);
        self.down_since.encode(w);
        self.fail_events.encode(w);
        self.repair_events.encode(w);
        w.put_u64(self.retries_pending);
        self.last_energy_sample.encode(w);
        w.put_bool(self.faults.is_some());
        if let Some(rt) = &self.faults {
            rt.snapshot_state(w);
        }
    }

    /// Overlay a checkpointed dynamic state onto a freshly built
    /// platform, validating every fleet-shape invariant on the way.
    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.stats = PlatformStats::decode(r)?;
        let n = r.take_usize()?;
        if n != self.clusters.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n} clusters, config builds {}",
                self.clusters.len()
            )));
        }
        for c in &mut self.clusters {
            c.restore_state(r)?;
        }
        let has_dc = r.take_bool()?;
        if has_dc != self.datacenter.is_some() {
            return Err(SnapshotError::Corrupt(
                "snapshot and config disagree on datacenter presence".into(),
            ));
        }
        if let Some(dc) = self.datacenter.as_mut() {
            dc.restore_state(r)?;
        }
        let slots = Vec::decode(r)?;
        let down_since = Vec::decode(r)?;
        let fail_events = Vec::decode(r)?;
        let repair_events = Vec::decode(r)?;
        let n_slots = self.running_events.slots.len();
        if slots.len() != n_slots
            || down_since.len() != n_slots
            || fail_events.len() != n_slots
            || repair_events.len() != n_slots
        {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot worker-slot vectors disagree with the {n_slots}-slot fleet"
            )));
        }
        self.running_events.slots = slots;
        self.down_since = down_since;
        self.fail_events = fail_events;
        self.repair_events = repair_events;
        self.retries_pending = r.take_u64()?;
        self.last_energy_sample = SimTime::decode(r)?;
        let has_faults = r.take_bool()?;
        match (has_faults, self.faults.as_mut()) {
            (true, Some(rt)) => rt.restore_state(r)?,
            (true, None) => {
                return Err(SnapshotError::Corrupt(
                    "snapshot carries fault state but the fault plan is empty".into(),
                ))
            }
            // Branching a fault plan onto a fault-free warm-up: the
            // freshly built runtime (empty books, nothing dark) IS the
            // state the warm-up would have had, had the runtime existed.
            (false, _) => {}
        }
        Ok(())
    }
}

/// Stable fingerprint of everything in the config EXCEPT the fault
/// plan (which has its own fingerprint so branches can swap it).
fn config_fingerprint(config: &PlatformConfig) -> u64 {
    let mut c = config.clone();
    c.faults = FaultPlan::none();
    simcore::snapshot::fingerprint(format!("{c:?}").as_bytes())
}

/// Stable fingerprint of a fault plan.
fn plan_fingerprint(plan: &FaultPlan) -> u64 {
    simcore::snapshot::fingerprint(format!("{plan:?}").as_bytes())
}

/// Close out a finished engine run into a [`PlatformOutcome`].
fn finish_outcome(model: PlatformModel, summary: RunSummary) -> PlatformOutcome {
    let mut p = model.p;
    p.finalise_energy(summary.end_time);
    p.finalise_accounting(summary.end_time);
    PlatformOutcome {
        stats: p.stats,
        events: summary.events,
        end: summary.end_time,
        peak_queue: summary.peak_queue,
        telemetry: p.telemetry,
    }
}

/// Result of [`Platform::run_to`].
#[allow(clippy::large_enum_variant)]
pub enum RunTo {
    /// The run paused at the requested point; snapshot or resume it.
    Paused(PausedRun),
    /// The horizon arrived first; the run finished normally.
    Finished(PlatformOutcome),
}

/// A platform run paused between events — the unit the checkpoint
/// subsystem works on. Serialise it with
/// [`PausedRun::snapshot_bytes`], continue it with
/// [`PausedRun::resume`], or rebuild one in a fresh process with
/// [`Platform::restore`] / [`Platform::restore_branch`].
pub struct PausedRun {
    engine: Engine<PlatformModel>,
}

impl PausedRun {
    /// Simulation time of the last dispatched event.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.engine.events()
    }

    /// Serialise the complete run state into the versioned, checksummed
    /// snapshot container.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let p = &self.engine.model().p;
        let mut file = SnapshotFile::new();
        let mut w = SnapshotWriter::new();
        w.put_u64(config_fingerprint(&p.config));
        w.put_u64(plan_fingerprint(&p.config.faults));
        self.engine.now().encode(&mut w);
        w.put_u64(self.engine.events());
        file.add("meta", w);
        let mut w = SnapshotWriter::new();
        self.engine.scheduler().encode(&mut w);
        file.add("engine", w);
        let mut w = SnapshotWriter::new();
        p.streams.encode(&mut w);
        file.add("rng", w);
        let mut w = SnapshotWriter::new();
        simcore::metrics::registry_names().encode(&mut w);
        file.add("registry", w);
        let mut w = SnapshotWriter::new();
        p.telemetry.recorder.encode(&mut w);
        file.add("telemetry", w);
        let mut w = SnapshotWriter::new();
        p.rooms.encode(&mut w);
        file.add("thermal", w);
        let mut w = SnapshotWriter::new();
        p.snapshot_state(&mut w);
        file.add("platform", w);
        file.to_bytes()
    }

    /// Run to the horizon and close out the outcome.
    pub fn resume(self) -> PlatformOutcome {
        let (model, summary) = self.engine.run();
        finish_outcome(model, summary)
    }
}

impl Snapshot for Venue {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            Venue::Local { cluster } => {
                w.put_u8(0);
                w.put_usize(*cluster);
            }
            Venue::Horizontal { from, to } => {
                w.put_u8(1);
                w.put_usize(*from);
                w.put_usize(*to);
            }
            Venue::Datacenter => w.put_u8(2),
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Venue::Local {
                cluster: r.take_usize()?,
            }),
            1 => Ok(Venue::Horizontal {
                from: r.take_usize()?,
                to: r.take_usize()?,
            }),
            2 => Ok(Venue::Datacenter),
            b => Err(SnapshotError::Corrupt(format!("venue tag {b}"))),
        }
    }
}

impl Snapshot for Ev {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            Ev::Arrival(job) => {
                w.put_u8(0);
                job.encode(w);
            }
            Ev::FinishLocal {
                cluster,
                worker,
                job,
                venue,
            } => {
                w.put_u8(1);
                w.put_usize(*cluster);
                w.put_usize(*worker);
                job.encode(w);
                venue.encode(w);
            }
            Ev::FinishDc { job } => {
                w.put_u8(2);
                job.encode(w);
            }
            Ev::ControlTick => w.put_u8(3),
            Ev::WorkerFail { cluster, worker } => {
                w.put_u8(4);
                w.put_usize(*cluster);
                w.put_usize(*worker);
            }
            Ev::WorkerRepair { cluster, worker } => {
                w.put_u8(5);
                w.put_usize(*cluster);
                w.put_usize(*worker);
            }
            Ev::ClusterDown { outage } => {
                w.put_u8(6);
                w.put_usize(*outage);
            }
            Ev::ClusterUp { outage } => {
                w.put_u8(7);
                w.put_usize(*outage);
            }
            Ev::Retry { job } => {
                w.put_u8(8);
                job.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Ev::Arrival(Job::decode(r)?)),
            1 => Ok(Ev::FinishLocal {
                cluster: r.take_usize()?,
                worker: r.take_usize()?,
                job: Job::decode(r)?,
                venue: Venue::decode(r)?,
            }),
            2 => Ok(Ev::FinishDc {
                job: Job::decode(r)?,
            }),
            3 => Ok(Ev::ControlTick),
            4 => Ok(Ev::WorkerFail {
                cluster: r.take_usize()?,
                worker: r.take_usize()?,
            }),
            5 => Ok(Ev::WorkerRepair {
                cluster: r.take_usize()?,
                worker: r.take_usize()?,
            }),
            6 => Ok(Ev::ClusterDown {
                outage: r.take_usize()?,
            }),
            7 => Ok(Ev::ClusterUp {
                outage: r.take_usize()?,
            }),
            8 => Ok(Ev::Retry {
                job: Job::decode(r)?,
            }),
            b => Err(SnapshotError::Corrupt(format!("platform event tag {b}"))),
        }
    }
}

struct PlatformModel {
    p: Platform,
    jobs: Vec<Job>,
}

impl Model for PlatformModel {
    type Event = Ev;

    fn init(&mut self, sched: &mut Scheduler<Ev>) {
        if self.p.config.telemetry.enabled {
            sched.profiler = PhaseProfiler::enabled();
        }
        for job in &self.jobs {
            if job.arrival < sched.horizon() {
                sched.at(job.arrival, Ev::Arrival(*job));
            }
        }
        sched.immediately(Ev::ControlTick);
        if self.p.effective_mtbf.is_some() {
            for c in 0..self.p.config.n_clusters {
                for w in 0..self.p.config.workers_per_cluster {
                    self.p.schedule_next_failure(c, w, SimTime::ZERO, sched);
                }
            }
        }
        // Cluster outages are scheduled lazily, one control tick ahead
        // (see `Platform::schedule_due_outages`), so a run restored from
        // a snapshot picks up outages a branch plan appended.
    }

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrival(job) => {
                if job.is_edge() {
                    self.p.stats.edge_arrived.inc();
                } else {
                    self.p.stats.dcc_arrived.inc();
                }
                self.p.place(now, job, sched);
            }
            Ev::Retry { job } => {
                self.p.retries_pending -= 1;
                self.p.place(now, job, sched);
            }
            Ev::FinishLocal {
                cluster,
                worker,
                job,
                venue,
            } => {
                let slot = self.p.wslot(cluster, worker);
                self.p
                    .running_events
                    .remove(slot, job.id)
                    .expect("finished job had a tracked event");
                self.p.clusters[cluster].finish(worker, job.id);
                self.p.record_completion(now, &job, venue);
                if self.p.telemetry.is_enabled() && self.p.config.telemetry.spans {
                    self.p.telemetry.recorder.span(
                        job.arrival,
                        now,
                        self.p.tags.job_span[flow_ix(job.flow)],
                        Track::new(cluster as u32 + 1, worker as u32),
                        [
                            (self.p.tags.k_job, Value::U64(job.id.0)),
                            (self.p.tags.k_gops, Value::F64(job.work_gops)),
                        ],
                    );
                }
                self.p.drain_cluster(now, cluster, sched);
            }
            Ev::FinishDc { job } => {
                let started = self
                    .p
                    .datacenter
                    .as_mut()
                    .expect("DC event without a DC")
                    .complete(now, job.id);
                self.p.record_completion(now, &job, Venue::Datacenter);
                if self.p.telemetry.is_enabled() && self.p.config.telemetry.spans {
                    // The datacenter renders as the group after the
                    // last cluster.
                    let dc_group = self.p.config.n_clusters as u32 + 1;
                    self.p.telemetry.recorder.span(
                        job.arrival,
                        now,
                        self.p.tags.job_span[flow_ix(job.flow)],
                        Track::new(dc_group, 0),
                        [
                            (self.p.tags.k_job, Value::U64(job.id.0)),
                            (self.p.tags.k_gops, Value::F64(job.work_gops)),
                        ],
                    );
                }
                for (j, finish) in started {
                    sched.at(finish, Ev::FinishDc { job: j });
                }
            }
            Ev::WorkerFail { cluster, worker } => {
                let slot = self.p.wslot(cluster, worker);
                self.p.fail_events[slot] = None;
                if self.p.clusters[cluster].worker(worker).is_failed() {
                    return; // already dark (overlapping outage owns it)
                }
                let t_fault = sched.profiler.start();
                self.p.fail_worker(now, cluster, worker, sched);
                let mut delay = self.p.effective_repair;
                let quarantine = self
                    .p
                    .faults
                    .as_ref()
                    .and_then(|rt| rt.plan().recovery.quarantine);
                if let (Some(q), Some(rt)) = (quarantine, self.p.faults.as_mut()) {
                    if rt.flap.record(slot, now, &q) {
                        self.p.stats.quarantines.inc();
                        self.p.record_fault_event(
                            now,
                            FaultEventKind::Quarantine,
                            cluster,
                            Some(worker),
                        );
                        delay += q.extra_downtime;
                    }
                }
                let ev = sched.after(delay, Ev::WorkerRepair { cluster, worker });
                self.p.repair_events[slot] = Some(ev);
                // Orphaned work may fit elsewhere right away.
                self.p.drain_cluster(now, cluster, sched);
                sched.profiler.stop(Phase::FaultRuntime, t_fault);
            }
            Ev::WorkerRepair { cluster, worker } => {
                let slot = self.p.wslot(cluster, worker);
                self.p.repair_events[slot] = None;
                if self
                    .p
                    .faults
                    .as_ref()
                    .is_some_and(|rt| rt.cluster_dark[cluster])
                {
                    return; // the outage owns this board; ClusterUp restores it
                }
                if !self.p.clusters[cluster].worker(worker).is_failed() {
                    return; // stale: an intervening restoration already repaired it
                }
                let t_fault = sched.profiler.start();
                self.p.repair_worker(now, cluster, worker);
                self.p.schedule_next_failure(cluster, worker, now, sched);
                self.p.drain_cluster(now, cluster, sched);
                sched.profiler.stop(Phase::FaultRuntime, t_fault);
            }
            Ev::ClusterDown { outage } => {
                let t_fault = sched.profiler.start();
                let c = {
                    let rt = self.p.faults.as_ref().expect("outage implies runtime");
                    rt.plan().cluster_outages[outage].cluster
                };
                self.p.faults.as_mut().expect("checked").cluster_dark[c] = true;
                self.p.stats.cluster_outages.inc();
                self.p
                    .record_fault_event(now, FaultEventKind::ClusterDown, c, None);
                for w in 0..self.p.config.workers_per_cluster {
                    let slot = self.p.wslot(c, w);
                    if let Some(ev) = self.p.fail_events[slot].take() {
                        sched.cancel(ev); // churn is moot while the building is dark
                    }
                    if !self.p.clusters[c].worker(w).is_failed() {
                        self.p.fail_worker(now, c, w, sched);
                    }
                }
                self.p.drain_cluster(now, c, sched);
                sched.profiler.stop(Phase::FaultRuntime, t_fault);
            }
            Ev::ClusterUp { outage } => {
                let (c, still_dark) =
                    {
                        let rt = self.p.faults.as_ref().expect("outage implies runtime");
                        let c = rt.plan().cluster_outages[outage].cluster;
                        let still =
                            rt.plan().cluster_outages.iter().enumerate().any(|(i, o)| {
                                i != outage && o.cluster == c && o.window.contains(now)
                            });
                        (c, still)
                    };
                if still_dark {
                    return; // an overlapping outage keeps the building down
                }
                let t_fault = sched.profiler.start();
                self.p.faults.as_mut().expect("checked").cluster_dark[c] = false;
                self.p
                    .record_fault_event(now, FaultEventKind::ClusterUp, c, None);
                for w in 0..self.p.config.workers_per_cluster {
                    if self.p.clusters[c].worker(w).is_failed() {
                        let slot = self.p.wslot(c, w);
                        if let Some(ev) = self.p.repair_events[slot].take() {
                            sched.cancel(ev); // power restoration resets the board
                        }
                        self.p.repair_worker(now, c, w);
                        self.p.schedule_next_failure(c, w, now, sched);
                    }
                }
                self.p.drain_cluster(now, c, sched);
                sched.profiler.stop(Phase::FaultRuntime, t_fault);
            }
            Ev::ControlTick => {
                let t_tick = sched.profiler.start();
                let t_fault = sched.profiler.start();
                self.p.schedule_due_outages(now, sched);
                self.p.apply_sensor_states(now);
                sched.profiler.stop(Phase::FaultRuntime, t_fault);
                let outdoor = self.p.outdoor(now);
                let mut temp = 0.0;
                let mut usable = 0usize;
                let mut demand = 0.0;
                let n = self.p.clusters.len();
                // Stage every worker's pending interval, then advance
                // the entire fleet's thermals in ONE sweep over the SoA
                // batch — the district-scale fast path.
                let t_stage = sched.profiler.start();
                for c in &self.p.clusters {
                    c.stage_thermal(now, &mut self.p.rooms);
                }
                sched.profiler.stop(Phase::StageThermal, t_stage);
                // Boiler backfill (§II-B): failed workers' rooms were
                // staged at 0 W; restage them with boiler heat so the
                // §IV comfort guarantee holds while boards are dark.
                let backfill = self
                    .p
                    .faults
                    .as_ref()
                    .map(|rt| rt.plan().recovery)
                    .filter(|r| r.boiler_backfill);
                if let Some(r) = backfill {
                    let mut kwh = 0.0;
                    for c in &self.p.clusters {
                        kwh += c.stage_backfill(now, &mut self.p.rooms, r.backfill_power_w);
                    }
                    self.p.stats.boiler_backfill_kwh += kwh;
                }
                let t_step = sched.profiler.start();
                self.p.rooms.step_staged(outdoor);
                sched.profiler.stop(Phase::StepStaged, t_step);
                for i in 0..n {
                    let (t, u, d) = self.p.clusters[i].finish_control_tick(now, &self.p.rooms);
                    temp += t;
                    usable += u;
                    demand += d;
                    self.p.drain_cluster(now, i, sched);
                }
                self.p
                    .stats
                    .sample_tick(now, temp / n as f64, usable as f64, demand / n as f64);
                if self.p.telemetry.is_enabled() {
                    let mean_temp = temp / n as f64;
                    let tags = &self.p.tags;
                    self.p.telemetry.recorder.instant(
                        now,
                        tags.tick_sample,
                        Track::PLATFORM,
                        [
                            (tags.k_temp_c, Value::F64(mean_temp)),
                            (tags.k_usable_cores, Value::U64(usable as u64)),
                            (tags.k_heat_demand, Value::F64(demand / n as f64)),
                        ],
                    );
                    // Invariant watchdogs: observe, record, never panic.
                    let wd = self.p.config.watchdogs;
                    if mean_temp < wd.temp_lo_c || mean_temp > wd.temp_hi_c {
                        self.p.telemetry.recorder.instant(
                            now,
                            tags.wd_temp_band,
                            Track::PLATFORM,
                            [
                                (tags.k_temp_c, Value::F64(mean_temp)),
                                (tags.k_lo_c, Value::F64(wd.temp_lo_c)),
                                (tags.k_hi_c, Value::F64(wd.temp_hi_c)),
                            ],
                        );
                    }
                    let queued: usize = self
                        .p
                        .clusters
                        .iter()
                        .map(|c| c.edge_queue.len() + c.dcc_queue.len())
                        .sum();
                    if queued > wd.max_queued {
                        self.p.telemetry.recorder.instant(
                            now,
                            tags.wd_queue_depth,
                            Track::PLATFORM,
                            [
                                (tags.k_queued, Value::U64(queued as u64)),
                                (tags.k_limit, Value::U64(wd.max_queued as u64)),
                            ],
                        );
                    }
                }
                sched.after(self.p.config.control_period, Ev::ControlTick);
                sched.profiler.stop(Phase::ControlTick, t_tick);
            }
        }
    }

    fn finish(&mut self, sched: &mut Scheduler<Ev>) {
        // Reclaim the engine's phase accumulators so the run report can
        // render them after the engine is consumed.
        let prof = std::mem::take(&mut sched.profiler);
        self.p.telemetry.profiler.merge(&prof);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, RecoveryPolicy, Window};
    use workloads::edge::{location_service_jobs, LocationServiceConfig};

    fn tiny_config() -> PlatformConfig {
        PlatformConfig {
            n_clusters: 2,
            workers_per_cluster: 4,
            horizon: SimDuration::from_hours(6),
            datacenter_cores: 64,
            ..PlatformConfig::small_winter()
        }
    }

    fn edge_stream(hours: i64) -> JobStream {
        location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeIndirect),
            SimDuration::from_hours(hours),
            &RngStreams::new(77),
            0,
        )
    }

    #[test]
    fn edge_requests_complete_fast_in_winter() {
        let p = Platform::new(tiny_config());
        let jobs = edge_stream(6);
        let n_jobs = jobs.len() as u64;
        let out = p.run(&jobs);
        let s = &out.stats;
        assert!(
            s.edge_completed.get() > n_jobs * 9 / 10,
            "{}/{} completed",
            s.edge_completed.get(),
            n_jobs
        );
        assert!(
            s.edge_attainment() > 0.95,
            "attainment {}",
            s.edge_attainment()
        );
        assert!(
            s.edge_response_ms.p50() < 100.0,
            "p50 {} ms should be edge-scale (compute + LAN)",
            s.edge_response_ms.p50()
        );
    }

    #[test]
    fn dcc_overflow_reaches_datacenter() {
        use workloads::dcc::{finance_jobs, FinanceConfig};
        let mut cfg = tiny_config();
        cfg.peak_policy = sched::PeakPolicy::VerticalFirst;
        // 2×4 Q.rads = 128 cores; a heavy finance stream overflows them.
        let mut fin = FinanceConfig::bank();
        fin.batches_per_day = 600.0;
        let jobs = finance_jobs(fin, SimDuration::from_hours(6), &RngStreams::new(3), 0);
        let out = Platform::new(cfg).run(&jobs);
        assert!(out.stats.offload_vertical.get() > 0, "peaks must offload");
        assert!(out.stats.dc_share() > 0.0);
        assert!(out.stats.dcc_completed.get() > 0);
    }

    #[test]
    fn rooms_are_heated_to_comfort() {
        // Cover a full day so the daytime setpoint (20 °C) is exercised —
        // the first 6 h are night setback (17 °C) where no warming is due.
        let mut cfg = tiny_config();
        cfg.horizon = SimDuration::from_hours(24);
        let p = Platform::new(cfg);
        let jobs = edge_stream(24);
        let out = p.run(&jobs);
        let temps = out.stats.room_temp_c.summary();
        // Starting ~17 °C, rooms must climb toward the 20 °C day setpoint.
        assert!(
            temps.max() > 18.5,
            "rooms should warm up, max mean {}",
            temps.max()
        );
        // And never run away past the setpoint band (no waste heat).
        assert!(temps.max() < 22.0, "no overshoot, got {}", temps.max());
    }

    #[test]
    fn energy_is_accounted() {
        let p = Platform::new(tiny_config());
        let out = p.run(&edge_stream(6));
        assert!(
            out.stats.df_total_kwh > 0.5,
            "kwh {}",
            out.stats.df_total_kwh
        );
        assert!(out.stats.df_compute_kwh <= out.stats.df_total_kwh);
        assert!(out.stats.pue() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let jobs = edge_stream(3);
        let a = Platform::new(tiny_config()).run(&jobs);
        let b = Platform::new(tiny_config()).run(&jobs);
        assert_eq!(a.events, b.events);
        assert_eq!(
            a.stats.edge_response_ms.p99(),
            b.stats.edge_response_ms.p99()
        );
        assert_eq!(a.stats.df_total_kwh, b.stats.df_total_kwh);
    }

    #[test]
    fn preempt_policy_fires_under_pressure() {
        use workloads::dcc::{boinc_jobs, BoincConfig};
        use workloads::job::JobStream;
        let mut cfg = tiny_config();
        cfg.peak_policy = sched::PeakPolicy::Hybrid;
        cfg.datacenter_cores = 64;
        // A 2 s container swap would blow every 300 ms edge deadline on
        // preemption (that effect is measured by experiment E4); here use
        // a light swap so the preemption path itself is what's tested.
        cfg.arch = ArchClass::SharedWorkers {
            switch_cost: SimDuration::from_millis(100),
        };
        // Saturate with BOINC work, then add edge traffic.
        let mut boinc = BoincConfig::standard();
        boinc.tasks_per_hour = 4_000.0;
        boinc.mean_work_gops = 40_000.0;
        let bg = boinc_jobs(boinc, SimDuration::from_hours(6), &RngStreams::new(5), 0);
        let edge = location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeIndirect),
            SimDuration::from_hours(6),
            &RngStreams::new(5),
            10_000_000,
        );
        let jobs = bg.merge(edge);
        let out = Platform::new(cfg).run(&jobs);
        assert!(
            out.stats.preemptions.get() > 0,
            "saturated cluster must preempt for edge"
        );
        assert!(out.stats.edge_attainment() > 0.8);
        let _ = JobStream::new(vec![]);
    }

    #[test]
    fn batched_and_scalar_thermal_are_bit_identical() {
        // The whole point of keeping `Room::step` alive behind
        // `scalar_thermal`: the SoA fast path must not change a single
        // bit of any platform-level statistic.
        let jobs = edge_stream(6);
        let mut cfg = tiny_config();
        cfg.scalar_thermal = false;
        let fast = Platform::new(cfg.clone()).run(&jobs);
        cfg.scalar_thermal = true;
        let slow = Platform::new(cfg).run(&jobs);

        assert_eq!(fast.events, slow.events);
        assert_eq!(fast.stats.df_total_kwh, slow.stats.df_total_kwh);
        assert_eq!(fast.stats.df_compute_kwh, slow.stats.df_compute_kwh);
        assert_eq!(
            fast.stats.edge_response_ms.p99(),
            slow.stats.edge_response_ms.p99()
        );
        let (a, b) = (
            fast.stats.room_temp_c.summary(),
            slow.stats.room_temp_c.summary(),
        );
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.mean(), b.mean());
    }

    /// An inert plan — all windows beyond the horizon, recovery off —
    /// builds the fault runtime but must not perturb a single bit:
    /// every fault draw lives on its own RNG stream and every fault
    /// code path is gated on active state.
    #[test]
    fn inert_plan_never_perturbs_the_simulation() {
        let jobs = edge_stream(6);
        let base = Platform::new(tiny_config()).run(&jobs);
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none()
            .with_master_outage(Window::from_hours(1_000, 1_001))
            .with_cluster_outage(0, Window::from_hours(1_000, 1_001))
            .with_link_fault(
                LinkClass::Fiber,
                Window::from_hours(1_000, 1_001),
                dfnet::link::Degradation::brownout(),
                true,
            )
            .with_recovery(RecoveryPolicy::disabled());
        let faulty = Platform::new(cfg).run(&jobs);
        assert_eq!(base.events, faulty.events);
        assert_eq!(base.stats.df_total_kwh, faulty.stats.df_total_kwh);
        assert_eq!(
            base.stats.edge_response_ms.p99(),
            faulty.stats.edge_response_ms.p99()
        );
        assert_eq!(
            base.stats.room_temp_c.summary().mean(),
            faulty.stats.room_temp_c.summary().mean()
        );
        assert_eq!(
            base.stats.edge_completed.get(),
            faulty.stats.edge_completed.get()
        );
    }

    #[test]
    fn churn_with_recovery_conserves_every_job() {
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none()
            .with_churn(SimDuration::from_hours(4), SimDuration::from_secs(1_800))
            .with_recovery(RecoveryPolicy::standard());
        let jobs = edge_stream(6);
        let out = Platform::new(cfg).run(&jobs);
        let s = &out.stats;
        assert!(s.worker_failures.get() > 0, "churn must fire in 6 h");
        assert!(s.mttr_s.count() > 0, "repairs must be recorded");
        assert_eq!(
            s.edge_arrived.get(),
            s.edge_terminal() + s.edge_in_flight_end,
            "no edge job lost or duplicated"
        );
        assert!(!s.fault_timeline.is_empty());
    }

    #[test]
    fn cluster_outage_spills_orphans_and_backfills_heat() {
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none()
            .with_cluster_outage(0, Window::from_hours(1, 3))
            .with_recovery(RecoveryPolicy::standard());
        let jobs = edge_stream(6);
        let out = Platform::new(cfg).run(&jobs);
        let s = &out.stats;
        assert_eq!(s.cluster_outages.get(), 1);
        assert!(s.worker_failures.get() >= 4, "the whole building goes dark");
        assert!(
            s.boiler_backfill_kwh > 0.0,
            "boiler must carry the dark rooms"
        );
        assert_eq!(
            s.edge_arrived.get(),
            s.edge_terminal() + s.edge_in_flight_end
        );
        // Restoration happens inside the horizon → MTTR ≈ 2 h.
        assert!(s.mttr_s.count() >= 4);
        assert!(
            (s.mttr_s.mean() - 7_200.0).abs() < 600.0,
            "MTTR {}",
            s.mttr_s.mean()
        );
    }

    /// Snapshot-encode a stats block for bit-exact comparison.
    fn stats_bytes(s: &PlatformStats) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        s.encode(&mut w);
        w.into_bytes()
    }

    fn pause_at(cfg: PlatformConfig, jobs: &JobStream, at_hours: i64) -> PausedRun {
        match Platform::new(cfg).run_to(jobs, SimTime::from_secs(at_hours * 3_600)) {
            RunTo::Paused(p) => p,
            RunTo::Finished(_) => panic!("pause point inside the horizon"),
        }
    }

    #[test]
    fn pause_and_resume_is_bit_identical_to_a_straight_run() {
        let jobs = edge_stream(6);
        let cold = Platform::new(tiny_config()).run(&jobs);
        let paused = pause_at(tiny_config(), &jobs, 3);
        let warm = paused.resume();
        assert_eq!(cold.events, warm.events);
        assert_eq!(cold.end, warm.end);
        assert_eq!(stats_bytes(&cold.stats), stats_bytes(&warm.stats));
    }

    #[test]
    fn snapshot_restore_in_a_fresh_platform_is_bit_identical() {
        // The golden guarantee, under an ACTIVE fault plan: churn firing
        // throughout, a master outage straddling the snapshot point, and
        // the retry layer holding open chains across it.
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none()
            .with_churn(SimDuration::from_hours(4), SimDuration::from_secs(1_800))
            .with_master_outage(Window::from_hours(2, 3))
            .with_recovery(RecoveryPolicy::standard());
        let jobs = edge_stream(6);
        let cold = Platform::new(cfg.clone()).run(&jobs);
        let paused = pause_at(cfg.clone(), &jobs, 2);
        let bytes = paused.snapshot_bytes();
        // The restored run never sees the job stream: arrivals live in
        // the snapshotted event queue.
        let warm = Platform::restore(cfg, &bytes).expect("round trip").resume();
        assert_eq!(cold.events, warm.events);
        assert_eq!(stats_bytes(&cold.stats), stats_bytes(&warm.stats));
        assert!(warm.stats.worker_failures.get() > 0, "plan stayed active");
    }

    #[test]
    fn restore_rejects_mismatched_config_or_plan() {
        let jobs = edge_stream(6);
        let bytes = pause_at(tiny_config(), &jobs, 2).snapshot_bytes();
        let mut other = tiny_config();
        other.setpoint_c += 1.0;
        assert!(Platform::restore(other, &bytes).is_err(), "config drift");
        let mut other = tiny_config();
        other.faults = FaultPlan::none().with_master_outage(Window::from_hours(4, 5));
        assert!(
            Platform::restore(other, &bytes).is_err(),
            "plan drift without restore_branch"
        );
    }

    #[test]
    fn truncated_or_corrupted_snapshots_error_never_panic() {
        let jobs = edge_stream(6);
        let bytes = pause_at(tiny_config(), &jobs, 2).snapshot_bytes();
        for cut in [0, 1, 7, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Platform::restore(tiny_config(), &bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        for flip in [8, 64, bytes.len() / 3, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            assert!(
                Platform::restore(tiny_config(), &bad).is_err(),
                "bit flip at {flip} must error"
            );
        }
    }

    #[test]
    fn branch_restore_extends_the_fault_plan_bit_identically() {
        // Warm up under churn; branch an extra cluster outage onto the
        // snapshot. The branch must equal a cold run under the extended
        // plan, bit for bit — the basis of branch-from-snapshot sweeps.
        let base = FaultPlan::none()
            .with_churn(SimDuration::from_hours(4), SimDuration::from_secs(1_800))
            .with_recovery(RecoveryPolicy::standard());
        let mut cfg = tiny_config();
        cfg.faults = base.clone();
        let jobs = edge_stream(6);
        let bytes = pause_at(cfg.clone(), &jobs, 2).snapshot_bytes();

        let mut branch_cfg = cfg.clone();
        branch_cfg.faults = base
            .clone()
            .with_cluster_outage(0, Window::from_hours(3, 4));
        let cold = Platform::new(branch_cfg.clone()).run(&jobs);
        let warm = Platform::restore_branch(&base, branch_cfg, &bytes)
            .expect("valid branch")
            .resume();
        assert_eq!(cold.events, warm.events);
        assert_eq!(stats_bytes(&cold.stats), stats_bytes(&warm.stats));
        assert_eq!(warm.stats.cluster_outages.get(), 1, "branch outage fired");
    }

    #[test]
    fn branch_restore_rejects_windows_before_the_branch_point() {
        let base = FaultPlan::none()
            .with_churn(SimDuration::from_hours(4), SimDuration::from_secs(1_800))
            .with_recovery(RecoveryPolicy::standard());
        let mut cfg = tiny_config();
        cfg.faults = base.clone();
        let jobs = edge_stream(6);
        let bytes = pause_at(cfg.clone(), &jobs, 2).snapshot_bytes();
        // Starts before the snapshot: would rewrite warmed-up history.
        let mut bad = cfg.clone();
        bad.faults = base
            .clone()
            .with_cluster_outage(0, Window::from_hours(1, 3));
        assert!(Platform::restore_branch(&base, bad, &bytes).is_err());
        // Outage inside the one-tick scheduling slack is rejected too.
        let mut slack = cfg.clone();
        slack.faults = base.clone().with_cluster_outage(
            0,
            Window::new(
                SimDuration::from_secs(2 * 3_600 + 60),
                SimDuration::from_hours(3),
            ),
        );
        assert!(Platform::restore_branch(&base, slack, &bytes).is_err());
        // Dropping a base injector is not an extension.
        let mut dropped = cfg;
        dropped.faults = FaultPlan::none().with_recovery(RecoveryPolicy::standard());
        assert!(Platform::restore_branch(&base, dropped, &bytes).is_err());
    }

    #[test]
    fn retry_layer_reclaims_master_outage_rejections() {
        // Indirect edge requests during a master outage are rejected;
        // with retries enabled, requests arriving just before the
        // window's end get re-submitted after it and complete.
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none()
            .with_master_outage(Window::from_hours(1, 2))
            .with_recovery(RecoveryPolicy::standard());
        let jobs = edge_stream(6);
        let with_retry = Platform::new(cfg.clone()).run(&jobs);
        cfg.faults = cfg.faults.with_recovery(RecoveryPolicy::disabled());
        let without = Platform::new(cfg).run(&jobs);
        assert!(with_retry.stats.jobs_retried.get() > 0);
        assert!(
            with_retry.stats.jobs_abandoned.get() > 0,
            "sub-second deadlines abandon most chains mid-outage"
        );
        assert!(without.stats.jobs_retried.get() == 0);
        let s = &with_retry.stats;
        assert_eq!(
            s.edge_arrived.get(),
            s.edge_terminal() + s.edge_in_flight_end
        );
    }
}
