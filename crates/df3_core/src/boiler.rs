//! Digital-boiler capacity model (§II-B.2, §III-C).
//!
//! "With digital boilers, the problem [of heat-bound capacity] might
//! not be important because we can continue to produce hot water
//! independently of heating requests. However, this will generate
//! waste heat. … With a boiler that always generates heat, the
//! intensity of the waste heat rejected will be more important."
//!
//! [`BoilerSim`] closes the loop tank-side: server heat charges a DHW
//! tank, residents draw hot water year-round, and the regulator sizes
//! the compute budget from the tank's demand. Two operating modes:
//!
//! - **on-demand**: compute only while the tank wants heat (the Q.rad
//!   philosophy applied to water) — capacity follows the (mild) DHW
//!   seasonality, waste ≈ 0;
//! - **always-on**: compute at full tilt regardless; excess heat past
//!   the tank cap is rejected — flat capacity, §III-C's waste warning.

use crate::regulator::HeatRegulator;
use dfhw::dvfs::DvfsLadder;
use dfhw::servers::ServerSpec;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;
use thermal::hotwater::{DhwProfile, WaterTank};

/// Operating policy of a boiler site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoilerMode {
    /// Compute only while the tank demands heat.
    OnDemand,
    /// Compute at full power around the clock; reject the excess.
    AlwaysOn,
}

/// One boiler site: an immersion server rack + a DHW tank + residents.
#[derive(Debug, Clone)]
pub struct BoilerSim {
    regulator: HeatRegulator,
    ladder: DvfsLadder,
    pub tank: WaterTank,
    pub profile: DhwProfile,
    pub mode: BoilerMode,
    /// Tank setpoint, °C.
    pub target_c: f64,
    rng: ChaCha8Rng,
    last_tick: SimTime,
    /// Currently budgeted cores.
    potential_cores: usize,
    /// Current electrical power, W.
    power_w: f64,
    /// Accumulated energy, kWh.
    energy_kwh: f64,
    /// Accumulated waste (rejected) heat, kWh.
    waste_kwh: f64,
}

impl BoilerSim {
    /// A Stimergy-class boiler (30 servers, 1.8 kW) on a 1 000 l tank
    /// serving `n_dwellings` dwellings. Sizing rule: the rack must cover
    /// the mean DHW draw (~105 W/dwelling), so ≤ ~15 dwellings.
    pub fn stimergy(n_dwellings: usize, mode: BoilerMode, streams: &RngStreams, site: u64) -> Self {
        let spec = ServerSpec::stimergy_boiler(30);
        Self::new(spec, 1_000.0, n_dwellings, mode, streams, site)
    }

    /// An Asperitas-class boiler (20 kW) on a 4 000 l tank for a large
    /// building.
    pub fn asperitas(
        n_dwellings: usize,
        mode: BoilerMode,
        streams: &RngStreams,
        site: u64,
    ) -> Self {
        let spec = ServerSpec::asperitas_boiler();
        Self::new(spec, 4_000.0, n_dwellings, mode, streams, site)
    }

    fn new(
        spec: ServerSpec,
        tank_l: f64,
        n_dwellings: usize,
        mode: BoilerMode,
        streams: &RngStreams,
        site: u64,
    ) -> Self {
        let regulator = HeatRegulator {
            n_cores: spec.n_cores(),
            overhead_w: spec.overhead_w,
            has_resistive_backup: false, // a boiler has no reason to burn resistively
            power_off_threshold: 0.02,
            max_power_w: spec.nameplate_w,
        };
        BoilerSim {
            regulator,
            ladder: (*spec.ladder).clone(),
            tank: WaterTank::building_tank(tank_l, 50.0),
            profile: DhwProfile::residential(n_dwellings),
            mode,
            target_c: 60.0,
            rng: streams.stream_indexed("boiler-dhw", site),
            last_tick: SimTime::ZERO,
            potential_cores: 0,
            power_w: 0.0,
            energy_kwh: 0.0,
            waste_kwh: 0.0,
        }
    }

    pub fn n_cores(&self) -> usize {
        self.regulator.n_cores
    }

    pub fn potential_cores(&self) -> usize {
        self.potential_cores
    }

    pub fn energy_kwh(&self) -> f64 {
        self.energy_kwh
    }

    pub fn waste_kwh(&self) -> f64 {
        self.waste_kwh
    }

    /// Advance the site by one control period; returns the demand the
    /// regulator saw.
    pub fn control_tick(&mut self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_tick);
        if dt > SimDuration::ZERO {
            let draw_w = self.profile.sample_power_w(&mut self.rng, self.last_tick);
            let waste = self.tank.step(dt, self.power_w, draw_w);
            self.energy_kwh += self.power_w * dt.as_secs_f64() / 3.6e6;
            self.waste_kwh += waste * dt.as_secs_f64() / 3.6e6;
        }
        self.last_tick = now;
        let demand = match self.mode {
            BoilerMode::OnDemand => self.tank.demand(self.target_c, 8.0),
            BoilerMode::AlwaysOn => 1.0,
        };
        let decision = self
            .regulator
            .decide(&self.ladder, demand, self.regulator.n_cores);
        self.potential_cores = decision.usable_cores;
        // Assume the fleet's DCC backlog keeps budgeted cores busy (the
        // capacity study's operating point): power = compute budget.
        self.power_w = if decision.powered {
            decision.compute_budget_w
        } else {
            0.0
        };
        demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_days(mode: BoilerMode, days: i64) -> BoilerSim {
        let streams = RngStreams::new(77);
        let mut b = BoilerSim::stimergy(12, mode, &streams, 0);
        let step = SimDuration::from_secs(600);
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + SimDuration::from_days(days) {
            b.control_tick(t);
            t += step;
        }
        b.control_tick(t);
        b
    }

    #[test]
    fn on_demand_boiler_computes_year_round() {
        // DHW draws exist every day, so unlike a space heater the boiler
        // keeps earning compute budget in "summer" (DHW is near-seasonless
        // in this model's summer factor 0.85).
        let streams = RngStreams::new(77);
        let mut b = BoilerSim::stimergy(12, BoilerMode::OnDemand, &streams, 0);
        let step = SimDuration::from_secs(600);
        let mut t = SimTime::ZERO + SimDuration::from_days(196); // mid-July
        let mut cores = 0usize;
        let mut samples = 0usize;
        while t < SimTime::ZERO + SimDuration::from_days(203) {
            b.control_tick(t);
            cores += b.potential_cores();
            samples += 1;
            t += step;
        }
        let mean = cores as f64 / samples as f64;
        assert!(
            mean > 0.15 * b.n_cores() as f64,
            "summer boiler capacity {mean} of {} cores",
            b.n_cores()
        );
    }

    #[test]
    fn on_demand_mode_wastes_almost_nothing() {
        let b = run_days(BoilerMode::OnDemand, 14);
        assert!(
            b.energy_kwh() > 50.0,
            "two weeks of DHW: {}",
            b.energy_kwh()
        );
        assert!(
            b.waste_kwh() < 0.05 * b.energy_kwh(),
            "waste {} of {} kWh",
            b.waste_kwh(),
            b.energy_kwh()
        );
    }

    #[test]
    fn always_on_mode_wastes_heavily() {
        // A 1.8 kW rack against a 20-dwelling DHW load (~2.1 kW mean)
        // mostly keeps up… scale down the dwellings to force waste.
        let streams = RngStreams::new(78);
        let mut b = BoilerSim::stimergy(12, BoilerMode::AlwaysOn, &streams, 0);
        b.profile = DhwProfile::residential(4); // tiny draw, full compute
        let step = SimDuration::from_secs(600);
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + SimDuration::from_days(14) {
            b.control_tick(t);
            t += step;
        }
        b.control_tick(t);
        assert!(
            b.waste_kwh() > 0.5 * b.energy_kwh(),
            "always-on waste {} of {} kWh",
            b.waste_kwh(),
            b.energy_kwh()
        );
        // And capacity is flat-out the whole time.
        assert_eq!(b.potential_cores(), b.n_cores());
    }

    #[test]
    fn tank_temperature_stays_in_bounds() {
        let b = run_days(BoilerMode::AlwaysOn, 7);
        assert!(b.tank.temp_c() <= 85.0 + 1e-9);
        let b2 = run_days(BoilerMode::OnDemand, 7);
        assert!(
            b2.tank.temp_c() >= 30.0,
            "tank never collapses: {}",
            b2.tank.temp_c()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_days(BoilerMode::OnDemand, 5);
        let b = run_days(BoilerMode::OnDemand, 5);
        assert_eq!(a.energy_kwh(), b.energy_kwh());
        assert_eq!(a.tank.temp_c(), b.tank.temp_c());
    }
}
