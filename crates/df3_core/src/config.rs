//! Platform configuration.

use crate::faults::FaultPlan;
use serde::{Deserialize, Serialize};
use simcore::telemetry::TelemetryConfig;
use simcore::time::{Calendar, SimDuration};

/// Thresholds for the run-time invariant watchdogs. Watchdogs only run
/// while telemetry is enabled and only *observe*: a tripped invariant
/// becomes a `watchdog.*` flight-recorder event (surfaced by the run
/// report), never a panic — week-long district runs should land with
/// their evidence, not die mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Mean room temperature below this trips `watchdog.temp_band`.
    pub temp_lo_c: f64,
    /// Mean room temperature above this trips `watchdog.temp_band`.
    pub temp_hi_c: f64,
    /// Total queued jobs (all clusters) above this trips
    /// `watchdog.queue_depth`.
    pub max_queued: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        // The declared comfort band brackets the 17 °C night setback
        // and the 20 °C day setpoint with margin for cold snaps.
        WatchdogConfig {
            temp_lo_c: 10.0,
            temp_hi_c: 26.0,
            max_queued: 50_000,
        }
    }
}

impl WatchdogConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.temp_lo_c >= self.temp_hi_c || self.temp_lo_c.is_nan() || self.temp_hi_c.is_nan() {
            return Err(format!(
                "watchdog temp band {}..{} is empty",
                self.temp_lo_c, self.temp_hi_c
            ));
        }
        Ok(())
    }
}

/// The two §III-B cluster architectures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArchClass {
    /// Class A: every worker may serve edge *and* DCC requests. Pays a
    /// context-switch cost when a worker alternates flows, and shares
    /// one network (no isolation).
    SharedWorkers {
        /// Environment switch cost (container/VM swap between edge and
        /// DCC stacks).
        switch_cost: SimDuration,
    },
    /// Class B: `edge_workers` per cluster are dedicated to edge work
    /// inside a VPN; the rest serve DCC only. No switch cost, but edge
    /// capacity is fixed and the VPN adds per-request overhead.
    DedicatedEdge {
        /// Workers reserved for edge per cluster.
        edge_workers: usize,
        /// VPN encapsulation overhead per request (cf. `dfnet`).
        vpn_overhead: SimDuration,
    },
}

/// Full platform configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of DF clusters (buildings/districts).
    pub n_clusters: usize,
    /// Workers (Q.rads) per cluster.
    pub workers_per_cluster: usize,
    /// Architecture class.
    pub arch: ArchClass,
    /// Peak-management policy.
    pub peak_policy: sched::PeakPolicy,
    /// Admission control.
    pub admission: sched::admission::AdmissionControl,
    /// Control-loop period (thermostat/regulator tick).
    pub control_period: SimDuration,
    /// Datacenter cores for vertical offloading (0 = no datacenter).
    pub datacenter_cores: usize,
    /// Calendar anchoring of the simulated span.
    pub calendar: Calendar,
    /// Thermostat day setpoint, °C.
    pub setpoint_c: f64,
    /// Simulation horizon.
    pub horizon: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Master-node outage window (offsets from t = 0), if any. While a
    /// master is down, *indirect* edge requests cannot be scheduled
    /// (§II-C routes them through the master); heating and direct
    /// requests are unaffected — the §IV decentralisation property.
    pub master_outage: Option<(SimDuration, SimDuration)>,
    /// Resource-oriented fallback (§IV): during a master outage,
    /// indirect requests degrade to direct ones (devices talk to the
    /// servers' uniform resource interface themselves) instead of
    /// failing.
    pub roc_fallback_direct: bool,
    /// Mean time between failures of one DF server (§III-C availability
    /// and maintenance); `None` disables failures.
    pub worker_mtbf: Option<SimDuration>,
    /// Repair turnaround once a server fails (a technician visits the
    /// building — distributed maintenance is slower than a DC swap).
    pub worker_repair_time: SimDuration,
    /// Route every room step through the scalar `Room::step` reference
    /// implementation instead of the batched SoA kernel. Bit-identical
    /// results either way (the A/B tests assert it); the scalar path
    /// exists so the fast path cannot silently diverge. Defaults to the
    /// `scalar-thermal` cargo feature so CI can flip the whole suite.
    pub scalar_thermal: bool,
    /// Declarative fault-injection plan (§IV). The empty plan (the
    /// default) leaves the platform bit-identical to a build without
    /// the fault layer; `worker_mtbf`/`worker_repair_time` and
    /// `master_outage` above remain as legacy shorthands and are
    /// absorbed into the plan's churn/master injectors at build time.
    pub faults: FaultPlan,
    /// Flight-recorder + phase-profiler switches. Disabled by default;
    /// a disabled recorder leaves the run bit-identical to a build
    /// without the telemetry layer (property-tested).
    pub telemetry: TelemetryConfig,
    /// Invariant-watchdog thresholds (active only with telemetry on).
    pub watchdogs: WatchdogConfig,
}

impl PlatformConfig {
    /// A small winter deployment used by most experiments: 4 clusters of
    /// 16 Q.rads, shared workers, hybrid peak policy, one-week horizon.
    pub fn small_winter() -> Self {
        PlatformConfig {
            n_clusters: 4,
            workers_per_cluster: 16,
            arch: ArchClass::SharedWorkers {
                switch_cost: SimDuration::from_secs(2),
            },
            peak_policy: sched::PeakPolicy::Hybrid,
            admission: sched::admission::AdmissionControl::open(),
            control_period: SimDuration::from_secs(600),
            datacenter_cores: 512,
            calendar: Calendar::NOVEMBER_EPOCH,
            setpoint_c: 20.0,
            horizon: SimDuration::from_days(7),
            seed: 0xDF3,
            master_outage: None,
            roc_fallback_direct: false,
            worker_mtbf: None,
            worker_repair_time: SimDuration::from_days(3),
            scalar_thermal: cfg!(feature = "scalar-thermal"),
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::default(),
            watchdogs: WatchdogConfig::default(),
        }
    }

    /// A district-scale winter deployment (§III's "thousands of
    /// data-furnace servers heating whole neighbourhoods"): 100
    /// buildings of 10 Q.rads each — 1,000 rooms — driven by the
    /// batched thermal kernel. Same control period and calendar as
    /// [`PlatformConfig::small_winter`] so results are comparable.
    pub fn district_winter() -> Self {
        PlatformConfig {
            n_clusters: 100,
            workers_per_cluster: 10,
            datacenter_cores: 2048,
            ..Self::small_winter()
        }
    }

    /// Architecture-B variant of [`PlatformConfig::small_winter`].
    pub fn small_winter_arch_b(edge_workers: usize) -> Self {
        PlatformConfig {
            arch: ArchClass::DedicatedEdge {
                edge_workers,
                vpn_overhead: SimDuration::from_micros(400),
            },
            ..Self::small_winter()
        }
    }

    /// Total DF cores.
    pub fn total_df_cores(&self) -> usize {
        self.n_clusters * self.workers_per_cluster * 16
    }

    /// Validate the configuration; all experiment entry points call this.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_clusters == 0 || self.workers_per_cluster == 0 {
            return Err("need at least one cluster and one worker".into());
        }
        if let ArchClass::DedicatedEdge { edge_workers, .. } = self.arch {
            if edge_workers >= self.workers_per_cluster {
                return Err(format!(
                    "edge_workers {edge_workers} must leave DCC workers in a {}-worker cluster",
                    self.workers_per_cluster
                ));
            }
            if edge_workers == 0 {
                return Err("class B needs at least one dedicated edge worker".into());
            }
        }
        if self.control_period <= SimDuration::ZERO {
            return Err("control period must be positive".into());
        }
        if self.horizon <= SimDuration::ZERO {
            return Err("horizon must be positive".into());
        }
        if let Some((a, b)) = self.master_outage {
            if b <= a || a.is_negative() {
                return Err(format!("bad master outage window {a}..{b}"));
            }
        }
        if let Some(mtbf) = self.worker_mtbf {
            if mtbf <= SimDuration::ZERO {
                return Err("worker MTBF must be positive".into());
            }
        }
        if self.worker_repair_time.is_negative() {
            return Err("repair time cannot be negative".into());
        }
        self.telemetry.validate()?;
        self.watchdogs.validate()?;
        self.faults
            .validate(self.n_clusters, self.workers_per_cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(PlatformConfig::small_winter().validate().is_ok());
        assert!(PlatformConfig::small_winter_arch_b(4).validate().is_ok());
        assert!(PlatformConfig::district_winter().validate().is_ok());
    }

    #[test]
    fn district_is_at_least_a_thousand_qrads() {
        let c = PlatformConfig::district_winter();
        assert!(c.n_clusters * c.workers_per_cluster >= 1_000);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = PlatformConfig::small_winter();
        c.n_clusters = 0;
        assert!(c.validate().is_err());

        let c = PlatformConfig::small_winter_arch_b(16);
        assert!(
            c.validate().is_err(),
            "all-edge cluster leaves no DCC workers"
        );

        let c = PlatformConfig::small_winter_arch_b(0);
        assert!(c.validate().is_err());

        let mut c = PlatformConfig::small_winter();
        c.control_period = SimDuration::ZERO;
        assert!(c.validate().is_err());

        // Fault plans are validated against the fleet shape.
        let mut c = PlatformConfig::small_winter();
        c.faults =
            FaultPlan::none().with_cluster_outage(99, crate::faults::Window::from_hours(1, 2));
        assert!(c.validate().is_err());
    }

    #[test]
    fn core_math() {
        let c = PlatformConfig::small_winter();
        assert_eq!(c.total_df_cores(), 4 * 16 * 16);
    }
}
