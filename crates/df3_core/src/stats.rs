//! Everything the experiments measure.

use simcore::metrics::{Counter, Histogram, Summary, TimeSeries};
use simcore::time::SimTime;
use std::collections::BTreeMap;

/// Platform-wide measurement state.
#[derive(Debug, Clone)]
pub struct PlatformStats {
    /// Edge response times, ms.
    pub edge_response_ms: Histogram,
    /// Edge requests meeting their deadline / total completed.
    pub edge_deadline_met: Counter,
    pub edge_completed: Counter,
    /// Edge requests rejected (admission or infeasibility).
    pub edge_rejected: Counter,
    /// Edge requests dropped because their deadline expired in queue.
    pub edge_expired: Counter,
    /// DCC completions and response statistics.
    pub dcc_completed: Counter,
    pub dcc_response_s: Summary,
    /// DCC bounded slowdown (response / ideal service), dimensionless.
    pub dcc_slowdown: Summary,
    pub dcc_rejected: Counter,
    /// Work completed, Gop, by flow.
    pub edge_work_gops: f64,
    pub dcc_work_gops: f64,
    /// DCC work completed in the datacenter (vertical overflow share).
    pub dc_work_gops: f64,
    /// Worker hardware failures injected (§III-C availability).
    pub worker_failures: Counter,
    /// Peak-management actions taken.
    pub preemptions: Counter,
    pub offload_vertical: Counter,
    pub offload_horizontal: Counter,
    pub delays: Counter,
    /// Mean room temperature samples (one per control tick, averaged
    /// over workers) — the Figure 4 series.
    pub room_temp_c: TimeSeries,
    /// Usable DF cores at each control tick (heat-driven capacity).
    pub usable_cores: TimeSeries,
    /// Aggregate heat demand at each tick (mean demand in [0,1]).
    pub heat_demand: TimeSeries,
    /// Per-organisation served work, Gop.
    pub org_served_gops: BTreeMap<u32, f64>,
    /// DF energy: total (incl. resistive) and compute-only, kWh.
    pub df_total_kwh: f64,
    pub df_compute_kwh: f64,
    /// Datacenter energy, kWh.
    pub dc_it_kwh: f64,
    pub dc_facility_kwh: f64,
}

impl PlatformStats {
    pub fn new() -> Self {
        PlatformStats {
            edge_response_ms: Histogram::new(0.0, 60_000.0, 2_000),
            edge_deadline_met: Counter::new(),
            edge_completed: Counter::new(),
            edge_rejected: Counter::new(),
            edge_expired: Counter::new(),
            dcc_completed: Counter::new(),
            dcc_response_s: Summary::new(),
            dcc_slowdown: Summary::new(),
            dcc_rejected: Counter::new(),
            edge_work_gops: 0.0,
            dcc_work_gops: 0.0,
            dc_work_gops: 0.0,
            worker_failures: Counter::new(),
            preemptions: Counter::new(),
            offload_vertical: Counter::new(),
            offload_horizontal: Counter::new(),
            delays: Counter::new(),
            room_temp_c: TimeSeries::new(),
            usable_cores: TimeSeries::new(),
            heat_demand: TimeSeries::new(),
            org_served_gops: BTreeMap::new(),
            df_total_kwh: 0.0,
            df_compute_kwh: 0.0,
            dc_it_kwh: 0.0,
            dc_facility_kwh: 0.0,
        }
    }

    /// Record an edge completion.
    pub fn record_edge(&mut self, response_ms: f64, met_deadline: bool, work_gops: f64, org: u32) {
        self.edge_response_ms.observe(response_ms);
        self.edge_completed.inc();
        if met_deadline {
            self.edge_deadline_met.inc();
        }
        self.edge_work_gops += work_gops;
        *self.org_served_gops.entry(org).or_insert(0.0) += work_gops;
    }

    /// Record a DCC completion. `ideal_s` is the no-wait service time.
    pub fn record_dcc(
        &mut self,
        response_s: f64,
        ideal_s: f64,
        work_gops: f64,
        org: u32,
        in_dc: bool,
    ) {
        self.dcc_completed.inc();
        self.dcc_response_s.observe(response_s);
        self.dcc_slowdown.observe(response_s / ideal_s.max(1e-9));
        self.dcc_work_gops += work_gops;
        if in_dc {
            self.dc_work_gops += work_gops;
        }
        *self.org_served_gops.entry(org).or_insert(0.0) += work_gops;
    }

    /// Edge deadline attainment in [0, 1] over *arrived* edge requests
    /// (completed + rejected + expired) — rejecting everything cannot
    /// fake a perfect score.
    pub fn edge_attainment(&self) -> f64 {
        let denom = self.edge_completed.get() + self.edge_rejected.get() + self.edge_expired.get();
        if denom == 0 {
            return 1.0;
        }
        self.edge_deadline_met.get() as f64 / denom as f64
    }

    /// Combined platform PUE: (all energy) / (useful IT energy). DF
    /// resistive heat is *useful* to the host but not IT, so it counts
    /// as overhead here — the conservative reading.
    pub fn pue(&self) -> f64 {
        let it = self.df_compute_kwh + self.dc_it_kwh;
        if it <= 0.0 {
            return 1.0;
        }
        (self.df_total_kwh + self.dc_facility_kwh) / it
    }

    /// Fraction of DCC work that ran in the datacenter.
    pub fn dc_share(&self) -> f64 {
        if self.dcc_work_gops <= 0.0 {
            return 0.0;
        }
        self.dc_work_gops / self.dcc_work_gops
    }

    /// Sample the fleet state at a control tick.
    pub fn sample_tick(&mut self, t: SimTime, mean_temp: f64, usable: f64, demand: f64) {
        self.room_temp_c.push(t, mean_temp);
        self.usable_cores.push(t, usable);
        self.heat_demand.push(t, demand);
    }
}

impl Default for PlatformStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_attainment_counts_rejections() {
        let mut s = PlatformStats::new();
        s.record_edge(10.0, true, 1.0, 0);
        s.record_edge(900.0, false, 1.0, 0);
        s.edge_rejected.inc();
        s.edge_expired.inc();
        // 1 met out of 4 arrived.
        assert!((s.edge_attainment() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_attainment_is_one() {
        assert_eq!(PlatformStats::new().edge_attainment(), 1.0);
        assert_eq!(PlatformStats::new().pue(), 1.0);
    }

    #[test]
    fn pue_counts_resistive_as_overhead() {
        let mut s = PlatformStats::new();
        s.df_total_kwh = 120.0;
        s.df_compute_kwh = 100.0;
        assert!((s.pue() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn dc_share_tracks_offloaded_work() {
        let mut s = PlatformStats::new();
        s.record_dcc(10.0, 10.0, 70.0, 0, false);
        s.record_dcc(10.0, 10.0, 30.0, 0, true);
        assert!((s.dc_share() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn org_accounting_accumulates() {
        let mut s = PlatformStats::new();
        s.record_edge(1.0, true, 5.0, 7);
        s.record_dcc(1.0, 1.0, 10.0, 7, false);
        assert!((s.org_served_gops[&7] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_is_bounded_below_by_one_for_ideal_runs() {
        let mut s = PlatformStats::new();
        s.record_dcc(10.0, 10.0, 1.0, 0, false);
        assert!((s.dcc_slowdown.mean() - 1.0).abs() < 1e-9);
    }
}
