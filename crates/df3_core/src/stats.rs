//! Everything the experiments measure.

use crate::faults::{FaultEvent, FaultEventKind};
use simcore::metrics::{Counter, Histogram, Summary, TimeSeries};
use simcore::time::SimTime;
use std::collections::BTreeMap;

/// Cap on stored fault-timeline entries (a week of heavy churn stays
/// well under this; a runaway plan cannot balloon the run report).
const FAULT_TIMELINE_CAP: usize = 20_000;

/// Platform-wide measurement state.
#[derive(Debug, Clone)]
pub struct PlatformStats {
    /// Edge response times, ms.
    pub edge_response_ms: Histogram,
    /// Edge requests meeting their deadline / total completed.
    pub edge_deadline_met: Counter,
    pub edge_completed: Counter,
    /// Edge requests rejected (admission or infeasibility).
    pub edge_rejected: Counter,
    /// Edge requests dropped because their deadline expired in queue.
    pub edge_expired: Counter,
    /// DCC completions and response statistics.
    pub dcc_completed: Counter,
    pub dcc_response_s: Summary,
    /// DCC bounded slowdown (response / ideal service), dimensionless.
    pub dcc_slowdown: Summary,
    pub dcc_rejected: Counter,
    /// Work completed, Gop, by flow.
    pub edge_work_gops: f64,
    pub dcc_work_gops: f64,
    /// DCC work completed in the datacenter (vertical overflow share).
    pub dc_work_gops: f64,
    /// Edge requests terminally dropped after spending retry budget
    /// (counts against attainment, like a rejection).
    pub jobs_abandoned: Counter,
    /// Worker hardware failures injected (§III-C availability).
    pub worker_failures: Counter,
    /// Orphaned jobs re-dispatched after their worker failed.
    pub jobs_requeued: Counter,
    /// Edge re-submissions scheduled by the retry layer.
    pub jobs_retried: Counter,
    /// Workers quarantined for flapping.
    pub quarantines: Counter,
    /// Building-level power outages started.
    pub cluster_outages: Counter,
    /// Control ticks during which ≥ 1 room sensor was faulted.
    pub sensor_faulted_ticks: Counter,
    /// Core-seconds of partially-completed work lost to failures.
    pub wasted_core_s: f64,
    /// Boiler heat staged into failed workers' rooms, kWh (kept out of
    /// `df_total_kwh`, which stays electrical).
    pub boiler_backfill_kwh: f64,
    /// Mean time to repair: downtime per repaired worker, s.
    pub mttr_s: Summary,
    /// Repair-duration histogram, s (0 – 7 days).
    pub repair_s: Histogram,
    /// Chronological fault/recovery record (capped; see
    /// `fault_timeline_dropped`).
    pub fault_timeline: Vec<FaultEvent>,
    /// Timeline entries dropped past the cap.
    pub fault_timeline_dropped: Counter,
    /// Arrivals by flow (first submissions only — retries re-enter the
    /// pipeline but are not new arrivals).
    pub edge_arrived: Counter,
    pub dcc_arrived: Counter,
    /// Jobs still in flight when the horizon ended (queued, running,
    /// in the datacenter, or awaiting a scheduled retry) — closes the
    /// conservation ledger: arrived = terminal outcomes + in-flight.
    pub edge_in_flight_end: u64,
    pub dcc_in_flight_end: u64,
    /// Peak-management actions taken.
    pub preemptions: Counter,
    pub offload_vertical: Counter,
    pub offload_horizontal: Counter,
    pub delays: Counter,
    /// Mean room temperature samples (one per control tick, averaged
    /// over workers) — the Figure 4 series.
    pub room_temp_c: TimeSeries,
    /// Usable DF cores at each control tick (heat-driven capacity).
    pub usable_cores: TimeSeries,
    /// Aggregate heat demand at each tick (mean demand in [0,1]).
    pub heat_demand: TimeSeries,
    /// Per-organisation served work, Gop.
    pub org_served_gops: BTreeMap<u32, f64>,
    /// DF energy: total (incl. resistive) and compute-only, kWh.
    pub df_total_kwh: f64,
    pub df_compute_kwh: f64,
    /// Datacenter energy, kWh.
    pub dc_it_kwh: f64,
    pub dc_facility_kwh: f64,
}

impl PlatformStats {
    pub fn new() -> Self {
        PlatformStats {
            edge_response_ms: Histogram::new(0.0, 60_000.0, 2_000),
            edge_deadline_met: Counter::new(),
            edge_completed: Counter::new(),
            edge_rejected: Counter::new(),
            edge_expired: Counter::new(),
            dcc_completed: Counter::new(),
            dcc_response_s: Summary::new(),
            dcc_slowdown: Summary::new(),
            dcc_rejected: Counter::new(),
            edge_work_gops: 0.0,
            dcc_work_gops: 0.0,
            dc_work_gops: 0.0,
            jobs_abandoned: Counter::new(),
            worker_failures: Counter::new(),
            jobs_requeued: Counter::new(),
            jobs_retried: Counter::new(),
            quarantines: Counter::new(),
            cluster_outages: Counter::new(),
            sensor_faulted_ticks: Counter::new(),
            wasted_core_s: 0.0,
            boiler_backfill_kwh: 0.0,
            mttr_s: Summary::new(),
            repair_s: Histogram::new(0.0, 7.0 * 86_400.0, 1_024),
            fault_timeline: Vec::new(),
            fault_timeline_dropped: Counter::new(),
            edge_arrived: Counter::new(),
            dcc_arrived: Counter::new(),
            edge_in_flight_end: 0,
            dcc_in_flight_end: 0,
            preemptions: Counter::new(),
            offload_vertical: Counter::new(),
            offload_horizontal: Counter::new(),
            delays: Counter::new(),
            room_temp_c: TimeSeries::new(),
            usable_cores: TimeSeries::new(),
            heat_demand: TimeSeries::new(),
            org_served_gops: BTreeMap::new(),
            df_total_kwh: 0.0,
            df_compute_kwh: 0.0,
            dc_it_kwh: 0.0,
            dc_facility_kwh: 0.0,
        }
    }

    /// Record an edge completion.
    pub fn record_edge(&mut self, response_ms: f64, met_deadline: bool, work_gops: f64, org: u32) {
        self.edge_response_ms.observe(response_ms);
        self.edge_completed.inc();
        if met_deadline {
            self.edge_deadline_met.inc();
        }
        self.edge_work_gops += work_gops;
        *self.org_served_gops.entry(org).or_insert(0.0) += work_gops;
    }

    /// Record a DCC completion. `ideal_s` is the no-wait service time.
    pub fn record_dcc(
        &mut self,
        response_s: f64,
        ideal_s: f64,
        work_gops: f64,
        org: u32,
        in_dc: bool,
    ) {
        self.dcc_completed.inc();
        self.dcc_response_s.observe(response_s);
        self.dcc_slowdown.observe(response_s / ideal_s.max(1e-9));
        self.dcc_work_gops += work_gops;
        if in_dc {
            self.dc_work_gops += work_gops;
        }
        *self.org_served_gops.entry(org).or_insert(0.0) += work_gops;
    }

    /// Edge deadline attainment in [0, 1] over *arrived* edge requests
    /// (completed + rejected + expired + abandoned) — rejecting or
    /// abandoning everything cannot fake a perfect score.
    pub fn edge_attainment(&self) -> f64 {
        let denom = self.edge_completed.get()
            + self.edge_rejected.get()
            + self.edge_expired.get()
            + self.jobs_abandoned.get();
        if denom == 0 {
            return 1.0;
        }
        self.edge_deadline_met.get() as f64 / denom as f64
    }

    /// Append a fault-timeline record (bounded; overflow is counted).
    pub fn push_fault_event(
        &mut self,
        t: SimTime,
        kind: FaultEventKind,
        cluster: usize,
        worker: Option<usize>,
    ) {
        if self.fault_timeline.len() < FAULT_TIMELINE_CAP {
            self.fault_timeline.push(FaultEvent {
                t,
                kind,
                cluster,
                worker,
            });
        } else {
            self.fault_timeline_dropped.inc();
        }
    }

    /// Terminal edge outcomes recorded so far.
    pub fn edge_terminal(&self) -> u64 {
        self.edge_completed.get()
            + self.edge_rejected.get()
            + self.edge_expired.get()
            + self.jobs_abandoned.get()
    }

    /// Rows of the recovery section of the run report:
    /// `(metric, value)` pairs, rendered by the experiment tables.
    pub fn recovery_report(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            (
                "worker failures".into(),
                self.worker_failures.get().to_string(),
            ),
            ("jobs requeued".into(), self.jobs_requeued.get().to_string()),
            ("jobs retried".into(), self.jobs_retried.get().to_string()),
            (
                "jobs abandoned".into(),
                self.jobs_abandoned.get().to_string(),
            ),
            (
                "wasted core-hours".into(),
                format!("{:.2}", self.wasted_core_s / 3_600.0),
            ),
        ];
        if self.mttr_s.count() > 0 {
            rows.push((
                "MTTR".into(),
                format!(
                    "{:.2} h (n={}, max {:.2} h)",
                    self.mttr_s.mean() / 3_600.0,
                    self.mttr_s.count(),
                    self.mttr_s.max() / 3_600.0
                ),
            ));
        }
        if self.quarantines.get() > 0 {
            rows.push(("quarantines".into(), self.quarantines.get().to_string()));
        }
        if self.cluster_outages.get() > 0 {
            rows.push((
                "cluster outages".into(),
                self.cluster_outages.get().to_string(),
            ));
        }
        if self.boiler_backfill_kwh > 0.0 {
            rows.push((
                "boiler backfill kWh".into(),
                format!("{:.2}", self.boiler_backfill_kwh),
            ));
        }
        if self.fault_timeline_dropped.get() > 0 {
            // The timeline silently losing entries would make post-hoc
            // chaos analysis lie; surface the truncation loudly.
            rows.push((
                "fault timeline dropped".into(),
                format!(
                    "{} (WARNING: timeline truncated at {} entries)",
                    self.fault_timeline_dropped.get(),
                    FAULT_TIMELINE_CAP
                ),
            ));
        }
        rows
    }

    /// Every monotonic counter as stable `(name, value)` rows, in a
    /// fixed order — the exporters (Prometheus text, JSONL run report)
    /// iterate this so their output is byte-reproducible.
    pub fn counter_rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("edge_arrived", self.edge_arrived.get()),
            ("edge_completed", self.edge_completed.get()),
            ("edge_deadline_met", self.edge_deadline_met.get()),
            ("edge_rejected", self.edge_rejected.get()),
            ("edge_expired", self.edge_expired.get()),
            ("dcc_arrived", self.dcc_arrived.get()),
            ("dcc_completed", self.dcc_completed.get()),
            ("dcc_rejected", self.dcc_rejected.get()),
            ("jobs_abandoned", self.jobs_abandoned.get()),
            ("jobs_requeued", self.jobs_requeued.get()),
            ("jobs_retried", self.jobs_retried.get()),
            ("worker_failures", self.worker_failures.get()),
            ("quarantines", self.quarantines.get()),
            ("cluster_outages", self.cluster_outages.get()),
            ("sensor_faulted_ticks", self.sensor_faulted_ticks.get()),
            ("preemptions", self.preemptions.get()),
            ("offload_vertical", self.offload_vertical.get()),
            ("offload_horizontal", self.offload_horizontal.get()),
            ("delays", self.delays.get()),
            ("fault_timeline_dropped", self.fault_timeline_dropped.get()),
            ("edge_in_flight_end", self.edge_in_flight_end),
            ("dcc_in_flight_end", self.dcc_in_flight_end),
        ]
    }

    /// Derived/continuous metrics as stable `(name, value)` rows, in a
    /// fixed order (companion of [`PlatformStats::counter_rows`]).
    pub fn gauge_rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("edge_attainment", self.edge_attainment()),
            ("edge_response_ms_p50", self.edge_response_ms.p50()),
            ("edge_response_ms_p99", self.edge_response_ms.p99()),
            ("dcc_slowdown_mean", self.dcc_slowdown.mean()),
            ("edge_work_gops", self.edge_work_gops),
            ("dcc_work_gops", self.dcc_work_gops),
            ("dc_work_gops", self.dc_work_gops),
            ("dc_share", self.dc_share()),
            ("wasted_core_s", self.wasted_core_s),
            ("boiler_backfill_kwh", self.boiler_backfill_kwh),
            ("df_total_kwh", self.df_total_kwh),
            ("df_compute_kwh", self.df_compute_kwh),
            ("dc_it_kwh", self.dc_it_kwh),
            ("dc_facility_kwh", self.dc_facility_kwh),
            ("pue", self.pue()),
        ]
    }

    /// Combined platform PUE: (all energy) / (useful IT energy). DF
    /// resistive heat is *useful* to the host but not IT, so it counts
    /// as overhead here — the conservative reading.
    pub fn pue(&self) -> f64 {
        let it = self.df_compute_kwh + self.dc_it_kwh;
        if it <= 0.0 {
            return 1.0;
        }
        (self.df_total_kwh + self.dc_facility_kwh) / it
    }

    /// Fraction of DCC work that ran in the datacenter.
    pub fn dc_share(&self) -> f64 {
        if self.dcc_work_gops <= 0.0 {
            return 0.0;
        }
        self.dc_work_gops / self.dcc_work_gops
    }

    /// Sample the fleet state at a control tick.
    pub fn sample_tick(&mut self, t: SimTime, mean_temp: f64, usable: f64, demand: f64) {
        self.room_temp_c.push(t, mean_temp);
        self.usable_cores.push(t, usable);
        self.heat_demand.push(t, demand);
    }
}

impl Default for PlatformStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Field-by-field in declaration order — every measurement a restored
/// run keeps accumulating must survive the round trip bit-exactly.
impl simcore::snapshot::Snapshot for PlatformStats {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.edge_response_ms.encode(w);
        self.edge_deadline_met.encode(w);
        self.edge_completed.encode(w);
        self.edge_rejected.encode(w);
        self.edge_expired.encode(w);
        self.dcc_completed.encode(w);
        self.dcc_response_s.encode(w);
        self.dcc_slowdown.encode(w);
        self.dcc_rejected.encode(w);
        w.put_f64(self.edge_work_gops);
        w.put_f64(self.dcc_work_gops);
        w.put_f64(self.dc_work_gops);
        self.jobs_abandoned.encode(w);
        self.worker_failures.encode(w);
        self.jobs_requeued.encode(w);
        self.jobs_retried.encode(w);
        self.quarantines.encode(w);
        self.cluster_outages.encode(w);
        self.sensor_faulted_ticks.encode(w);
        w.put_f64(self.wasted_core_s);
        w.put_f64(self.boiler_backfill_kwh);
        self.mttr_s.encode(w);
        self.repair_s.encode(w);
        self.fault_timeline.encode(w);
        self.fault_timeline_dropped.encode(w);
        self.edge_arrived.encode(w);
        self.dcc_arrived.encode(w);
        w.put_u64(self.edge_in_flight_end);
        w.put_u64(self.dcc_in_flight_end);
        self.preemptions.encode(w);
        self.offload_vertical.encode(w);
        self.offload_horizontal.encode(w);
        self.delays.encode(w);
        self.room_temp_c.encode(w);
        self.usable_cores.encode(w);
        self.heat_demand.encode(w);
        self.org_served_gops.encode(w);
        w.put_f64(self.df_total_kwh);
        w.put_f64(self.df_compute_kwh);
        w.put_f64(self.dc_it_kwh);
        w.put_f64(self.dc_facility_kwh);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(PlatformStats {
            edge_response_ms: Histogram::decode(r)?,
            edge_deadline_met: Counter::decode(r)?,
            edge_completed: Counter::decode(r)?,
            edge_rejected: Counter::decode(r)?,
            edge_expired: Counter::decode(r)?,
            dcc_completed: Counter::decode(r)?,
            dcc_response_s: Summary::decode(r)?,
            dcc_slowdown: Summary::decode(r)?,
            dcc_rejected: Counter::decode(r)?,
            edge_work_gops: r.take_f64()?,
            dcc_work_gops: r.take_f64()?,
            dc_work_gops: r.take_f64()?,
            jobs_abandoned: Counter::decode(r)?,
            worker_failures: Counter::decode(r)?,
            jobs_requeued: Counter::decode(r)?,
            jobs_retried: Counter::decode(r)?,
            quarantines: Counter::decode(r)?,
            cluster_outages: Counter::decode(r)?,
            sensor_faulted_ticks: Counter::decode(r)?,
            wasted_core_s: r.take_f64()?,
            boiler_backfill_kwh: r.take_f64()?,
            mttr_s: Summary::decode(r)?,
            repair_s: Histogram::decode(r)?,
            fault_timeline: Vec::decode(r)?,
            fault_timeline_dropped: Counter::decode(r)?,
            edge_arrived: Counter::decode(r)?,
            dcc_arrived: Counter::decode(r)?,
            edge_in_flight_end: r.take_u64()?,
            dcc_in_flight_end: r.take_u64()?,
            preemptions: Counter::decode(r)?,
            offload_vertical: Counter::decode(r)?,
            offload_horizontal: Counter::decode(r)?,
            delays: Counter::decode(r)?,
            room_temp_c: TimeSeries::decode(r)?,
            usable_cores: TimeSeries::decode(r)?,
            heat_demand: TimeSeries::decode(r)?,
            org_served_gops: BTreeMap::decode(r)?,
            df_total_kwh: r.take_f64()?,
            df_compute_kwh: r.take_f64()?,
            dc_it_kwh: r.take_f64()?,
            dc_facility_kwh: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_attainment_counts_rejections() {
        let mut s = PlatformStats::new();
        s.record_edge(10.0, true, 1.0, 0);
        s.record_edge(900.0, false, 1.0, 0);
        s.edge_rejected.inc();
        s.edge_expired.inc();
        // 1 met out of 4 arrived.
        assert!((s.edge_attainment() - 0.25).abs() < 1e-12);
        // Abandoned requests dilute attainment too: 1 met out of 5.
        s.jobs_abandoned.inc();
        assert!((s.edge_attainment() - 0.2).abs() < 1e-12);
        assert_eq!(s.edge_terminal(), 5);
    }

    #[test]
    fn fault_timeline_is_bounded() {
        let mut s = PlatformStats::new();
        for i in 0..25_000 {
            s.push_fault_event(
                SimTime::from_secs(i),
                FaultEventKind::WorkerFail,
                0,
                Some(0),
            );
        }
        assert_eq!(s.fault_timeline.len(), 20_000);
        assert_eq!(s.fault_timeline_dropped.get(), 5_000);
    }

    #[test]
    fn recovery_report_grows_with_activity() {
        let mut s = PlatformStats::new();
        let base = s.recovery_report().len();
        s.mttr_s.observe(3_600.0);
        s.quarantines.inc();
        s.cluster_outages.inc();
        s.boiler_backfill_kwh = 1.5;
        assert_eq!(s.recovery_report().len(), base + 4);
    }

    #[test]
    fn empty_stats_attainment_is_one() {
        assert_eq!(PlatformStats::new().edge_attainment(), 1.0);
        assert_eq!(PlatformStats::new().pue(), 1.0);
    }

    #[test]
    fn pue_counts_resistive_as_overhead() {
        let mut s = PlatformStats::new();
        s.df_total_kwh = 120.0;
        s.df_compute_kwh = 100.0;
        assert!((s.pue() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn dc_share_tracks_offloaded_work() {
        let mut s = PlatformStats::new();
        s.record_dcc(10.0, 10.0, 70.0, 0, false);
        s.record_dcc(10.0, 10.0, 30.0, 0, true);
        assert!((s.dc_share() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn org_accounting_accumulates() {
        let mut s = PlatformStats::new();
        s.record_edge(1.0, true, 5.0, 7);
        s.record_dcc(1.0, 1.0, 10.0, 7, false);
        assert!((s.org_served_gops[&7] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_is_bounded_below_by_one_for_ideal_runs() {
        let mut s = PlatformStats::new();
        s.record_dcc(10.0, 10.0, 1.0, 0, false);
        assert!((s.dcc_slowdown.mean() - 1.0).abs() < 1e-9);
    }
}
