//! One DF worker: a server in a room, closing the heat loop.
//!
//! The worker owns its [`ModulatingThermostat`] and [`HeatRegulator`];
//! its room lives as one slot of the platform's fleet-wide
//! [`thermal::ThermalBatch`] (the district-scale SoA fast path). Every
//! control tick the platform stages each worker's elapsed interval and
//! heat output into the batch, sweeps all rooms in one loop, then calls
//! [`WorkerSim::complete_tick`] with the new room temperature: energy
//! accounting closes, the thermostat reads the temperature, and the
//! regulator converts the demand into a compute budget for the next
//! period. [`WorkerSim::control_tick`] bundles the same sequence around
//! a standalone scalar [`Room`] for single-worker studies and tests.
//!
//! Jobs occupy cores at the P-state in force at dispatch and keep that
//! speed until completion (a deliberate simplification: Qarnot's
//! middleware also avoids re-speeding running containers; the regulator
//! only steers *new* placements).

use crate::regulator::{HeatRegulator, RegulatorDecision};
use dfhw::dvfs::DvfsLadder;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use std::sync::Arc;
use thermal::room::Room;
use thermal::thermostat::ModulatingThermostat;
use workloads::{Job, JobId};

/// State of a worker's room-temperature sensor (fault injection).
///
/// The regulator must keep working — and never panic — on a faulty
/// sensor: a dropout degrades to the last-known-good reading minus a
/// conservative bias (erring toward heating), a stuck sensor feeds its
/// constant through the same clamped thermostat demand curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorState {
    Healthy,
    Dropout,
    StuckAt(f64),
}

/// A job slice running on a worker.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunningSlice {
    pub job: Job,
    pub cores: usize,
    /// Per-core speed, Gops/s, fixed at dispatch.
    pub gops_per_core: f64,
    /// DVFS level in force at dispatch (determines `gops_per_core`);
    /// cached so power accounting needn't search the ladder per tick.
    pub level: usize,
    pub started: SimTime,
    pub finish: SimTime,
}

/// One DF server + room + regulator.
#[derive(Debug, Clone)]
pub struct WorkerSim {
    pub id: usize,
    ladder: Arc<DvfsLadder>,
    regulator: HeatRegulator,
    pub thermostat: ModulatingThermostat,
    /// Current regulator decision (budget for this control period).
    decision: RegulatorDecision,
    /// Jobs currently running.
    running: Vec<RunningSlice>,
    /// Last control-tick time (thermal integration anchor).
    last_tick: SimTime,
    /// Energy drawn so far, J (compute + overhead + resistive).
    energy_j: f64,
    /// Compute-only energy, J (for PUE-style splits).
    compute_energy_j: f64,
    /// Heat-budgeted core capacity if backlog were unlimited — the
    /// §III-C "computing power depends on the heat demand" metric.
    potential_cores: usize,
    /// Whether the server is broken and awaiting repair (§III-C
    /// availability; a failed heater computes nothing and heats nothing).
    failed: bool,
    /// Whether this worker is reserved for edge work (architecture B).
    pub edge_dedicated: bool,
    /// Room-sensor state (fault injection; healthy by default).
    sensor: SensorState,
    /// Last reading taken while the sensor was healthy, °C.
    last_good_c: Option<f64>,
    /// Conservative bias subtracted from degraded readings, °C.
    pub sensor_bias_c: f64,
    /// Flow of the most recently dispatched job (context-switch cost
    /// model of architecture A).
    last_flow_was_edge: Option<bool>,
}

impl WorkerSim {
    pub fn new(
        id: usize,
        ladder: Arc<DvfsLadder>,
        regulator: HeatRegulator,
        thermostat: ModulatingThermostat,
    ) -> Self {
        let decision = RegulatorDecision {
            powered: true,
            usable_cores: regulator.n_cores,
            level: ladder.n_states() - 1,
            compute_budget_w: regulator.max_power_w,
            resistive_w: 0.0,
            heat_budget_w: 0.0,
        };
        WorkerSim {
            id,
            ladder,
            regulator,
            thermostat,
            decision,
            running: Vec::new(),
            last_tick: SimTime::ZERO,
            energy_j: 0.0,
            compute_energy_j: 0.0,
            potential_cores: 0,
            failed: false,
            edge_dedicated: false,
            sensor: SensorState::Healthy,
            last_good_c: None,
            sensor_bias_c: 0.5,
            last_flow_was_edge: None,
        }
    }

    /// Set the room sensor's fault state (platform fault injection).
    pub fn set_sensor(&mut self, s: SensorState) {
        self.sensor = s;
    }

    pub fn sensor(&self) -> SensorState {
        self.sensor
    }

    /// What the control loop *measures* given the true `room_c`. A
    /// healthy sensor reads the truth (and refreshes last-known-good);
    /// a dropout degrades to last-known-good minus the conservative
    /// bias; a stuck sensor returns its constant. Non-finite inputs
    /// degrade to the day setpoint minus the bias — the result is
    /// always finite, so the clamped thermostat demand never panics.
    fn sense(&mut self, room_c: f64) -> f64 {
        let measured = match self.sensor {
            SensorState::Healthy => {
                if room_c.is_finite() {
                    self.last_good_c = Some(room_c);
                }
                room_c
            }
            SensorState::Dropout => {
                self.last_good_c.unwrap_or(self.thermostat.schedule.day_c) - self.sensor_bias_c
            }
            SensorState::StuckAt(v) => v,
        };
        if measured.is_finite() {
            measured
        } else {
            self.thermostat.schedule.day_c - self.sensor_bias_c
        }
    }

    pub fn n_cores(&self) -> usize {
        self.regulator.n_cores
    }

    pub fn decision(&self) -> &RegulatorDecision {
        &self.decision
    }

    /// Cores currently occupied by running jobs.
    pub fn busy_cores(&self) -> usize {
        self.running.iter().map(|s| s.cores).sum()
    }

    /// Cores available for a new dispatch right now.
    pub fn free_cores(&self) -> usize {
        self.decision.usable_cores.saturating_sub(self.busy_cores())
    }

    /// Cores held by preemptible (non-edge) jobs.
    pub fn preemptible_cores(&self) -> usize {
        self.running
            .iter()
            .filter(|s| !s.job.is_edge())
            .map(|s| s.cores)
            .sum()
    }

    pub fn running(&self) -> &[RunningSlice] {
        &self.running
    }

    /// Compute-attributable power (overhead + running cores), W.
    pub fn compute_power_w(&self) -> f64 {
        if !self.decision.powered {
            return 0.0;
        }
        let core_w: f64 = self
            .running
            .iter()
            .map(|s| s.cores as f64 * self.ladder.power_w(s.level, 1.0))
            .sum();
        self.regulator.overhead_w + core_w
    }

    /// Resistive-backup power right now: fills the gap between the heat
    /// budget and the actual compute draw (§II-C decoupling — comfort
    /// never depends on cloud demand).
    pub fn resistive_w(&self) -> f64 {
        if !self.decision.powered || !self.regulator.has_resistive_backup {
            return 0.0;
        }
        (self.decision.heat_budget_w - self.compute_power_w()).max(0.0)
    }

    /// Instantaneous electrical power, W.
    pub fn power_w(&self) -> f64 {
        if !self.decision.powered {
            return 0.0;
        }
        self.compute_power_w() + self.resistive_w()
    }

    /// Heat currently flowing into the room, W (all drawn power).
    pub fn heat_w(&self) -> f64 {
        self.power_w()
    }

    /// Dispatch `job` now. Returns the finish time, or `None` if the
    /// worker cannot take it (not powered, or not enough budgeted
    /// cores). `switch_cost` is added when the worker alternates
    /// between edge and DCC work (architecture A context switching).
    pub fn dispatch(
        &mut self,
        now: SimTime,
        job: Job,
        switch_cost: SimDuration,
    ) -> Option<SimTime> {
        if self.failed || !self.decision.powered || self.free_cores() < job.cores {
            return None;
        }
        let level = self.decision.level;
        let gops = self.ladder.throughput(level);
        let mut start = now;
        let is_edge = job.is_edge();
        if let Some(prev_edge) = self.last_flow_was_edge {
            if prev_edge != is_edge {
                start += switch_cost;
            }
        }
        self.last_flow_was_edge = Some(is_edge);
        let finish = start + job.service_time(gops);
        self.running.push(RunningSlice {
            job,
            cores: job.cores,
            gops_per_core: gops,
            level,
            started: start,
            finish,
        });
        Some(finish)
    }

    /// Remove a finished (or preempted) job; returns its slice. Panics
    /// if absent — a missing job is an event-plumbing bug.
    pub fn remove(&mut self, id: JobId) -> RunningSlice {
        let idx = self
            .running
            .iter()
            .position(|s| s.job.id == id)
            .unwrap_or_else(|| panic!("job {id:?} not running on worker {}", self.id));
        self.running.swap_remove(idx)
    }

    /// Preempt a job at `now`: remove it and return the job with its
    /// work reduced by the completed fraction (it re-enters a queue).
    pub fn preempt(&mut self, id: JobId, now: SimTime) -> Job {
        let slice = self.remove(id);
        let done = if now <= slice.started {
            0.0
        } else {
            let ran = (now - slice.started).as_secs_f64();
            ran * slice.cores as f64 * slice.gops_per_core
        };
        let mut job = slice.job;
        job.work_gops = (job.work_gops - done).max(job.work_gops * 0.001);
        job
    }

    /// Time of the last control tick — the thermal integration anchor.
    /// The interval `[last_tick, now)` is what the platform stages into
    /// the fleet batch before calling [`WorkerSim::complete_tick`].
    pub fn last_tick(&self) -> SimTime {
        self.last_tick
    }

    /// Finish the control loop at `now`, after this worker's room has
    /// been advanced (in the fleet batch or a scalar [`Room`]) to
    /// `room_c`: close the energy integrals over the elapsed period,
    /// read the thermostat, and set the next period's regulator
    /// decision. Returns the demand.
    pub fn complete_tick(&mut self, now: SimTime, room_c: f64, backlog_cores: usize) -> f64 {
        let dt = now.saturating_since(self.last_tick);
        if dt > SimDuration::ZERO {
            self.energy_j += self.heat_w() * dt.as_secs_f64();
            self.compute_energy_j += self.compute_power_w() * dt.as_secs_f64();
        }
        self.last_tick = now;
        if self.failed {
            // Broken hardware: dark and cold until repaired.
            self.potential_cores = 0;
            self.decision = RegulatorDecision {
                powered: false,
                usable_cores: 0,
                level: 0,
                compute_budget_w: 0.0,
                resistive_w: 0.0,
                heat_budget_w: 0.0,
            };
            return 0.0;
        }
        let measured_c = self.sense(room_c);
        let demand = self.thermostat.demand(now, measured_c);
        self.potential_cores = self
            .regulator
            .decide(&self.ladder, demand, self.regulator.n_cores)
            .usable_cores;
        // Never budget below what running jobs already hold: running
        // slices finish at their dispatched speed.
        let decision =
            self.regulator
                .decide(&self.ladder, demand, backlog_cores.max(self.busy_cores()));
        let floor = self.busy_cores();
        self.decision = RegulatorDecision {
            powered: decision.powered || floor > 0,
            usable_cores: decision.usable_cores.max(floor),
            ..decision
        };
        demand
    }

    /// Run the full control loop at `now` against a standalone scalar
    /// `room`: integrate the room with the heat produced over the
    /// elapsed period, then [`WorkerSim::complete_tick`]. This is the
    /// reference single-worker path (experiments, tests); the platform
    /// batches the room step fleet-wide instead.
    pub fn control_tick(
        &mut self,
        now: SimTime,
        outdoor_c: f64,
        backlog_cores: usize,
        room: &mut Room,
    ) -> f64 {
        let dt = now.saturating_since(self.last_tick);
        if dt > SimDuration::ZERO {
            room.step(dt, outdoor_c, self.heat_w());
        }
        self.complete_tick(now, room.temperature_c(), backlog_cores)
    }

    /// Heat-budgeted capacity at the last tick, cores (independent of
    /// the backlog actually present).
    pub fn potential_cores(&self) -> usize {
        self.potential_cores
    }

    /// Whether the server is currently broken.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Break the server at `now`: every running job is preempted (its
    /// remaining work is returned for requeueing) and the board goes
    /// dark until [`WorkerSim::repair`].
    pub fn fail(&mut self, now: SimTime) -> Vec<Job> {
        self.failed = true;
        let ids: Vec<workloads::JobId> = self.running.iter().map(|s| s.job.id).collect();
        let jobs = ids.into_iter().map(|id| self.preempt(id, now)).collect();
        self.decision = RegulatorDecision {
            powered: false,
            usable_cores: 0,
            level: 0,
            compute_budget_w: 0.0,
            resistive_w: 0.0,
            heat_budget_w: 0.0,
        };
        self.potential_cores = 0;
        jobs
    }

    /// Return the server to service (the next control tick re-budgets it).
    pub fn repair(&mut self) {
        self.failed = false;
    }

    /// Energy drawn so far, kWh.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_j / 3.6e6
    }

    /// Compute-attributable energy, kWh.
    pub fn compute_energy_kwh(&self) -> f64 {
        self.compute_energy_j / 3.6e6
    }

    /// Checkpoint the worker's *dynamic* state. The static half (DVFS
    /// ladder, regulator, thermostat, `edge_dedicated`, sensor bias) is
    /// a pure function of the platform config and is rebuilt on
    /// restore, so only what the run mutated is encoded.
    pub fn snapshot_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        use simcore::snapshot::Snapshot;
        self.decision.encode(w);
        self.running.encode(w);
        self.last_tick.encode(w);
        w.put_f64(self.energy_j);
        w.put_f64(self.compute_energy_j);
        w.put_usize(self.potential_cores);
        w.put_bool(self.failed);
        self.sensor.encode(w);
        self.last_good_c.encode(w);
        self.last_flow_was_edge.encode(w);
    }

    /// Overlay a checkpointed dynamic state onto a freshly built worker.
    pub fn restore_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::{Snapshot, SnapshotError};
        self.decision = RegulatorDecision::decode(r)?;
        self.running = Vec::decode(r)?;
        self.last_tick = SimTime::decode(r)?;
        self.energy_j = r.take_f64()?;
        self.compute_energy_j = r.take_f64()?;
        self.potential_cores = r.take_usize()?;
        self.failed = r.take_bool()?;
        self.sensor = SensorState::decode(r)?;
        self.last_good_c = Option::decode(r)?;
        self.last_flow_was_edge = Option::decode(r)?;
        if self.busy_cores() > self.regulator.n_cores {
            return Err(SnapshotError::Corrupt(format!(
                "worker {}: {} busy cores exceed the {}-core board",
                self.id,
                self.busy_cores(),
                self.regulator.n_cores
            )));
        }
        Ok(())
    }
}

impl simcore::snapshot::Snapshot for SensorState {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        match self {
            SensorState::Healthy => w.put_u8(0),
            SensorState::Dropout => w.put_u8(1),
            SensorState::StuckAt(v) => {
                w.put_u8(2);
                w.put_f64(*v);
            }
        }
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(SensorState::Healthy),
            1 => Ok(SensorState::Dropout),
            2 => Ok(SensorState::StuckAt(r.take_f64()?)),
            b => Err(simcore::snapshot::SnapshotError::Corrupt(format!(
                "sensor state tag {b}"
            ))),
        }
    }
}

impl simcore::snapshot::Snapshot for RunningSlice {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.job.encode(w);
        w.put_usize(self.cores);
        w.put_f64(self.gops_per_core);
        w.put_usize(self.level);
        self.started.encode(w);
        self.finish.encode(w);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(RunningSlice {
            job: Job::decode(r)?,
            cores: r.take_usize()?,
            gops_per_core: r.take_f64()?,
            level: r.take_usize()?,
            started: SimTime::decode(r)?,
            finish: SimTime::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermal::room::RoomParams;
    use thermal::thermostat::SetpointSchedule;
    use workloads::{Flow, JobId};

    fn worker() -> (WorkerSim, Room) {
        (
            WorkerSim::new(
                0,
                Arc::new(DvfsLadder::desktop_i7()),
                HeatRegulator::for_qrad(),
                ModulatingThermostat::new(SetpointSchedule::constant(20.0), 1.5),
            ),
            Room::new(RoomParams::typical_apartment_room(), 17.0),
        )
    }

    fn job(id: u64, cores: usize, work: f64, edge: bool) -> Job {
        Job {
            id: JobId(id),
            flow: if edge { Flow::EdgeIndirect } else { Flow::Dcc },
            arrival: SimTime::ZERO,
            work_gops: work,
            cores,
            deadline: None,
            input_bytes: 0,
            output_bytes: 0,
            org: 0,
        }
    }

    #[test]
    fn dispatch_occupies_cores_until_finish() {
        let (mut w, mut room) = worker();
        w.control_tick(SimTime::ZERO, 5.0, 100, &mut room);
        let finish = w
            .dispatch(SimTime::ZERO, job(1, 4, 480.0, false), SimDuration::ZERO)
            .expect("cold room → full budget");
        assert_eq!(w.busy_cores(), 4);
        // 480 Gop / (4 cores × 3 Gops) = 40 s.
        assert_eq!(finish, SimTime::from_secs(40));
        let slice = w.remove(JobId(1));
        assert_eq!(slice.cores, 4);
        assert_eq!(w.busy_cores(), 0);
    }

    #[test]
    fn dispatch_fails_when_budget_exhausted() {
        let (mut w, mut room) = worker();
        w.control_tick(SimTime::ZERO, 5.0, 100, &mut room);
        assert!(w
            .dispatch(SimTime::ZERO, job(1, 12, 100.0, false), SimDuration::ZERO)
            .is_some());
        assert!(w
            .dispatch(SimTime::ZERO, job(2, 8, 100.0, false), SimDuration::ZERO)
            .is_none());
        assert!(w
            .dispatch(SimTime::ZERO, job(3, 4, 100.0, false), SimDuration::ZERO)
            .is_some());
    }

    #[test]
    fn warm_room_throttles_capacity() {
        let (mut w, _) = worker();
        // Make the room warm: no demand.
        let mut room = Room::new(RoomParams::typical_apartment_room(), 24.0);
        w.control_tick(SimTime::ZERO, 15.0, 100, &mut room);
        assert!(!w.decision().powered, "no heat demand → board off");
        assert!(w
            .dispatch(SimTime::ZERO, job(1, 1, 10.0, false), SimDuration::ZERO)
            .is_none());
    }

    #[test]
    fn cold_room_creates_capacity_and_heat() {
        let (mut w, mut room) = worker();
        let demand = w.control_tick(SimTime::ZERO, 0.0, 100, &mut room);
        assert!(demand > 0.9, "17 °C room, 20 °C target → high demand");
        assert!(w.decision().usable_cores >= 12);
        // With no running jobs the resistive element covers the demand.
        assert!(w.heat_w() > 300.0);
    }

    #[test]
    fn context_switch_cost_applies_on_flow_alternation() {
        let (mut w, mut room) = worker();
        w.control_tick(SimTime::ZERO, 0.0, 100, &mut room);
        let cost = SimDuration::from_secs(2);
        let f1 = w
            .dispatch(SimTime::ZERO, job(1, 1, 3.0, false), cost)
            .unwrap();
        assert_eq!(f1, SimTime::from_secs(1)); // first job: no switch
        let f2 = w
            .dispatch(SimTime::ZERO, job(2, 1, 3.0, true), cost)
            .unwrap();
        assert_eq!(f2, SimTime::from_secs(3)); // switch DCC→edge: +2 s
        let f3 = w
            .dispatch(SimTime::ZERO, job(3, 1, 3.0, true), cost)
            .unwrap();
        assert_eq!(f3, SimTime::from_secs(1)); // edge→edge: no switch
    }

    #[test]
    fn preemption_returns_remaining_work() {
        let (mut w, mut room) = worker();
        w.control_tick(SimTime::ZERO, 0.0, 100, &mut room);
        w.dispatch(SimTime::ZERO, job(1, 2, 600.0, false), SimDuration::ZERO);
        // After 50 s at 2×3 Gops, 300 Gop done.
        let back = w.preempt(JobId(1), SimTime::from_secs(50));
        assert!(
            (back.work_gops - 300.0).abs() < 1.0,
            "remaining {}",
            back.work_gops
        );
        assert_eq!(w.busy_cores(), 0);
    }

    #[test]
    fn thermal_loop_warms_the_room_toward_setpoint() {
        let (mut w, mut room) = worker();
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_secs(600);
        for _ in 0..(6 * 48) {
            // Plenty of backlog: the server heats by computing.
            w.control_tick(t, 5.0, 100, &mut room);
            t += dt;
        }
        let temp = room.temperature_c();
        assert!(
            (18.4..21.0).contains(&temp),
            "room should settle near 20 °C, got {temp}"
        );
        assert!(w.energy_kwh() > 0.5, "energy accrued: {}", w.energy_kwh());
    }

    #[test]
    fn running_jobs_keep_their_cores_across_throttling() {
        let (mut w, mut room) = worker();
        w.control_tick(SimTime::ZERO, 0.0, 100, &mut room);
        w.dispatch(SimTime::ZERO, job(1, 8, 1e6, false), SimDuration::ZERO);
        // Room becomes warm: demand collapses, but the slice stays.
        room = Room::new(RoomParams::typical_apartment_room(), 25.0);
        w.control_tick(SimTime::from_secs(600), 15.0, 100, &mut room);
        assert!(w.decision().powered, "powered while a job still runs");
        assert_eq!(w.busy_cores(), 8);
        assert!(w.decision().usable_cores >= 8);
        assert_eq!(w.free_cores(), 0, "but no headroom for new work");
    }

    #[test]
    #[should_panic]
    fn removing_absent_job_panics() {
        worker().0.remove(JobId(99));
    }

    #[test]
    fn dropout_degrades_to_last_known_good_minus_bias() {
        let (mut w, mut room) = worker();
        // Healthy tick at 17 °C records last-known-good.
        let d_healthy = w.control_tick(SimTime::ZERO, 5.0, 100, &mut room);
        w.set_sensor(SensorState::Dropout);
        // Room secretly warms to setpoint; the dropout still reads
        // ~16.5 °C (17 − 0.5 bias) → demand no lower than before.
        room = Room::new(RoomParams::typical_apartment_room(), 20.0);
        let d_dropout = w.control_tick(SimTime::from_secs(600), 5.0, 100, &mut room);
        assert!(
            d_dropout >= d_healthy,
            "conservative bias must not under-heat: {d_dropout} vs {d_healthy}"
        );
    }

    #[test]
    fn dropout_without_history_uses_setpoint_fallback() {
        let (mut w, mut room) = worker();
        w.set_sensor(SensorState::Dropout);
        let d = w.control_tick(SimTime::ZERO, 5.0, 100, &mut room);
        // Measured = 20 − 0.5 → a sliver of demand, never a panic.
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.0);
    }

    #[test]
    fn stuck_sensor_feeds_its_constant_through_the_clamp() {
        let (mut w, mut room) = worker();
        w.set_sensor(SensorState::StuckAt(30.0));
        let d = w.control_tick(SimTime::ZERO, 5.0, 100, &mut room);
        assert_eq!(d, 0.0, "a hot-stuck sensor reads no demand");
        w.set_sensor(SensorState::StuckAt(-40.0));
        let d = w.control_tick(SimTime::from_secs(600), 5.0, 100, &mut room);
        assert_eq!(d, 1.0, "a cold-stuck sensor saturates demand");
    }

    #[test]
    fn non_finite_stuck_value_never_panics() {
        let (mut w, mut room) = worker();
        w.set_sensor(SensorState::StuckAt(f64::NAN));
        let d = w.control_tick(SimTime::ZERO, 5.0, 100, &mut room);
        assert!((0.0..=1.0).contains(&d));
        w.set_sensor(SensorState::StuckAt(f64::INFINITY));
        let d = w.control_tick(SimTime::from_secs(600), 5.0, 100, &mut room);
        assert!((0.0..=1.0).contains(&d));
    }
}
