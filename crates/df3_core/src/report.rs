//! Run reporting: one platform run → three export formats.
//!
//! A [`RunReport`] borrows a finished [`PlatformOutcome`] (stats,
//! flight recorder, phase profiler) together with its config and
//! renders:
//!
//! - **JSONL** ([`RunReport::jsonl`]): one self-describing JSON object
//!   per line (`record` field tells the kind — meta, counter, gauge,
//!   watchdog, phase, fault, warning, telemetry) with stable key
//!   order, so identical runs yield byte-identical documents.
//! - **Chrome trace JSON** ([`RunReport::chrome_trace_json`]): the
//!   flight recorder as a Perfetto/`chrome://tracing` timeline —
//!   clusters render as processes, workers as threads, jobs as spans.
//! - **Prometheus text** ([`RunReport::prometheus`]): a
//!   text-exposition snapshot of [`PlatformStats`] counters, gauges,
//!   and histograms.
//!
//! Chrome and Prometheus documents carry sim-time data only; the JSONL
//! report adds wall-clock phase rows unless
//! [`ExportOptions::deterministic`] is used — the byte-identity
//! property tests run on the deterministic set.

use crate::config::{ArchClass, PlatformConfig};
use crate::platform::PlatformOutcome;
use crate::stats::PlatformStats;
use simcore::telemetry::export::{chrome_trace, jnum, jstr, PromText};

/// What goes into the JSONL run report.
#[derive(Debug, Clone, Copy)]
pub struct ExportOptions {
    /// Include wall-clock phase-profiler rows. Wall clock differs
    /// between identical runs, so the byte-identity tests exclude it.
    pub include_wall_clock: bool,
}

impl ExportOptions {
    /// Everything, including wall-clock phase rows.
    pub fn full() -> Self {
        ExportOptions {
            include_wall_clock: true,
        }
    }

    /// Sim-time content only: identical seeds → byte-identical output.
    pub fn deterministic() -> Self {
        ExportOptions {
            include_wall_clock: false,
        }
    }
}

/// The invariant watchdogs and their flight-recorder tag names.
pub const WATCHDOGS: [(&str, &str); 3] = [
    ("temp_band", "watchdog.temp_band"),
    ("queue_depth", "watchdog.queue_depth"),
    ("ledger_drift", "watchdog.ledger_drift"),
];

/// A finished run plus its config, ready to export.
pub struct RunReport<'a> {
    pub label: &'a str,
    pub config: &'a PlatformConfig,
    pub outcome: &'a PlatformOutcome,
}

impl<'a> RunReport<'a> {
    pub fn new(label: &'a str, config: &'a PlatformConfig, outcome: &'a PlatformOutcome) -> Self {
        RunReport {
            label,
            config,
            outcome,
        }
    }

    /// Watchdog trip counts still held in the recorder, in the fixed
    /// [`WATCHDOGS`] order.
    pub fn watchdog_trips(&self) -> Vec<(&'static str, usize)> {
        let rec = &self.outcome.telemetry.recorder;
        WATCHDOGS
            .iter()
            .map(|&(short, tag)| (short, rec.find_tag(tag).map_or(0, |t| rec.count_tag(t))))
            .collect()
    }

    /// Human-readable anomalies of the run: truncated fault timeline,
    /// wrapped flight recorder, tripped watchdogs. Empty on a clean run.
    pub fn warnings(&self) -> Vec<String> {
        let mut w = Vec::new();
        let s = &self.outcome.stats;
        if s.fault_timeline_dropped.get() > 0 {
            w.push(format!(
                "fault timeline truncated: {} events dropped past the cap",
                s.fault_timeline_dropped.get()
            ));
        }
        let rec = &self.outcome.telemetry.recorder;
        if rec.dropped() > 0 {
            w.push(format!(
                "flight recorder wrapped: {} oldest events overwritten (capacity {})",
                rec.dropped(),
                self.config.telemetry.capacity
            ));
        }
        for (name, trips) in self.watchdog_trips() {
            if trips > 0 {
                w.push(format!("watchdog {name} tripped {trips} time(s)"));
            }
        }
        w
    }

    /// The JSONL run report (one JSON object per line, stable key
    /// order). Validated line by line by the exporter tests.
    pub fn jsonl(&self, opts: &ExportOptions) -> String {
        let mut out = String::new();
        let c = self.config;
        let o = self.outcome;
        let arch = match c.arch {
            ArchClass::SharedWorkers { .. } => "shared_workers",
            ArchClass::DedicatedEdge { .. } => "dedicated_edge",
        };
        let link_faults: Vec<String> = c
            .faults
            .link_faults
            .iter()
            .map(|f| jstr(f.link.label()))
            .collect();
        out.push_str(&format!(
            "{{\"record\":\"meta\",\"label\":{},\"n_clusters\":{},\"workers_per_cluster\":{},\
             \"arch\":{},\"peak_policy\":{},\"horizon_s\":{},\"seed\":{},\"events\":{},\
             \"end_s\":{},\"peak_queue\":{},\"telemetry_enabled\":{},\"link_faults\":[{}]}}\n",
            jstr(self.label),
            c.n_clusters,
            c.workers_per_cluster,
            jstr(arch),
            jstr(c.peak_policy.label()),
            jnum(c.horizon.as_secs_f64()),
            c.seed,
            o.events,
            jnum(o.end.as_secs_f64()),
            o.peak_queue,
            o.telemetry.is_enabled(),
            link_faults.join(",")
        ));
        for (name, value) in o.stats.counter_rows() {
            out.push_str(&format!(
                "{{\"record\":\"counter\",\"name\":{},\"value\":{value}}}\n",
                jstr(name)
            ));
        }
        for (name, value) in o.stats.gauge_rows() {
            out.push_str(&format!(
                "{{\"record\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                jstr(name),
                jnum(value)
            ));
        }
        for (name, trips) in self.watchdog_trips() {
            out.push_str(&format!(
                "{{\"record\":\"watchdog\",\"name\":{},\"trips\":{trips}}}\n",
                jstr(name)
            ));
        }
        if opts.include_wall_clock {
            for (phase, acc) in o.telemetry.profiler.rows() {
                out.push_str(&format!(
                    "{{\"record\":\"phase\",\"name\":{},\"count\":{},\"total_ns\":{},\
                     \"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}\n",
                    jstr(phase.name()),
                    acc.count,
                    acc.total_ns,
                    acc.min_ns,
                    acc.max_ns,
                    jnum(acc.mean_ns())
                ));
            }
        }
        for f in &o.stats.fault_timeline {
            let worker = match f.worker {
                Some(w) => w.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"record\":\"fault\",\"t_s\":{},\"kind\":{},\"cluster\":{},\"worker\":{worker}}}\n",
                jnum(f.t.as_secs_f64()),
                jstr(f.kind.label()),
                f.cluster
            ));
        }
        for w in self.warnings() {
            out.push_str(&format!(
                "{{\"record\":\"warning\",\"text\":{}}}\n",
                jstr(&w)
            ));
        }
        let rec = &o.telemetry.recorder;
        out.push_str(&format!(
            "{{\"record\":\"telemetry\",\"events\":{},\"dropped\":{}}}\n",
            rec.len(),
            rec.dropped()
        ));
        out
    }

    /// The flight recorder as Chrome trace-event JSON (sim time only).
    pub fn chrome_trace_json(&self) -> String {
        let n = self.config.n_clusters as u32;
        chrome_trace(&self.outcome.telemetry.recorder, |g| {
            if g == 0 {
                "platform".to_string()
            } else if g <= n {
                format!("cluster {}", g - 1)
            } else {
                "datacenter".to_string()
            }
        })
    }

    /// A Prometheus text-exposition snapshot of the run's
    /// [`PlatformStats`] (sim time only).
    pub fn prometheus(&self) -> String {
        let s: &PlatformStats = &self.outcome.stats;
        let mut p = PromText::new();
        for (name, value) in s.counter_rows() {
            p.counter(
                &format!("df3_{name}_total"),
                &format!("platform counter {name}"),
                value,
            );
        }
        for (name, value) in s.gauge_rows() {
            p.gauge(
                &format!("df3_{name}"),
                &format!("platform gauge {name}"),
                value,
            );
        }
        for (name, trips) in self.watchdog_trips() {
            p.counter(
                &format!("df3_watchdog_{name}_trips_total"),
                "invariant watchdog trips",
                trips as u64,
            );
        }
        p.counter(
            "df3_telemetry_dropped_total",
            "flight-recorder events overwritten past capacity",
            self.outcome.telemetry.recorder.dropped(),
        );
        let h = &s.edge_response_ms;
        p.histogram(
            "df3_edge_response_ms",
            "edge response time, milliseconds",
            &h.cumulative_buckets(20),
            h.mean() * h.count() as f64,
            h.count(),
        );
        let r = &s.repair_s;
        p.histogram(
            "df3_repair_s",
            "worker repair duration, seconds",
            &r.cumulative_buckets(16),
            r.mean() * r.count() as f64,
            r.count(),
        );
        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use simcore::telemetry::export::json;
    use simcore::time::SimDuration;
    use simcore::RngStreams;
    use workloads::edge::{location_service_jobs, LocationServiceConfig};
    use workloads::job::JobStream;
    use workloads::Flow;

    fn run_with_telemetry(enabled: bool) -> (PlatformConfig, PlatformOutcome, JobStream) {
        let mut cfg = PlatformConfig::small_winter();
        cfg.n_clusters = 2;
        cfg.workers_per_cluster = 4;
        cfg.horizon = SimDuration::from_hours(3);
        cfg.telemetry.enabled = enabled;
        let jobs = location_service_jobs(
            LocationServiceConfig::map_serving(Flow::EdgeIndirect),
            cfg.horizon,
            &RngStreams::new(42),
            0,
        );
        let out = Platform::new(cfg.clone()).run(&jobs);
        (cfg, out, jobs)
    }

    #[test]
    fn jsonl_lines_all_validate_and_cover_every_record_kind() {
        let (cfg, out, _) = run_with_telemetry(true);
        let report = RunReport::new("test", &cfg, &out);
        let doc = report.jsonl(&ExportOptions::full());
        let n = json::validate_lines(&doc).expect("every line is JSON");
        assert!(n > 30, "expected meta+counters+gauges+..., got {n} lines");
        for kind in ["meta", "counter", "gauge", "watchdog", "phase", "telemetry"] {
            assert!(
                doc.contains(&format!("{{\"record\":\"{kind}\"")),
                "missing record kind {kind}"
            );
        }
        assert!(doc.contains("\"name\":\"edge_completed\""));
        assert!(doc.contains("\"peak_policy\":\"hybrid\""));
    }

    #[test]
    fn chrome_trace_validates_with_cluster_processes() {
        let (cfg, out, _) = run_with_telemetry(true);
        let report = RunReport::new("test", &cfg, &out);
        let trace = report.chrome_trace_json();
        json::validate(&trace).expect("chrome trace is JSON");
        assert!(trace.contains("\"platform\""));
        assert!(trace.contains("\"cluster 0\""));
        assert_eq!(
            trace.matches("\"ph\":\"B\"").count(),
            trace.matches("\"ph\":\"E\"").count(),
            "unbalanced span events"
        );
        assert!(trace.matches("\"ph\":\"B\"").count() > 0, "no job spans");
    }

    #[test]
    fn prometheus_snapshot_parses() {
        let (cfg, out, _) = run_with_telemetry(true);
        let report = RunReport::new("test", &cfg, &out);
        let text = report.prometheus();
        assert!(text.contains("# TYPE df3_edge_completed_total counter"));
        assert!(text.contains("df3_edge_response_ms_bucket{le=\"+Inf\"}"));
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (_, val) = line.rsplit_once(' ').expect("name value");
            assert!(
                val.parse::<f64>().is_ok() || val == "null",
                "unparseable sample: {line}"
            );
        }
    }

    #[test]
    fn disabled_telemetry_still_reports_stats() {
        let (cfg, out, _) = run_with_telemetry(false);
        assert!(!out.telemetry.is_enabled());
        assert!(out.telemetry.recorder.is_empty());
        let report = RunReport::new("off", &cfg, &out);
        let doc = report.jsonl(&ExportOptions::deterministic());
        json::validate_lines(&doc).unwrap();
        assert!(doc.contains("\"telemetry_enabled\":false"));
        assert!(!doc.contains("\"record\":\"phase\""));
        assert!(report.warnings().is_empty(), "{:?}", report.warnings());
        // The trace degenerates to metadata-only but stays valid JSON.
        json::validate(&report.chrome_trace_json()).unwrap();
    }

    #[test]
    fn deterministic_exports_are_byte_identical_across_runs() {
        let (cfg_a, out_a, _) = run_with_telemetry(true);
        let (cfg_b, out_b, _) = run_with_telemetry(true);
        let a = RunReport::new("x", &cfg_a, &out_a);
        let b = RunReport::new("x", &cfg_b, &out_b);
        let opts = ExportOptions::deterministic();
        assert_eq!(a.jsonl(&opts), b.jsonl(&opts));
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        assert_eq!(a.prometheus(), b.prometheus());
    }
}
