//! The DVFS heat regulator (§III-B).
//!
//! "To make sure that the expectations will be complied, we propose to
//! add a heat regulator system in each DF server. The heat regulator
//! implements a DVFS based technique (voltage and frequency regulation)
//! to guarantee that the energy consumed corresponds to the heat
//! demand."
//!
//! Given the thermostat's demand `d ∈ [0, 1]`, the regulator computes a
//! power budget `d × max_power` and picks the configuration that
//! maximises *compute throughput within the heat budget*:
//!
//! 1. choose the number of active cores and their P-state so total
//!    draw ≤ budget (never *above* — overshoot is discomfort);
//! 2. if the budget exceeds what the compute backlog can absorb, the
//!    shortfall goes to the resistive backup element, so the resident's
//!    comfort never depends on cloud demand (the §II-C supply/demand
//!    decoupling);
//! 3. at zero demand the board powers off — the Qarnot hybrid
//!    behaviour of §III-A ("embedded motherboards … are turned off when
//!    no heat is requested").

use dfhw::dvfs::DvfsLadder;
use serde::{Deserialize, Serialize};

/// Regulator configuration for one server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeatRegulator {
    /// Total cores on the server.
    pub n_cores: usize,
    /// Board/PSU overhead when powered, W.
    pub overhead_w: f64,
    /// Whether a resistive backup element exists (Q.rads have one).
    pub has_resistive_backup: bool,
    /// Demand below which the board powers off entirely.
    pub power_off_threshold: f64,
    /// Nameplate maximum power, W (heat at demand = 1).
    pub max_power_w: f64,
}

/// The regulator's decision for one control period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegulatorDecision {
    /// Whether the board is powered at all.
    pub powered: bool,
    /// Cores allowed to run compute.
    pub usable_cores: usize,
    /// P-state level for those cores.
    pub level: usize,
    /// Power the compute side may draw (incl. overhead), W.
    pub compute_budget_w: f64,
    /// Advisory resistive power if the compute side runs at its budget, W.
    /// The worker recomputes the resistive share continuously against the
    /// *actual* compute draw (see `worker::WorkerSim::power_w`).
    pub resistive_w: f64,
    /// The full heat budget `demand × max_power`, W.
    pub heat_budget_w: f64,
}

impl RegulatorDecision {
    /// Total heat that will be produced if the compute side runs at its
    /// budget, W.
    pub fn total_heat_w(&self) -> f64 {
        self.compute_budget_w + self.resistive_w
    }
}

impl HeatRegulator {
    pub fn for_qrad() -> Self {
        let spec = dfhw::servers::ServerSpec::qrad();
        HeatRegulator {
            n_cores: spec.n_cores(),
            overhead_w: spec.overhead_w,
            has_resistive_backup: true,
            power_off_threshold: 0.02,
            max_power_w: spec.nameplate_w,
        }
    }

    /// Decide the configuration for heat demand `demand ∈ [0, 1]` given
    /// the DVFS `ladder` and the compute backlog (cores' worth of work
    /// waiting or running, used to split compute vs resistive heat).
    pub fn decide(
        &self,
        ladder: &DvfsLadder,
        demand: f64,
        backlog_cores: usize,
    ) -> RegulatorDecision {
        assert!(
            (0.0..=1.0).contains(&demand),
            "demand out of range: {demand}"
        );
        if demand < self.power_off_threshold {
            return RegulatorDecision {
                powered: false,
                usable_cores: 0,
                level: 0,
                compute_budget_w: 0.0,
                resistive_w: 0.0,
                heat_budget_w: 0.0,
            };
        }
        let budget_w = demand * self.max_power_w;
        // Power available to cores after board overhead.
        let core_budget = (budget_w - self.overhead_w).max(0.0);
        // Find the (cores, level) pair maximising throughput within the
        // budget. Throughput = cores × freq(level); power =
        // cores × power(level). Scan levels from top down; for each, the
        // max core count that fits; keep the best throughput.
        let mut best = (0usize, 0usize, 0.0f64); // (cores, level, throughput)
        for level in (0..ladder.n_states()).rev() {
            let per_core = ladder.power_w(level, 1.0);
            if per_core <= 0.0 {
                continue;
            }
            let fit = ((core_budget / per_core).floor() as usize).min(self.n_cores);
            let usable = fit.min(backlog_cores);
            let thr = usable as f64 * ladder.throughput(level);
            if thr > best.2 + 1e-12 {
                best = (usable, level, thr);
            }
        }
        let (usable_cores, level, _) = best;
        let compute_w = if usable_cores > 0 {
            self.overhead_w + usable_cores as f64 * ladder.power_w(level, 1.0)
        } else {
            // Powered but idle: overhead only (if the budget covers it).
            self.overhead_w.min(budget_w)
        };
        let resistive_w = if self.has_resistive_backup {
            (budget_w - compute_w).max(0.0)
        } else {
            0.0
        };
        RegulatorDecision {
            powered: true,
            usable_cores,
            level,
            compute_budget_w: compute_w,
            resistive_w,
            heat_budget_w: budget_w,
        }
    }
}

impl simcore::snapshot::Snapshot for RegulatorDecision {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_bool(self.powered);
        w.put_usize(self.usable_cores);
        w.put_usize(self.level);
        w.put_f64(self.compute_budget_w);
        w.put_f64(self.resistive_w);
        w.put_f64(self.heat_budget_w);
    }
    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(RegulatorDecision {
            powered: r.take_bool()?,
            usable_cores: r.take_usize()?,
            level: r.take_usize()?,
            compute_budget_w: r.take_f64()?,
            resistive_w: r.take_f64()?,
            heat_budget_w: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> DvfsLadder {
        DvfsLadder::desktop_i7()
    }

    fn qrad() -> HeatRegulator {
        HeatRegulator::for_qrad()
    }

    #[test]
    fn zero_demand_powers_off() {
        let d = qrad().decide(&ladder(), 0.0, 100);
        assert!(!d.powered);
        assert_eq!(d.total_heat_w(), 0.0);
        assert_eq!(d.usable_cores, 0);
    }

    #[test]
    fn full_demand_full_backlog_runs_everything_hot() {
        let d = qrad().decide(&ladder(), 1.0, 100);
        assert!(d.powered);
        assert_eq!(d.usable_cores, 16);
        // Heat tracks the 500 W budget within one core's step.
        assert!(
            (d.total_heat_w() - 500.0).abs() < 30.0,
            "heat {} ≈ 500 W",
            d.total_heat_w()
        );
        assert_eq!(d.resistive_w.max(0.0), d.resistive_w);
    }

    #[test]
    fn heat_tracks_demand_across_the_range() {
        // The §III-B guarantee: produced heat ≈ demand × nameplate, for
        // any demand, when backlog is plentiful.
        let r = qrad();
        let l = ladder();
        for pct in [10, 25, 40, 55, 70, 85, 100] {
            let demand = pct as f64 / 100.0;
            let d = r.decide(&l, demand, 100);
            let target = demand * 500.0;
            assert!(
                (d.total_heat_w() - target).abs() <= 35.0,
                "demand {demand}: heat {} vs target {target}",
                d.total_heat_w()
            );
            // Never overshoot beyond tolerance: overshoot is discomfort.
            assert!(d.total_heat_w() <= target + 1e-9);
        }
    }

    #[test]
    fn no_backlog_heats_resistively() {
        // The §II-C decoupling: comfort must not depend on cloud demand.
        let d = qrad().decide(&ladder(), 0.8, 0);
        assert!(d.powered);
        assert_eq!(d.usable_cores, 0);
        assert!(
            d.resistive_w > 300.0,
            "resistive {} fills the gap",
            d.resistive_w
        );
        assert!((d.total_heat_w() - 0.8 * 500.0).abs() < 1.0);
    }

    #[test]
    fn small_backlog_mixes_compute_and_resistive() {
        let d = qrad().decide(&ladder(), 1.0, 2);
        assert_eq!(d.usable_cores, 2);
        assert!(d.resistive_w > 0.0);
        assert!((d.total_heat_w() - 500.0).abs() < 1.0);
    }

    #[test]
    fn low_demand_prefers_fewer_faster_or_more_slower_cores_by_throughput() {
        // At 30 % demand (150 W budget, 90 W for cores) the regulator
        // must pick the throughput-maximal configuration.
        let r = qrad();
        let l = ladder();
        let d = r.decide(&l, 0.3, 100);
        assert!(d.usable_cores > 0);
        // Exhaustively verify optimality.
        let core_budget = 0.3 * 500.0 - r.overhead_w;
        let mut best_thr = 0.0f64;
        for level in 0..l.n_states() {
            let fit = ((core_budget / l.power_w(level, 1.0)).floor() as usize).min(16);
            best_thr = best_thr.max(fit as f64 * l.throughput(level));
        }
        let got_thr = d.usable_cores as f64 * l.throughput(d.level);
        assert!(
            (got_thr - best_thr).abs() < 1e-9,
            "throughput {got_thr} vs optimal {best_thr}"
        );
    }

    #[test]
    fn no_resistive_backup_leaves_shortfall() {
        let mut r = qrad();
        r.has_resistive_backup = false;
        let d = r.decide(&ladder(), 0.8, 0);
        assert_eq!(d.resistive_w, 0.0);
        assert!(d.total_heat_w() < 0.8 * 500.0);
    }

    #[test]
    fn diminishing_returns_low_budget_prefers_low_states() {
        // With a tiny budget, one slow core out-computes zero fast cores.
        let r = qrad();
        let l = ladder();
        let d = r.decide(&l, 0.15, 100); // 75 W − 60 W overhead = 15 W for cores
        assert!(d.usable_cores >= 1);
        assert!(d.level < l.n_states() - 1, "must downshift, got top state");
    }

    #[test]
    #[should_panic]
    fn demand_out_of_range_panics() {
        qrad().decide(&ladder(), 1.2, 1);
    }
}
