//! The smart-grid manager (§III-A).
//!
//! "An obvious task of the smart-grid manager is to ensure that the
//! heat processing of computing requests produces the heat requested by
//! customers. The manager must also negotiate with external systems
//! (e.g. energy operators, edge computing services, smart-cities
//! services) to calibrate its energy consumption and service delivery
//! to the demand."
//!
//! [`CapacityOffer`] is that negotiation artifact: from a heat-demand
//! forecast it derives the core-hours the fleet can honestly commit for
//! a coming period, month by month — the input to the seasonal SLAs and
//! pricing of the `economics` crate (experiments E6/E10).

use predict::ThermoFit;
use serde::{Deserialize, Serialize};

/// Fleet parameters the manager converts heat into compute with.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FleetProfile {
    /// Number of DF servers.
    pub n_servers: usize,
    /// Cores per server.
    pub cores_per_server: usize,
    /// Wall power per server at full tilt, W.
    pub max_power_w: f64,
    /// Fraction of a server's power that is compute-attributable when
    /// fully loaded (rest is overhead/resistive).
    pub compute_fraction: f64,
}

impl FleetProfile {
    pub fn qrad_fleet(n_servers: usize) -> Self {
        FleetProfile {
            n_servers,
            cores_per_server: 16,
            max_power_w: 500.0,
            compute_fraction: 0.88,
        }
    }

    /// Total fleet nameplate, W.
    pub fn fleet_power_w(&self) -> f64 {
        self.n_servers as f64 * self.max_power_w
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.n_servers * self.cores_per_server
    }
}

/// A monthly capacity offer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityOffer {
    /// Calendar month (0 = January).
    pub month: usize,
    /// Mean heat demand forecast for the month, W.
    pub forecast_heat_w: f64,
    /// Fraction of the fleet the heat demand can keep busy, in [0, 1].
    pub duty: f64,
    /// Core-hours offered for the month.
    pub core_hours: f64,
}

/// Derive monthly offers from a thermosensitivity fit and each month's
/// expected outdoor temperature. The offer is capped by the fleet: heat
/// demand beyond the fleet's nameplate cannot create more compute.
pub fn monthly_offers(
    fit: &ThermoFit,
    monthly_mean_outdoor_c: &[f64; 12],
    fleet: FleetProfile,
) -> Vec<CapacityOffer> {
    const DAYS: [f64; 12] = [
        31.0, 28.0, 31.0, 30.0, 31.0, 30.0, 31.0, 31.0, 30.0, 31.0, 30.0, 31.0,
    ];
    monthly_mean_outdoor_c
        .iter()
        .enumerate()
        .map(|(m, &t_out)| {
            let heat_w = fit.predict_w(t_out);
            let duty = (heat_w / fleet.fleet_power_w()).clamp(0.0, 1.0);
            let hours = DAYS[m] * 24.0;
            CapacityOffer {
                month: m,
                forecast_heat_w: heat_w,
                duty,
                core_hours: duty * fleet.total_cores() as f64 * hours,
            }
        })
        .collect()
}

/// Winter-over-summer capacity ratio of a set of offers — the headline
/// seasonality number of experiment E6.
pub fn seasonality_ratio(offers: &[CapacityOffer]) -> f64 {
    assert_eq!(offers.len(), 12, "need a full year of offers");
    let winter: f64 = [0usize, 1, 11]
        .iter()
        .map(|&m| offers[m].core_hours)
        .sum::<f64>()
        / 3.0;
    let summer: f64 = [5usize, 6, 7]
        .iter()
        .map(|&m| offers[m].core_hours)
        .sum::<f64>()
        / 3.0;
    if summer <= 0.0 {
        return f64::INFINITY;
    }
    winter / summer
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit() -> ThermoFit {
        ThermoFit {
            base_c: 16.0,
            slope_w_per_k: 27_500.0, // 500 homes × 55 W/K
            intercept_w: 0.0,
            rmse_w: 0.0,
            r2: 1.0,
        }
    }

    /// Paris-like monthly means, January-first.
    const PARIS: [f64; 12] = [
        4.5, 5.5, 8.5, 11.5, 15.0, 18.0, 19.5, 19.5, 16.5, 12.5, 8.0, 5.5,
    ];

    #[test]
    fn winter_offers_dwarf_summer_offers() {
        let fleet = FleetProfile::qrad_fleet(500);
        let offers = monthly_offers(&fit(), &PARIS, fleet);
        assert_eq!(offers.len(), 12);
        let ratio = seasonality_ratio(&offers);
        assert!(
            ratio > 5.0,
            "winter/summer capacity ratio {ratio} should be large"
        );
        // July: 19.5 °C > 16 °C threshold → zero heat-driven capacity.
        assert_eq!(offers[6].core_hours, 0.0);
        // January: 11.5 K deficit × 27.5 kW/K ≈ 316 kW > fleet 250 kW → duty 1.
        assert_eq!(offers[0].duty, 1.0);
    }

    #[test]
    fn duty_is_capped_by_fleet_power() {
        let small_fleet = FleetProfile::qrad_fleet(10);
        let offers = monthly_offers(&fit(), &PARIS, small_fleet);
        assert!(offers.iter().all(|o| o.duty <= 1.0));
        assert!(offers[0].duty == 1.0);
    }

    #[test]
    fn core_hours_scale_with_fleet() {
        let offers_a = monthly_offers(&fit(), &PARIS, FleetProfile::qrad_fleet(100));
        let offers_b = monthly_offers(&fit(), &PARIS, FleetProfile::qrad_fleet(200));
        // In months where neither is duty-capped, B offers twice… or the
        // same when both saturate; in shoulder months (April) check scaling.
        let april_a = offers_a[3].core_hours;
        let april_b = offers_b[3].core_hours;
        // 100-server fleet: 50 kW; April deficit 4.5 K × 27.5 kW ≈ 124 kW →
        // both saturate. Use October instead (3.5 K × 27.5 ≈ 96 kW > 100 kW fleet? no).
        // Safest: assert B ≥ A everywhere.
        assert!(april_b >= april_a);
        assert!(offers_b
            .iter()
            .zip(&offers_a)
            .all(|(b, a)| b.core_hours >= a.core_hours));
    }

    #[test]
    fn infinite_ratio_when_summer_is_zero() {
        let offers = monthly_offers(&fit(), &PARIS, FleetProfile::qrad_fleet(500));
        assert!(seasonality_ratio(&offers).is_infinite());
    }
}
