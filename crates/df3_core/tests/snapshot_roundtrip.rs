//! Property tests for the checkpoint/restore golden guarantee.
//!
//! For random (platform shape, fault plan, snapshot time) triples:
//! running to the horizon must be **bit-identical** — on the full
//! snapshot-encoded stats block and on all three deterministic exports
//! — to pausing at the snapshot point, serialising, restoring into a
//! freshly built platform, and continuing. Separately, no truncation or
//! single-bit corruption of a snapshot may ever panic the decoder: it
//! must surface a typed [`SnapshotError`].

use df3_core::report::{ExportOptions, RunReport};
use df3_core::{
    FaultPlan, Platform, PlatformConfig, PlatformOutcome, RecoveryPolicy, RunTo, Window,
};
use proptest::prelude::*;
use simcore::snapshot::{Snapshot, SnapshotWriter};
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;
use std::sync::OnceLock;
use workloads::edge::{location_service_jobs, LocationServiceConfig};
use workloads::job::JobStream;
use workloads::Flow;

const HORIZON_H: i64 = 5;

fn config(seed: u64, n_clusters: usize, plan: FaultPlan) -> PlatformConfig {
    let mut cfg = PlatformConfig::small_winter();
    cfg.seed = seed;
    cfg.n_clusters = n_clusters;
    cfg.workers_per_cluster = 4;
    cfg.horizon = SimDuration::from_hours(HORIZON_H);
    cfg.telemetry.enabled = true;
    cfg.faults = plan;
    cfg
}

fn jobs(cfg: &PlatformConfig) -> JobStream {
    location_service_jobs(
        LocationServiceConfig::map_serving(Flow::EdgeIndirect),
        cfg.horizon,
        &RngStreams::new(cfg.seed),
        0,
    )
}

/// The run's entire observable surface, byte for byte: the
/// snapshot-encoded stats block plus all three deterministic exports.
fn observable(cfg: &PlatformConfig, out: &PlatformOutcome) -> (Vec<u8>, String, String, String) {
    let mut w = SnapshotWriter::new();
    out.stats.encode(&mut w);
    let report = RunReport::new("prop", cfg, out);
    (
        w.into_bytes(),
        report.jsonl(&ExportOptions::deterministic()),
        report.chrome_trace_json(),
        report.prometheus(),
    )
}

fn snapshot_at(cfg: &PlatformConfig, js: &JobStream, at: SimDuration) -> Vec<u8> {
    match Platform::new(cfg.clone()).run_to(js, SimTime::ZERO + at) {
        RunTo::Paused(p) => p.snapshot_bytes(),
        RunTo::Finished(_) => panic!("snapshot point must precede the horizon"),
    }
}

proptest! {
    /// The golden guarantee under a random non-empty fault plan.
    #[test]
    fn restored_continuation_is_bit_identical(
        seed in 0u64..1_000_000,
        n_clusters in 1usize..4,
        snap_frac in 0.2f64..0.8,
        mtbf_h in 2i64..9,
        outage_start_h in 1i64..3,
        outage_len_h in 1i64..3,
    ) {
        let plan = FaultPlan::none()
            .with_churn(SimDuration::from_hours(mtbf_h), SimDuration::from_secs(1_800))
            .with_cluster_outage(
                0,
                Window::new(
                    SimDuration::from_hours(outage_start_h),
                    SimDuration::from_hours(outage_start_h + outage_len_h),
                ),
            )
            .with_recovery(RecoveryPolicy::standard());
        prop_assert!(!plan.is_empty(), "the guarantee must hold under active faults");
        let cfg = config(seed, n_clusters, plan);
        let js = jobs(&cfg);
        let at = SimDuration::from_secs_f64(snap_frac * cfg.horizon.as_secs_f64());

        let cold = Platform::new(cfg.clone()).run(&js);
        let bytes = snapshot_at(&cfg, &js, at);
        // The restored side never sees the job stream: arrivals live in
        // the snapshotted event queue.
        let warm = Platform::restore(cfg.clone(), &bytes)
            .expect("own snapshot must restore")
            .resume();

        prop_assert_eq!(cold.events, warm.events);
        let (cs, cj, ct, cp) = observable(&cfg, &cold);
        let (ws, wj, wt, wp) = observable(&cfg, &warm);
        prop_assert!(cs == ws, "stats block diverged");
        prop_assert!(cj == wj, "JSONL report diverged");
        prop_assert!(ct == wt, "Chrome trace diverged");
        prop_assert!(cp == wp, "Prometheus snapshot diverged");
    }
}

/// One snapshot, built once and shared by the corruption properties.
fn shared_snapshot() -> &'static (PlatformConfig, Vec<u8>) {
    static SNAP: OnceLock<(PlatformConfig, Vec<u8>)> = OnceLock::new();
    SNAP.get_or_init(|| {
        let plan = FaultPlan::none()
            .with_churn(SimDuration::from_hours(4), SimDuration::from_secs(1_800))
            .with_recovery(RecoveryPolicy::standard());
        let cfg = config(0xDF3, 2, plan);
        let js = jobs(&cfg);
        let bytes = snapshot_at(&cfg, &js, SimDuration::from_hours(2));
        (cfg, bytes)
    })
}

proptest! {
    /// Any prefix of a snapshot is a decode error, never a panic.
    #[test]
    fn truncated_snapshots_error_never_panic(cut_frac in 0.0f64..1.0) {
        let (cfg, bytes) = shared_snapshot();
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        prop_assert!(
            Platform::restore(cfg.clone(), &bytes[..cut]).is_err(),
            "truncation at {} of {} bytes must error", cut, bytes.len()
        );
    }

    /// Any single bit flip is caught by the per-section checksums (or
    /// the structural validation behind them) — error, never panic.
    #[test]
    fn corrupted_snapshots_error_never_panic(
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let (cfg, bytes) = shared_snapshot();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[pos] ^= 1u8 << bit;
        prop_assert!(
            Platform::restore(cfg.clone(), &bad).is_err(),
            "bit {} flipped at byte {} must error", bit, pos
        );
    }
}
