//! A CPU core with a P-state and a utilisation.

use crate::dvfs::DvfsLadder;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One core of a DF server. Cores share their ladder via `Arc` — a Q.rad
/// has 16 of them, an Asperitas boiler 1600, and cloning the ladder per
/// core would be pure waste.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuCore {
    #[serde(skip, default = "default_ladder")]
    ladder: Arc<DvfsLadder>,
    level: usize,
    util: f64,
    /// Whether the core's motherboard is powered at all. The Qarnot
    /// hybrid design (§III-A) turns boards off when no heat is wanted.
    powered: bool,
}

// Referenced by `#[serde(default)]`; unused while the vendored serde
// derives are no-ops.
#[allow(dead_code)]
fn default_ladder() -> Arc<DvfsLadder> {
    Arc::new(DvfsLadder::desktop_i7())
}

impl CpuCore {
    pub fn new(ladder: Arc<DvfsLadder>) -> Self {
        let level = ladder.n_states() - 1;
        CpuCore {
            ladder,
            level,
            util: 0.0,
            powered: true,
        }
    }

    pub fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }

    pub fn level(&self) -> usize {
        self.level
    }

    /// Set the P-state level. Panics on an out-of-range level.
    pub fn set_level(&mut self, level: usize) {
        assert!(
            level < self.ladder.n_states(),
            "P-state {level} out of range"
        );
        self.level = level;
    }

    pub fn util(&self) -> f64 {
        self.util
    }

    /// Set utilisation in `[0, 1]`.
    pub fn set_util(&mut self, util: f64) {
        assert!((0.0..=1.0).contains(&util));
        self.util = util;
    }

    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Power the board off (or on). A powered-off core draws nothing,
    /// computes nothing, and heats nothing.
    pub fn set_powered(&mut self, on: bool) {
        self.powered = on;
        if !on {
            self.util = 0.0;
        }
    }

    /// Electrical power drawn right now, W.
    pub fn power_w(&self) -> f64 {
        if !self.powered {
            return 0.0;
        }
        self.ladder.power_w(self.level, self.util)
    }

    /// Compute throughput right now, Gops/s (scaled by utilisation).
    pub fn throughput_gops(&self) -> f64 {
        if !self.powered {
            return 0.0;
        }
        self.ladder.throughput(self.level) * self.util
    }

    /// Maximum throughput at the current P-state.
    pub fn max_throughput_gops(&self) -> f64 {
        if !self.powered {
            return 0.0;
        }
        self.ladder.throughput(self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CpuCore {
        CpuCore::new(Arc::new(DvfsLadder::desktop_i7()))
    }

    #[test]
    fn starts_at_top_state_idle() {
        let c = core();
        assert_eq!(c.level(), c.ladder().n_states() - 1);
        assert_eq!(c.util(), 0.0);
        assert_eq!(c.power_w(), c.ladder().static_w);
    }

    #[test]
    fn busy_core_draws_dynamic_power() {
        let mut c = core();
        c.set_util(1.0);
        let full = c.power_w();
        c.set_util(0.5);
        let half = c.power_w();
        assert!(full > half && half > c.ladder().static_w);
    }

    #[test]
    fn powered_off_core_is_dark() {
        let mut c = core();
        c.set_util(1.0);
        c.set_powered(false);
        assert_eq!(c.power_w(), 0.0);
        assert_eq!(c.throughput_gops(), 0.0);
        assert_eq!(c.util(), 0.0, "powering off clears utilisation");
        c.set_powered(true);
        assert_eq!(c.power_w(), c.ladder().static_w);
    }

    #[test]
    fn throughput_follows_level_and_util() {
        let mut c = core();
        c.set_level(0);
        c.set_util(1.0);
        assert_eq!(c.throughput_gops(), 0.8);
        c.set_util(0.25);
        assert!((c.throughput_gops() - 0.2).abs() < 1e-12);
        assert_eq!(c.max_throughput_gops(), 0.8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_level_panics() {
        core().set_level(99);
    }
}
