//! The Q.rad sensor board.
//!
//! §II-B: "Q.rads also include several sensors, interfaces and actuators
//! for humidity, temperature, noises, wireless charge, light etc." These
//! sensors are what make a digital heater an *edge device* and not just
//! a heater: the in-situ ML workload of Durand et al. [11] (alarm-sound
//! detection, experiment E11) reads them. Readings carry calibrated
//! Gaussian measurement noise and quantisation.

use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::dist::normal;

/// Kinds of sensor on the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Air temperature, °C.
    Temperature,
    /// Relative humidity, %.
    Humidity,
    /// Sound pressure level, dB(A).
    Noise,
    /// Illuminance, lux.
    Light,
    /// Passive-infrared presence (0 or 1).
    Presence,
    /// CO₂ concentration, ppm.
    Co2,
}

impl SensorKind {
    /// Measurement noise standard deviation in the sensor's unit.
    pub fn noise_std(&self) -> f64 {
        match self {
            SensorKind::Temperature => 0.2,
            SensorKind::Humidity => 1.5,
            SensorKind::Noise => 0.8,
            SensorKind::Light => 8.0,
            SensorKind::Presence => 0.0,
            SensorKind::Co2 => 25.0,
        }
    }

    /// Quantisation step of the ADC/driver in the sensor's unit.
    pub fn quantum(&self) -> f64 {
        match self {
            SensorKind::Temperature => 0.1,
            SensorKind::Humidity => 0.5,
            SensorKind::Noise => 0.5,
            SensorKind::Light => 1.0,
            SensorKind::Presence => 1.0,
            SensorKind::Co2 => 1.0,
        }
    }

    /// Physical range the sensor clamps to.
    pub fn range(&self) -> (f64, f64) {
        match self {
            SensorKind::Temperature => (-20.0, 60.0),
            SensorKind::Humidity => (0.0, 100.0),
            SensorKind::Noise => (20.0, 120.0),
            SensorKind::Light => (0.0, 20_000.0),
            SensorKind::Presence => (0.0, 1.0),
            SensorKind::Co2 => (300.0, 5_000.0),
        }
    }
}

/// A single sensor instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sensor {
    pub kind: SensorKind,
}

impl Sensor {
    pub fn new(kind: SensorKind) -> Self {
        Sensor { kind }
    }

    /// Produce a reading of the true value: noise, quantisation, clamping.
    pub fn read<R: Rng + ?Sized>(&self, rng: &mut R, true_value: f64) -> f64 {
        let (lo, hi) = self.kind.range();
        let noisy = normal(rng, true_value, self.kind.noise_std());
        let q = self.kind.quantum();
        let quantised = (noisy / q).round() * q;
        quantised.clamp(lo, hi)
    }
}

/// The standard Q.rad board: one of each sensor kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorBoard {
    sensors: Vec<Sensor>,
}

impl SensorBoard {
    pub fn qrad_board() -> Self {
        SensorBoard {
            sensors: vec![
                Sensor::new(SensorKind::Temperature),
                Sensor::new(SensorKind::Humidity),
                Sensor::new(SensorKind::Noise),
                Sensor::new(SensorKind::Light),
                Sensor::new(SensorKind::Presence),
                Sensor::new(SensorKind::Co2),
            ],
        }
    }

    pub fn sensor(&self, kind: SensorKind) -> Option<&Sensor> {
        self.sensors.iter().find(|s| s.kind == kind)
    }

    pub fn kinds(&self) -> impl Iterator<Item = SensorKind> + '_ {
        self.sensors.iter().map(|s| s.kind)
    }

    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::RngStreams;

    fn rng() -> rand_chacha::ChaCha8Rng {
        RngStreams::new(11).stream("sensors")
    }

    #[test]
    fn temperature_reading_is_near_truth() {
        let s = Sensor::new(SensorKind::Temperature);
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..1000 {
            sum += s.read(&mut r, 20.3);
        }
        let mean = sum / 1000.0;
        assert!((mean - 20.3).abs() < 0.05, "mean reading {mean}");
    }

    #[test]
    fn readings_are_quantised() {
        let s = Sensor::new(SensorKind::Temperature);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.read(&mut r, 21.234);
            let steps = v / 0.1;
            assert!((steps - steps.round()).abs() < 1e-9, "{v} not on 0.1 grid");
        }
    }

    #[test]
    fn readings_clamp_to_range() {
        let s = Sensor::new(SensorKind::Humidity);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.read(&mut r, 150.0);
            assert!(v <= 100.0);
        }
    }

    #[test]
    fn presence_is_binary_and_noiseless() {
        let s = Sensor::new(SensorKind::Presence);
        let mut r = rng();
        assert_eq!(s.read(&mut r, 1.0), 1.0);
        assert_eq!(s.read(&mut r, 0.0), 0.0);
    }

    #[test]
    fn qrad_board_has_paper_sensors() {
        let b = SensorBoard::qrad_board();
        assert!(b.sensor(SensorKind::Temperature).is_some());
        assert!(b.sensor(SensorKind::Humidity).is_some());
        assert!(b.sensor(SensorKind::Noise).is_some());
        assert!(b.sensor(SensorKind::Light).is_some());
        assert_eq!(b.len(), 6);
    }
}
