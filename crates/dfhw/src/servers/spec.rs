//! Static descriptions of server classes.

use crate::dvfs::DvfsLadder;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which server family a spec belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerClass {
    /// Qarnot Q.rad digital heater.
    QRad,
    /// Nerdalize e-radiator digital heater.
    ERadiator,
    /// Qarnot crypto-heater (GPU miner/heater).
    CryptoHeater,
    /// Asperitas AIC24 immersion digital boiler.
    AsperitasBoiler,
    /// Stimergy oil-immersed digital boiler.
    StimergyBoiler,
    /// Classical air-cooled datacenter node (baseline comparator).
    DatacenterNode,
}

impl ServerClass {
    pub fn name(&self) -> &'static str {
        match self {
            ServerClass::QRad => "Q.rad",
            ServerClass::ERadiator => "e-radiator",
            ServerClass::CryptoHeater => "crypto-heater",
            ServerClass::AsperitasBoiler => "Asperitas AIC24",
            ServerClass::StimergyBoiler => "Stimergy boiler",
            ServerClass::DatacenterNode => "datacenter node",
        }
    }
}

/// Where a server's heat goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeatSink {
    /// Free-cooled into the room it heats (Q.rad, crypto-heater).
    Room,
    /// Dual pipeline: into the room in winter, exhausted outdoors in
    /// summer (Nerdalize e-radiator — the §III-A urban-heat concern).
    DualPipe,
    /// Into a building's hot-water loop (digital boilers).
    WaterLoop,
    /// Removed by a chilled cooling plant (datacenter node); cooling
    /// costs extra energy, captured by the PUE accountant.
    CoolingPlant,
}

/// Static specification of a server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSpec {
    pub class: ServerClass,
    /// Number of CPU packages.
    pub n_cpus: usize,
    /// Cores per CPU package.
    pub cores_per_cpu: usize,
    /// DVFS ladder shared by all cores.
    #[serde(skip, default = "default_ladder")]
    pub ladder: Arc<DvfsLadder>,
    /// Number of GPUs (crypto-heater).
    pub n_gpus: usize,
    /// Max power per GPU at full load, W.
    pub gpu_max_w: f64,
    /// Idle power per GPU, W.
    pub gpu_idle_w: f64,
    /// Fixed board/PSU/network overhead while powered, W.
    pub overhead_w: f64,
    /// Nameplate wall power, W (paper's figure; asserted ≈ model max).
    pub nameplate_w: f64,
    /// Network uplink, Gbit/s.
    pub network_gbps: f64,
    /// Where the heat goes.
    pub heat_sink: HeatSink,
}

// Referenced by `#[serde(default)]`; unused while the vendored serde
// derives are no-ops.
#[allow(dead_code)]
fn default_ladder() -> Arc<DvfsLadder> {
    Arc::new(DvfsLadder::desktop_i7())
}

impl ServerSpec {
    /// Q.rad: "3 or 4 microprocessors", 500 W, wired fiber, free-cooled.
    pub fn qrad() -> Self {
        ServerSpec {
            class: ServerClass::QRad,
            n_cpus: 4,
            cores_per_cpu: 4,
            ladder: Arc::new(DvfsLadder::desktop_i7()),
            n_gpus: 0,
            gpu_max_w: 0.0,
            gpu_idle_w: 0.0,
            overhead_w: 60.0,
            nameplate_w: 500.0,
            network_gbps: 1.0,
            heat_sink: HeatSink::Room,
        }
    }

    /// Nerdalize e-radiator: 1000 W, dual pipeline.
    pub fn eradiator() -> Self {
        ServerSpec {
            class: ServerClass::ERadiator,
            n_cpus: 8,
            cores_per_cpu: 4,
            ladder: Arc::new(DvfsLadder::desktop_i7()),
            n_gpus: 0,
            gpu_max_w: 0.0,
            gpu_idle_w: 0.0,
            overhead_w: 120.0,
            nameplate_w: 1000.0,
            network_gbps: 1.0,
            heat_sink: HeatSink::DualPipe,
        }
    }

    /// Qarnot crypto-heater QC1: 650 W, 2 GPUs.
    pub fn crypto_heater() -> Self {
        ServerSpec {
            class: ServerClass::CryptoHeater,
            n_cpus: 1,
            cores_per_cpu: 4,
            ladder: Arc::new(DvfsLadder::desktop_i7()),
            n_gpus: 2,
            gpu_max_w: 270.0,
            gpu_idle_w: 15.0,
            overhead_w: 50.0,
            nameplate_w: 650.0,
            network_gbps: 1.0,
            heat_sink: HeatSink::Room,
        }
    }

    /// Asperitas AIC24: 200 CPUs, 10 Gbps, 20 kW, immersion boiler.
    pub fn asperitas_boiler() -> Self {
        ServerSpec {
            class: ServerClass::AsperitasBoiler,
            n_cpus: 200,
            cores_per_cpu: 4,
            ladder: Arc::new(DvfsLadder::server_xeon()),
            n_gpus: 0,
            gpu_max_w: 0.0,
            gpu_idle_w: 0.0,
            overhead_w: 800.0,
            nameplate_w: 20_000.0,
            network_gbps: 10.0,
            heat_sink: HeatSink::WaterLoop,
        }
    }

    /// Stimergy oil-immersed boiler: `n_servers` (20–40) small servers
    /// totalling 1–4 kW.
    pub fn stimergy_boiler(n_servers: usize) -> Self {
        assert!(
            (20..=40).contains(&n_servers),
            "Stimergy boilers integrate 20–40 servers (got {n_servers})"
        );
        ServerSpec {
            class: ServerClass::StimergyBoiler,
            n_cpus: n_servers,
            cores_per_cpu: 2,
            ladder: Arc::new(DvfsLadder::desktop_i7()),
            n_gpus: 0,
            gpu_max_w: 0.0,
            gpu_idle_w: 0.0,
            overhead_w: 150.0,
            nameplate_w: 60.0 * n_servers as f64,
            network_gbps: 1.0,
            heat_sink: HeatSink::WaterLoop,
        }
    }

    /// A classical dual-socket datacenter node for the baselines.
    pub fn datacenter_node() -> Self {
        ServerSpec {
            class: ServerClass::DatacenterNode,
            n_cpus: 2,
            cores_per_cpu: 8,
            ladder: Arc::new(DvfsLadder::server_xeon()),
            n_gpus: 0,
            gpu_max_w: 0.0,
            gpu_idle_w: 0.0,
            overhead_w: 80.0,
            nameplate_w: 450.0,
            network_gbps: 10.0,
            heat_sink: HeatSink::CoolingPlant,
        }
    }

    /// Total core count.
    pub fn n_cores(&self) -> usize {
        self.n_cpus * self.cores_per_cpu
    }

    /// Model's maximum electrical power: all cores at top state, full
    /// utilisation, plus GPUs and overhead.
    pub fn model_max_w(&self) -> f64 {
        let top = self.ladder.n_states() - 1;
        self.overhead_w
            + self.n_cores() as f64 * self.ladder.power_w(top, 1.0)
            + self.n_gpus as f64 * self.gpu_max_w
    }

    /// Peak compute throughput, Gops/s (CPU cores only; GPU throughput
    /// is workload-specific and tracked by the mining workload itself).
    pub fn peak_gops(&self) -> f64 {
        self.n_cores() as f64 * self.ladder.max_state().freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_max_tracks_nameplate() {
        // Each class's physical model must land within 20 % of the wall
        // power the paper quotes — this is experiment E12's table.
        for spec in [
            ServerSpec::qrad(),
            ServerSpec::eradiator(),
            ServerSpec::crypto_heater(),
            ServerSpec::asperitas_boiler(),
            ServerSpec::stimergy_boiler(30),
        ] {
            let ratio = spec.model_max_w() / spec.nameplate_w;
            assert!(
                (0.8..1.2).contains(&ratio),
                "{}: model {} W vs nameplate {} W (ratio {ratio:.2})",
                spec.class.name(),
                spec.model_max_w(),
                spec.nameplate_w
            );
        }
    }

    #[test]
    fn qrad_has_paper_core_count() {
        let q = ServerSpec::qrad();
        assert_eq!(q.n_cpus, 4); // "3 or 4 microprocessors"
        assert_eq!(q.n_cores(), 16);
        assert_eq!(q.heat_sink, HeatSink::Room);
    }

    #[test]
    fn crypto_heater_has_two_gpus() {
        let c = ServerSpec::crypto_heater();
        assert_eq!(c.n_gpus, 2);
        assert!((c.nameplate_w - 650.0).abs() < 1e-9);
    }

    #[test]
    fn asperitas_is_20kw_200_cpus_10gbe() {
        let a = ServerSpec::asperitas_boiler();
        assert_eq!(a.n_cpus, 200);
        assert_eq!(a.network_gbps, 10.0);
        assert_eq!(a.nameplate_w, 20_000.0);
        assert_eq!(a.heat_sink, HeatSink::WaterLoop);
    }

    #[test]
    fn stimergy_range_enforced() {
        let s = ServerSpec::stimergy_boiler(20);
        assert!((1_000.0..=4_000.0).contains(&s.nameplate_w));
        let s = ServerSpec::stimergy_boiler(40);
        assert!((1_000.0..=4_000.0).contains(&s.nameplate_w));
    }

    #[test]
    #[should_panic]
    fn stimergy_rejects_out_of_range() {
        ServerSpec::stimergy_boiler(50);
    }

    #[test]
    fn peak_gops_scales_with_cores() {
        let q = ServerSpec::qrad();
        assert_eq!(q.peak_gops(), 16.0 * 3.0);
        let a = ServerSpec::asperitas_boiler();
        assert!(a.peak_gops() > 40.0 * q.peak_gops());
    }
}
