//! The concrete server classes of §II-B.
//!
//! | Class | Paper spec | Constructor |
//! |-------|-----------|-------------|
//! | Q.rad digital heater | 3–4 CPUs, 500 W, 110–230 V, sensors, fiber | [`ServerSpec::qrad`] |
//! | Nerdalize e-radiator | 1000 W, dual heat pipeline (summer exhaust) | [`ServerSpec::eradiator`] |
//! | Qarnot crypto-heater | 650 W, 2 GPUs | [`ServerSpec::crypto_heater`] |
//! | Asperitas AIC24 boiler | 200 CPUs, 10 Gbps Ethernet, 20 kW | [`ServerSpec::asperitas_boiler`] |
//! | Stimergy digital boiler | oil-immersed, 1–4 kW, 20–40 servers | [`ServerSpec::stimergy_boiler`] |
//! | Datacenter node | classical cooled server (baselines) | [`ServerSpec::datacenter_node`] |

mod spec;
mod state;

pub use spec::{HeatSink, ServerClass, ServerSpec};
pub use state::{SeasonMode, ServerState};
