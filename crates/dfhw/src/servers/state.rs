//! Dynamic server state: cores, GPUs, power, and heat routing.

use super::spec::{HeatSink, ServerSpec};
use crate::cpu::CpuCore;
use serde::{Deserialize, Serialize};

/// Season mode for dual-pipe servers (Nerdalize e-radiator): in winter
/// the processor heat goes indoors; in summer it is expelled outside —
/// the behaviour §III-A flags as an urban-heat-island contributor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeasonMode {
    Winter,
    Summer,
}

/// The live state of one server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerState {
    pub spec: ServerSpec,
    cores: Vec<CpuCore>,
    /// GPU utilisations in `[0, 1]`.
    gpu_util: Vec<f64>,
    powered: bool,
    pub season: SeasonMode,
}

impl ServerState {
    pub fn new(spec: ServerSpec) -> Self {
        let cores = (0..spec.n_cores())
            .map(|_| CpuCore::new(spec.ladder.clone()))
            .collect();
        let gpu_util = vec![0.0; spec.n_gpus];
        ServerState {
            spec,
            cores,
            gpu_util,
            powered: true,
            season: SeasonMode::Winter,
        }
    }

    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    pub fn core(&self, i: usize) -> &CpuCore {
        &self.cores[i]
    }

    pub fn core_mut(&mut self, i: usize) -> &mut CpuCore {
        &mut self.cores[i]
    }

    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Power the whole server on/off (the Qarnot hybrid design powers
    /// boards down when no heat is requested, §III-A).
    pub fn set_powered(&mut self, on: bool) {
        self.powered = on;
        for c in &mut self.cores {
            c.set_powered(on);
        }
        if !on {
            self.gpu_util.iter_mut().for_each(|u| *u = 0.0);
        }
    }

    /// Set every core to `level` and `util` at once (uniform dispatch).
    pub fn set_all_cores(&mut self, level: usize, util: f64) {
        for c in &mut self.cores {
            c.set_level(level);
            c.set_util(util);
        }
    }

    /// Set GPU `i` utilisation.
    pub fn set_gpu_util(&mut self, i: usize, util: f64) {
        assert!((0.0..=1.0).contains(&util));
        assert!(self.powered, "cannot load GPUs on a powered-off server");
        self.gpu_util[i] = util;
    }

    /// Electrical power drawn now, W.
    pub fn power_w(&self) -> f64 {
        if !self.powered {
            return 0.0;
        }
        let cpus: f64 = self.cores.iter().map(|c| c.power_w()).sum();
        let gpus: f64 = self
            .gpu_util
            .iter()
            .map(|&u| self.spec.gpu_idle_w + u * (self.spec.gpu_max_w - self.spec.gpu_idle_w))
            .sum();
        self.spec.overhead_w + cpus + gpus
    }

    /// Aggregate compute throughput now, Gops/s.
    pub fn throughput_gops(&self) -> f64 {
        self.cores.iter().map(|c| c.throughput_gops()).sum()
    }

    /// Heat delivered to the *useful* sink (room or water loop), W.
    ///
    /// All drawn power becomes heat; where it lands depends on the sink:
    /// - `Room` / `WaterLoop`: everything is useful heat.
    /// - `DualPipe`: useful indoors in winter; **zero** in summer (all
    ///   heat is exhausted outside — see [`ServerState::waste_heat_w`]).
    /// - `CoolingPlant`: nothing is useful; all becomes machine-room
    ///   waste removed at extra energy cost.
    pub fn useful_heat_w(&self) -> f64 {
        let p = self.power_w();
        match self.spec.heat_sink {
            HeatSink::Room | HeatSink::WaterLoop => p,
            HeatSink::DualPipe => match self.season {
                SeasonMode::Winter => p,
                SeasonMode::Summer => 0.0,
            },
            HeatSink::CoolingPlant => 0.0,
        }
    }

    /// Heat rejected to the environment (urban canopy), W — what the
    /// UHI model (experiment E8) consumes.
    pub fn waste_heat_w(&self) -> f64 {
        self.power_w() - self.useful_heat_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servers::ServerClass;

    #[test]
    fn idle_qrad_draws_overhead_plus_static() {
        let s = ServerState::new(ServerSpec::qrad());
        let expected = s.spec.overhead_w + 16.0 * s.spec.ladder.static_w;
        assert!((s.power_w() - expected).abs() < 1e-9);
    }

    #[test]
    fn full_load_hits_nameplate_region() {
        let mut s = ServerState::new(ServerSpec::qrad());
        let top = s.spec.ladder.n_states() - 1;
        s.set_all_cores(top, 1.0);
        let p = s.power_w();
        assert!(
            (0.8 * 500.0..1.2 * 500.0).contains(&p),
            "full Q.rad draws {p} W"
        );
        assert!((s.throughput_gops() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn powered_off_server_is_completely_dark() {
        let mut s = ServerState::new(ServerSpec::qrad());
        s.set_all_cores(0, 1.0);
        s.set_powered(false);
        assert_eq!(s.power_w(), 0.0);
        assert_eq!(s.useful_heat_w(), 0.0);
        assert_eq!(s.waste_heat_w(), 0.0);
        assert_eq!(s.throughput_gops(), 0.0);
    }

    #[test]
    fn qrad_heat_is_all_useful() {
        let mut s = ServerState::new(ServerSpec::qrad());
        s.set_all_cores(3, 0.8);
        assert_eq!(s.useful_heat_w(), s.power_w());
        assert_eq!(s.waste_heat_w(), 0.0);
    }

    #[test]
    fn eradiator_summer_mode_wastes_everything() {
        let mut s = ServerState::new(ServerSpec::eradiator());
        s.set_all_cores(3, 1.0);
        assert_eq!(s.season, SeasonMode::Winter);
        assert_eq!(s.waste_heat_w(), 0.0);
        s.season = SeasonMode::Summer;
        assert_eq!(s.useful_heat_w(), 0.0);
        assert!(s.waste_heat_w() > 500.0, "summer e-radiator rejects its kW");
    }

    #[test]
    fn datacenter_heat_is_never_useful() {
        let mut s = ServerState::new(ServerSpec::datacenter_node());
        s.set_all_cores(2, 1.0);
        assert_eq!(s.useful_heat_w(), 0.0);
        assert_eq!(s.waste_heat_w(), s.power_w());
    }

    #[test]
    fn crypto_heater_gpus_dominate_power() {
        let mut s = ServerState::new(ServerSpec::crypto_heater());
        let idle = s.power_w();
        s.set_gpu_util(0, 1.0);
        s.set_gpu_util(1, 1.0);
        let mining = s.power_w();
        assert!(mining - idle > 400.0, "two GPUs add {} W", mining - idle);
        assert_eq!(s.spec.class, ServerClass::CryptoHeater);
    }

    #[test]
    fn energy_conservation_power_splits_into_useful_and_waste() {
        for (mk, season) in [
            (ServerSpec::qrad(), SeasonMode::Winter),
            (ServerSpec::eradiator(), SeasonMode::Summer),
            (ServerSpec::asperitas_boiler(), SeasonMode::Winter),
            (ServerSpec::datacenter_node(), SeasonMode::Winter),
        ] {
            let mut s = ServerState::new(mk);
            s.season = season;
            s.set_all_cores(1, 0.7);
            let p = s.power_w();
            assert!(
                (s.useful_heat_w() + s.waste_heat_w() - p).abs() < 1e-9,
                "{}: heat must balance power",
                s.spec.class.name()
            );
        }
    }

    #[test]
    #[should_panic]
    fn gpu_load_on_dark_server_panics() {
        let mut s = ServerState::new(ServerSpec::crypto_heater());
        s.set_powered(false);
        s.set_gpu_util(0, 1.0);
    }
}
