//! DVFS ladders.
//!
//! §III-B: "The heat regulator implements a DVFS based technique (voltage
//! and frequency regulation) to guarantee that the energy consumed
//! corresponds to the heat demand." A [`DvfsLadder`] is the discrete set
//! of P-states a CPU offers; dynamic power follows the classic
//! `P = C·V²·f` law plus static leakage, and throughput scales with
//! frequency. Because voltage must rise with frequency, energy-per-op
//! grows at the top of the ladder — the "laws of diminishing returns"
//! of Le Sueur & Heiser [17], reproduced by experiment E13.

use serde::{Deserialize, Serialize};

/// One P-state: an operating point of the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core frequency, GHz.
    pub freq_ghz: f64,
    /// Supply voltage, V.
    pub voltage_v: f64,
}

/// A discrete ladder of P-states with a power model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DvfsLadder {
    /// P-states sorted by ascending frequency.
    states: Vec<PState>,
    /// Effective switched capacitance, in W/(GHz·V²) per core.
    pub capacitance: f64,
    /// Static (leakage + uncore) power per core, W.
    pub static_w: f64,
}

impl DvfsLadder {
    /// Build a ladder; states are sorted by frequency and validated
    /// (voltage must be non-decreasing with frequency).
    pub fn new(mut states: Vec<PState>, capacitance: f64, static_w: f64) -> Self {
        assert!(!states.is_empty(), "a DVFS ladder needs at least one state");
        assert!(capacitance > 0.0 && static_w >= 0.0);
        states.sort_by(|a, b| a.freq_ghz.partial_cmp(&b.freq_ghz).expect("NaN freq"));
        for w in states.windows(2) {
            assert!(
                w[1].voltage_v >= w[0].voltage_v,
                "voltage must be monotone in frequency"
            );
        }
        assert!(states.iter().all(|s| s.freq_ghz > 0.0 && s.voltage_v > 0.0));
        DvfsLadder {
            states,
            capacitance,
            static_w,
        }
    }

    /// The ladder of the desktop i7-class CPUs Qarnot mounted in Q.rads:
    /// 0.8–3.0 GHz over 0.70–1.05 V. Calibrated so one 4-core package at
    /// full tilt draws ≈ 110 W (×4 CPUs + board ≈ 500 W per Q.rad at the
    /// wall, matching the paper's figure).
    pub fn desktop_i7() -> Self {
        DvfsLadder::new(
            vec![
                PState {
                    freq_ghz: 0.8,
                    voltage_v: 0.70,
                },
                PState {
                    freq_ghz: 1.2,
                    voltage_v: 0.75,
                },
                PState {
                    freq_ghz: 1.6,
                    voltage_v: 0.80,
                },
                PState {
                    freq_ghz: 2.0,
                    voltage_v: 0.86,
                },
                PState {
                    freq_ghz: 2.4,
                    voltage_v: 0.93,
                },
                PState {
                    freq_ghz: 2.8,
                    voltage_v: 1.00,
                },
                PState {
                    freq_ghz: 3.0,
                    voltage_v: 1.05,
                },
            ],
            8.0, // W/(GHz·V²)
            1.0, // static W per core
        )
    }

    /// A server-class CPU ladder for boilers and datacenter nodes:
    /// higher static power, wider dynamic range. Calibrated so the
    /// Asperitas AIC24's 200 four-core packages draw ≈ 20 kW.
    pub fn server_xeon() -> Self {
        DvfsLadder::new(
            vec![
                PState {
                    freq_ghz: 1.0,
                    voltage_v: 0.75,
                },
                PState {
                    freq_ghz: 1.5,
                    voltage_v: 0.82,
                },
                PState {
                    freq_ghz: 2.0,
                    voltage_v: 0.90,
                },
                PState {
                    freq_ghz: 2.5,
                    voltage_v: 1.00,
                },
                PState {
                    freq_ghz: 3.0,
                    voltage_v: 1.10,
                },
            ],
            6.0,
            2.5,
        )
    }

    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    pub fn state(&self, level: usize) -> PState {
        self.states[level]
    }

    pub fn min_state(&self) -> PState {
        self.states[0]
    }

    pub fn max_state(&self) -> PState {
        *self.states.last().expect("non-empty")
    }

    /// Per-core power at `level` with utilisation `util ∈ [0, 1]`:
    /// static + utilisation-scaled dynamic power.
    pub fn power_w(&self, level: usize, util: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&util),
            "utilisation out of range: {util}"
        );
        let s = self.states[level];
        self.static_w + util * self.capacitance * s.freq_ghz * s.voltage_v * s.voltage_v
    }

    /// Per-core compute throughput at `level`, in normalised giga-ops/s
    /// (1.0 GHz ≡ 1.0 Gops of the workload unit).
    pub fn throughput(&self, level: usize) -> f64 {
        self.states[level].freq_ghz
    }

    /// Energy per operation at full utilisation, nJ/op — the metric
    /// whose convexity is the diminishing-returns law (E13).
    pub fn energy_per_op_nj(&self, level: usize) -> f64 {
        self.power_w(level, 1.0) / self.throughput(level)
    }

    /// Highest level whose full-utilisation power does not exceed
    /// `budget_w` per core; `None` if even the lowest state exceeds it.
    pub fn level_for_power(&self, budget_w: f64) -> Option<usize> {
        let mut best = None;
        for (i, _) in self.states.iter().enumerate() {
            if self.power_w(i, 1.0) <= budget_w {
                best = Some(i);
            }
        }
        best
    }

    /// Lowest level whose throughput meets `min_gops`; `None` if even
    /// the top state is too slow.
    pub fn level_for_throughput(&self, min_gops: f64) -> Option<usize> {
        self.states.iter().position(|s| s.freq_ghz >= min_gops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_monotone_in_level_and_util() {
        let l = DvfsLadder::desktop_i7();
        for i in 1..l.n_states() {
            assert!(l.power_w(i, 1.0) > l.power_w(i - 1, 1.0));
        }
        assert!(l.power_w(3, 0.5) < l.power_w(3, 1.0));
        assert_eq!(l.power_w(3, 0.0), l.static_w);
    }

    #[test]
    fn desktop_i7_calibration_matches_qrad() {
        // 4 CPUs × 4 cores at max state should land near 500 W wall power.
        let l = DvfsLadder::desktop_i7();
        let per_core = l.power_w(l.n_states() - 1, 1.0);
        let qrad_w = per_core * 16.0 + 60.0; // + board/PSU overhead
        assert!(
            (420.0..560.0).contains(&qrad_w),
            "Q.rad estimate {qrad_w} W should be ≈500 W"
        );
    }

    #[test]
    fn diminishing_returns_curve_is_convex() {
        // Energy/op must be increasing at the top of the ladder [17].
        let l = DvfsLadder::desktop_i7();
        let top = l.energy_per_op_nj(l.n_states() - 1);
        let mid = l.energy_per_op_nj(l.n_states() / 2);
        assert!(
            top > mid,
            "energy/op at top {top} should exceed mid {mid} (diminishing returns)"
        );
    }

    #[test]
    fn level_for_power_selects_highest_feasible() {
        let l = DvfsLadder::desktop_i7();
        let full = l.power_w(l.n_states() - 1, 1.0);
        assert_eq!(l.level_for_power(full + 0.1), Some(l.n_states() - 1));
        let lowest = l.power_w(0, 1.0);
        assert_eq!(l.level_for_power(lowest), Some(0));
        assert_eq!(l.level_for_power(lowest - 0.1), None);
        // A mid-range budget picks a mid level, and that level's power
        // respects the budget.
        let budget = (lowest + full) / 2.0;
        let lvl = l.level_for_power(budget).unwrap();
        assert!(l.power_w(lvl, 1.0) <= budget);
        assert!(lvl > 0 && lvl < l.n_states() - 1);
    }

    #[test]
    fn level_for_throughput() {
        let l = DvfsLadder::desktop_i7();
        assert_eq!(l.level_for_throughput(0.5), Some(0));
        assert_eq!(l.level_for_throughput(2.9), Some(l.n_states() - 1));
        assert_eq!(l.level_for_throughput(10.0), None);
    }

    #[test]
    fn throughput_scales_with_frequency() {
        let l = DvfsLadder::server_xeon();
        assert_eq!(l.throughput(0), 1.0);
        assert_eq!(l.throughput(l.n_states() - 1), 3.0);
    }

    #[test]
    #[should_panic]
    fn non_monotone_voltage_rejected() {
        DvfsLadder::new(
            vec![
                PState {
                    freq_ghz: 1.0,
                    voltage_v: 1.0,
                },
                PState {
                    freq_ghz: 2.0,
                    voltage_v: 0.8,
                },
            ],
            1.0,
            0.0,
        );
    }

    #[test]
    #[should_panic]
    fn empty_ladder_rejected() {
        DvfsLadder::new(vec![], 1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn util_out_of_range_rejected() {
        DvfsLadder::desktop_i7().power_w(0, 1.5);
    }
}
