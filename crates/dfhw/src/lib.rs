//! # dfhw — data-furnace server hardware
//!
//! Models of every server class the paper names (§II-B), plus the CPU,
//! DVFS, power, sensor, aging, and energy-accounting substrate they
//! share. A data-furnace server is "a classical server where the cooling
//! system is replaced by a heat diffusion system": electrically, all the
//! power it draws becomes heat in the room, which is the identity the
//! whole DF3 model rests on.
//!
//! - [`dvfs`]: discrete P-state ladders; power ∝ C·V²·f plus static
//!   leakage; the "laws of diminishing returns" curve of Le Sueur &
//!   Heiser [17] falls out of the model.
//! - [`cpu`]: a core with a P-state and utilisation, yielding compute
//!   throughput and electrical power.
//! - [`servers`]: the concrete classes — Q.rad (500 W, 3–4 CPUs),
//!   Nerdalize e-radiator (1000 W, dual pipe), Qarnot crypto-heater
//!   (650 W, 2 GPUs), Asperitas AIC24 boiler (200 CPUs, 20 kW, 10 GbE),
//!   Stimergy oil-immersed boiler (1–4 kW), and a classical datacenter
//!   node for the baselines.
//! - [`sensors`]: the Q.rad's sensor board (temperature, humidity,
//!   noise, presence) with realistic measurement noise.
//! - [`aging`]: temperature-accelerated processor wear (§III-C raises
//!   free-cooling aging as an open concern — we model it).
//! - [`energy`]: energy meters and PUE accounting (§II-A's PUE 1.026
//!   claim is reproduced in experiment E2).

pub mod aging;
pub mod cpu;
pub mod dvfs;
pub mod energy;
pub mod sensors;
pub mod servers;

pub use cpu::CpuCore;
pub use dvfs::{DvfsLadder, PState};
pub use energy::{EnergyMeter, PueAccountant};
pub use servers::{ServerClass, ServerSpec, ServerState};
