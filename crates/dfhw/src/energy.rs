//! Energy metering and PUE accounting.
//!
//! §II-A: "CloudandHeat claims a PUE (Power Usage Efficiency) value of
//! 1.026 in some of their datacenters. This is better than the one
//! obtained by Google." Experiment E2 reproduces the comparison: a DF
//! fleet has almost no facility overhead (a few watts of network gear
//! per server), while a classical datacenter spends 30–60 % extra on
//! cooling and power distribution.

use serde::{Deserialize, Serialize};
use simcore::metrics::TimeWeighted;
use simcore::time::SimTime;

/// An integrating energy meter over a power signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyMeter {
    power: TimeWeighted,
}

impl EnergyMeter {
    pub fn new(t0: SimTime) -> Self {
        EnergyMeter {
            power: TimeWeighted::new(t0, 0.0),
        }
    }

    /// Update the instantaneous power draw, W.
    pub fn set_power(&mut self, t: SimTime, watts: f64) {
        assert!(watts >= 0.0, "negative power {watts}");
        self.power.set(t, watts);
    }

    pub fn current_w(&self) -> f64 {
        self.power.current()
    }

    /// Energy consumed so far, J.
    pub fn joules(&self, now: SimTime) -> f64 {
        self.power.integral(now)
    }

    /// Energy consumed so far, kWh.
    pub fn kwh(&self, now: SimTime) -> f64 {
        self.joules(now) / 3.6e6
    }

    /// Time-average power over the whole window, W.
    pub fn mean_w(&self, now: SimTime) -> f64 {
        self.power.average(now)
    }
}

/// PUE accountant: tracks IT energy and facility overhead energy.
///
/// `PUE = (IT + overhead) / IT`. For a DF fleet the overhead is the
/// per-site network/control gear; for a datacenter it is the cooling
/// plant and power distribution losses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PueAccountant {
    it: EnergyMeter,
    overhead: EnergyMeter,
}

impl PueAccountant {
    pub fn new(t0: SimTime) -> Self {
        PueAccountant {
            it: EnergyMeter::new(t0),
            overhead: EnergyMeter::new(t0),
        }
    }

    /// Update the IT power draw, W.
    pub fn set_it_power(&mut self, t: SimTime, watts: f64) {
        self.it.set_power(t, watts);
    }

    /// Update the facility-overhead power draw, W.
    pub fn set_overhead_power(&mut self, t: SimTime, watts: f64) {
        self.overhead.set_power(t, watts);
    }

    /// Set both at once given an overhead *ratio* (e.g. a chiller that
    /// consumes 0.4 W per IT watt → ratio 0.4).
    pub fn set_power_with_ratio(&mut self, t: SimTime, it_watts: f64, overhead_ratio: f64) {
        assert!(overhead_ratio >= 0.0);
        self.it.set_power(t, it_watts);
        self.overhead.set_power(t, it_watts * overhead_ratio);
    }

    pub fn it_kwh(&self, now: SimTime) -> f64 {
        self.it.kwh(now)
    }

    pub fn overhead_kwh(&self, now: SimTime) -> f64 {
        self.overhead.kwh(now)
    }

    pub fn total_kwh(&self, now: SimTime) -> f64 {
        self.it_kwh(now) + self.overhead_kwh(now)
    }

    /// Power Usage Effectiveness over the observation window.
    /// Returns 1.0 when no IT energy has been consumed yet.
    pub fn pue(&self, now: SimTime) -> f64 {
        let it = self.it.joules(now);
        if it <= 0.0 {
            return 1.0;
        }
        (it + self.overhead.joules(now)) / it
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn t(h: i64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(h)
    }

    #[test]
    fn meter_integrates_kwh() {
        let mut m = EnergyMeter::new(t(0));
        m.set_power(t(0), 500.0);
        m.set_power(t(2), 0.0);
        assert!((m.kwh(t(3)) - 1.0).abs() < 1e-9); // 500 W × 2 h = 1 kWh
        assert!((m.mean_w(t(4)) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn df_fleet_pue_is_near_one() {
        // 1000 Q.rads at 350 W mean, 5 W of network gear each → PUE ≈ 1.014,
        // in the ballpark of CloudandHeat's published 1.026.
        let mut a = PueAccountant::new(t(0));
        a.set_it_power(t(0), 1000.0 * 350.0);
        a.set_overhead_power(t(0), 1000.0 * 5.0);
        let pue = a.pue(t(24 * 30));
        assert!((1.005..1.05).contains(&pue), "DF PUE {pue} should be ≈1.02");
    }

    #[test]
    fn datacenter_pue_matches_industry_range() {
        let mut a = PueAccountant::new(t(0));
        a.set_power_with_ratio(t(0), 350_000.0, 0.55); // typical chiller plant
        let pue = a.pue(t(24 * 30));
        assert!((1.5..1.6).contains(&pue), "DC PUE {pue}");
    }

    #[test]
    fn pue_with_no_energy_is_one() {
        let a = PueAccountant::new(t(0));
        assert_eq!(a.pue(t(1)), 1.0);
    }

    #[test]
    fn pue_is_time_weighted_not_instantaneous() {
        let mut a = PueAccountant::new(t(0));
        // First day: heavy cooling. Rest of month: almost none.
        a.set_power_with_ratio(t(0), 100_000.0, 0.6);
        a.set_power_with_ratio(t(24), 100_000.0, 0.1);
        let pue = a.pue(t(24 * 10));
        assert!(pue < 1.2, "window-average PUE {pue} should reflect the mix");
        assert!(pue > 1.1);
    }

    #[test]
    #[should_panic]
    fn negative_power_rejected() {
        EnergyMeter::new(t(0)).set_power(t(1), -1.0);
    }
}
