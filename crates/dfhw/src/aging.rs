//! Temperature-accelerated processor aging.
//!
//! §III-C: "the cooling approach of DF servers might cause the
//! acceleration of processor aging and consequently, the need to replace
//! them inside DF servers." Free cooling means the silicon runs hotter
//! than in a chilled machine room. We model wear with an Arrhenius-style
//! acceleration factor: wear accrues at
//!
//! ```text
//! rate(T) = exp( (Ea/k) · (1/T_ref − 1/T) )        (T in kelvin)
//! ```
//!
//! so a die at `T_ref` wears at rate 1.0, hotter dies wear faster. A
//! part fails when accumulated wear crosses its (Weibull-distributed)
//! wear budget — replacement logistics then become a maintenance cost.

use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::dist::weibull;
use simcore::time::SimDuration;

/// Arrhenius parameters of a wear mechanism.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AgingParams {
    /// Activation energy over Boltzmann constant, kelvin. Typical
    /// electromigration values give Ea ≈ 0.7 eV → Ea/k ≈ 8120 K.
    pub ea_over_k: f64,
    /// Reference junction temperature at which rate = 1, °C.
    pub ref_temp_c: f64,
    /// Expected lifetime at reference temperature, years.
    pub ref_life_years: f64,
    /// Weibull shape of the lifetime distribution (>1 = wear-out).
    pub weibull_shape: f64,
}

impl AgingParams {
    /// Electromigration-dominated wear of a commodity CPU: 10 years at
    /// 65 °C junction temperature.
    pub fn commodity_cpu() -> Self {
        AgingParams {
            ea_over_k: 8_120.0,
            ref_temp_c: 65.0,
            ref_life_years: 10.0,
            weibull_shape: 3.0,
        }
    }

    /// Acceleration factor at junction temperature `temp_c` relative to
    /// the reference (1.0 at the reference, >1 when hotter).
    pub fn acceleration(&self, temp_c: f64) -> f64 {
        let t = temp_c + 273.15;
        let t_ref = self.ref_temp_c + 273.15;
        assert!(t > 0.0, "temperature below absolute zero");
        (self.ea_over_k * (1.0 / t_ref - 1.0 / t)).exp()
    }
}

/// Wear state of one processor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WearState {
    params: AgingParams,
    /// Accumulated wear in reference-years.
    wear_ref_years: f64,
    /// This part's wear budget in reference-years (sampled lifetime).
    budget_ref_years: f64,
}

impl WearState {
    /// Create with a sampled lifetime budget.
    pub fn new<R: Rng + ?Sized>(params: AgingParams, rng: &mut R) -> Self {
        // Weibull with mean ≈ ref_life: scale = life / Γ(1+1/k); for
        // k = 3, Γ(4/3) ≈ 0.8930.
        let gamma_factor = match params.weibull_shape {
            s if (s - 3.0).abs() < 1e-9 => 0.8930,
            _ => 0.9, // adequate for the shapes we use
        };
        let scale = params.ref_life_years / gamma_factor;
        let budget = weibull(rng, scale, params.weibull_shape);
        WearState {
            params,
            wear_ref_years: 0.0,
            budget_ref_years: budget,
        }
    }

    /// Deterministic variant with the exact reference lifetime (tests).
    pub fn deterministic(params: AgingParams) -> Self {
        WearState {
            params,
            wear_ref_years: params.ref_life_years,
            budget_ref_years: params.ref_life_years,
        }
        .reset()
    }

    fn reset(mut self) -> Self {
        self.wear_ref_years = 0.0;
        self
    }

    /// Accrue wear over `dt` at junction temperature `temp_c`.
    pub fn accrue(&mut self, dt: SimDuration, temp_c: f64) {
        assert!(!dt.is_negative());
        let years = dt.as_secs_f64() / (365.0 * 86_400.0);
        self.wear_ref_years += years * self.params.acceleration(temp_c);
    }

    /// Fraction of the budget consumed, ≥ 0 (may exceed 1 after failure).
    pub fn wear_fraction(&self) -> f64 {
        self.wear_ref_years / self.budget_ref_years
    }

    pub fn has_failed(&self) -> bool {
        self.wear_ref_years >= self.budget_ref_years
    }

    /// Remaining life at a constant junction temperature, years.
    pub fn remaining_life_years(&self, temp_c: f64) -> f64 {
        let remaining_ref = (self.budget_ref_years - self.wear_ref_years).max(0.0);
        remaining_ref / self.params.acceleration(temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::RngStreams;

    #[test]
    fn acceleration_is_one_at_reference() {
        let p = AgingParams::commodity_cpu();
        assert!((p.acceleration(65.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hotter_wears_faster() {
        let p = AgingParams::commodity_cpu();
        let a75 = p.acceleration(75.0);
        let a85 = p.acceleration(85.0);
        assert!(a75 > 1.0 && a85 > a75);
        // Classic rule of thumb: ~2× per 10 °C in this regime.
        assert!((1.5..3.0).contains(&a75), "a(75) = {a75}");
    }

    #[test]
    fn cooler_wears_slower() {
        let p = AgingParams::commodity_cpu();
        assert!(p.acceleration(45.0) < 0.5);
    }

    #[test]
    fn wear_accrues_and_fails() {
        let mut w = WearState::deterministic(AgingParams::commodity_cpu());
        // 10 years at reference temperature exactly exhausts the budget.
        for _ in 0..10 {
            w.accrue(SimDuration::YEAR, 65.0);
        }
        assert!((w.wear_fraction() - 1.0).abs() < 1e-9);
        assert!(w.has_failed());
    }

    #[test]
    fn free_cooled_qrad_dies_sooner_than_chilled_dc() {
        // The §III-C concern, quantified: a die at 80 °C (free-cooled
        // under summer load) vs 60 °C (chilled machine room).
        let p = AgingParams::commodity_cpu();
        let mut hot = WearState::deterministic(p);
        let mut cool = WearState::deterministic(p);
        hot.accrue(SimDuration::YEAR * 5, 80.0);
        cool.accrue(SimDuration::YEAR * 5, 60.0);
        assert!(hot.wear_fraction() > 2.0 * cool.wear_fraction());
        assert!(hot.remaining_life_years(80.0) < cool.remaining_life_years(60.0));
    }

    #[test]
    fn sampled_budgets_spread_around_reference_life() {
        let streams = RngStreams::new(3);
        let mut rng = streams.stream("aging");
        let p = AgingParams::commodity_cpu();
        let budgets: Vec<f64> = (0..2000)
            .map(|_| WearState::new(p, &mut rng).budget_ref_years)
            .collect();
        let mean = budgets.iter().sum::<f64>() / budgets.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean budget {mean} ≈ 10 y");
        assert!(budgets.iter().any(|&b| b < 7.0), "some early failures");
        assert!(budgets.iter().any(|&b| b > 13.0), "some long-lived parts");
    }

    #[test]
    fn remaining_life_depends_on_future_temperature() {
        let w = WearState::deterministic(AgingParams::commodity_cpu());
        assert!(w.remaining_life_years(80.0) < w.remaining_life_years(65.0));
        assert!((w.remaining_life_years(65.0) - 10.0).abs() < 1e-9);
    }
}
