//! Thermostats: how residents express the paper's *heating request* flow.
//!
//! §II-C: "With digital heaters, numerical targets could be defined in
//! such requests. For instance, one can ask to a Qarnot heater to set the
//! temperature at 20 degrees." Two controllers are provided:
//!
//! - [`HysteresisThermostat`]: classic bang-bang control with a dead
//!   band, emitting on/off heating demands.
//! - [`ModulatingThermostat`]: proportional control emitting a demand in
//!   `[0, 1]` — this is what the DF3 heat regulator consumes, since a
//!   DVFS ladder can produce intermediate power levels (§III-B's "heat
//!   regulator implements a DVFS based technique").
//!
//! Both honour a [`SetpointSchedule`] with day/night setback, matching
//! how residents actually drive heat demand.

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;

/// A daily setpoint schedule with night setback.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SetpointSchedule {
    /// Daytime target, °C.
    pub day_c: f64,
    /// Night target, °C.
    pub night_c: f64,
    /// Hour the day period starts (e.g. 6.0).
    pub day_start_h: f64,
    /// Hour the night period starts (e.g. 22.0).
    pub night_start_h: f64,
}

impl SetpointSchedule {
    /// The schedule used across the experiment suite: 20 °C days
    /// (06:00–22:00), 17 °C nights. Figure 4's observed means (≈ 20–23 °C)
    /// come from rooms regulated around such setpoints plus free gains.
    pub fn standard() -> Self {
        SetpointSchedule {
            day_c: 20.0,
            night_c: 17.0,
            day_start_h: 6.0,
            night_start_h: 22.0,
        }
    }

    /// A constant setpoint all day.
    pub fn constant(c: f64) -> Self {
        SetpointSchedule {
            day_c: c,
            night_c: c,
            day_start_h: 0.0,
            night_start_h: 24.0,
        }
    }

    /// The setpoint effective at time `t`.
    pub fn setpoint_c(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        if h >= self.day_start_h && h < self.night_start_h {
            self.day_c
        } else {
            self.night_c
        }
    }
}

/// Bang-bang thermostat with a symmetric dead band.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HysteresisThermostat {
    pub schedule: SetpointSchedule,
    /// Half-width of the dead band, K.
    pub dead_band_k: f64,
    heating: bool,
}

impl HysteresisThermostat {
    pub fn new(schedule: SetpointSchedule, dead_band_k: f64) -> Self {
        assert!(dead_band_k > 0.0);
        HysteresisThermostat {
            schedule,
            dead_band_k,
            heating: false,
        }
    }

    /// Update with the current room temperature; returns whether the
    /// heater should run.
    pub fn update(&mut self, t: SimTime, room_c: f64) -> bool {
        let sp = self.schedule.setpoint_c(t);
        if room_c <= sp - self.dead_band_k {
            self.heating = true;
        } else if room_c >= sp + self.dead_band_k {
            self.heating = false;
        }
        self.heating
    }

    pub fn is_heating(&self) -> bool {
        self.heating
    }
}

/// Proportional thermostat: demand rises linearly from 0 at the setpoint
/// to 1 at `full_demand_gap_k` below it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModulatingThermostat {
    pub schedule: SetpointSchedule,
    /// Temperature deficit at which demand saturates at 1.0, K.
    pub full_demand_gap_k: f64,
}

impl ModulatingThermostat {
    pub fn new(schedule: SetpointSchedule, full_demand_gap_k: f64) -> Self {
        assert!(full_demand_gap_k > 0.0);
        ModulatingThermostat {
            schedule,
            full_demand_gap_k,
        }
    }

    /// The standard modulating controller: saturates 1.5 K below setpoint.
    pub fn standard() -> Self {
        Self::new(SetpointSchedule::standard(), 1.5)
    }

    /// Heat demand in `[0, 1]` given the current room temperature.
    pub fn demand(&self, t: SimTime, room_c: f64) -> f64 {
        let sp = self.schedule.setpoint_c(t);
        ((sp - room_c) / self.full_demand_gap_k).clamp(0.0, 1.0)
    }

    /// Current setpoint, for telemetry.
    pub fn setpoint_c(&self, t: SimTime) -> f64 {
        self.schedule.setpoint_c(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn at_hour(h: i64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(h)
    }

    #[test]
    fn schedule_day_night() {
        let s = SetpointSchedule::standard();
        assert_eq!(s.setpoint_c(at_hour(12)), 20.0);
        assert_eq!(s.setpoint_c(at_hour(23)), 17.0);
        assert_eq!(s.setpoint_c(at_hour(3)), 17.0);
        assert_eq!(s.setpoint_c(at_hour(6)), 20.0);
    }

    #[test]
    fn constant_schedule() {
        let s = SetpointSchedule::constant(21.0);
        for h in 0..24 {
            assert_eq!(s.setpoint_c(at_hour(h)), 21.0);
        }
    }

    #[test]
    fn hysteresis_switches_with_dead_band() {
        let mut th = HysteresisThermostat::new(SetpointSchedule::constant(20.0), 0.5);
        assert!(!th.is_heating());
        assert!(th.update(at_hour(0), 19.4)); // below 19.5 → on
        assert!(th.update(at_hour(0), 20.2)); // inside band → stays on
        assert!(!th.update(at_hour(0), 20.6)); // above 20.5 → off
        assert!(!th.update(at_hour(0), 19.8)); // inside band → stays off
        assert!(th.update(at_hour(0), 19.4)); // below again → on
    }

    #[test]
    fn hysteresis_limits_switching_frequency() {
        // Feed a slowly oscillating temperature and count transitions —
        // the dead band must prevent chattering.
        let mut th = HysteresisThermostat::new(SetpointSchedule::constant(20.0), 0.5);
        let mut switches = 0;
        let mut last = th.is_heating();
        for i in 0..1000 {
            let temp = 20.0 + 0.3 * ((i as f64) * 0.5).sin(); // stays inside band
            let now = th.update(at_hour(0), temp);
            if now != last {
                switches += 1;
                last = now;
            }
        }
        assert_eq!(
            switches, 0,
            "oscillation inside the dead band must not switch"
        );
    }

    #[test]
    fn modulating_demand_is_proportional_and_clamped() {
        let th = ModulatingThermostat::new(SetpointSchedule::constant(20.0), 2.0);
        let t = at_hour(0);
        assert_eq!(th.demand(t, 22.0), 0.0);
        assert_eq!(th.demand(t, 20.0), 0.0);
        assert!((th.demand(t, 19.0) - 0.5).abs() < 1e-12);
        assert_eq!(th.demand(t, 18.0), 1.0);
        assert_eq!(th.demand(t, 10.0), 1.0);
    }

    #[test]
    fn night_setback_reduces_demand() {
        let th = ModulatingThermostat::standard();
        let room = 18.0;
        let day = th.demand(at_hour(12), room);
        let night = th.demand(at_hour(23), room);
        assert!(day > night, "day demand {day} > night demand {night}");
    }

    #[test]
    fn closed_loop_with_room_settles_near_setpoint() {
        use crate::room::{Room, RoomParams};
        let mut room = Room::new(RoomParams::typical_apartment_room(), 15.0);
        let th = ModulatingThermostat::new(SetpointSchedule::constant(20.0), 1.5);
        let qrad_max_w = 500.0;
        let mut t = SimTime::ZERO;
        let dt = SimDuration::MINUTE * 10;
        for _ in 0..(6 * 24 * 7) {
            let demand = th.demand(t, room.temperature_c());
            room.step(dt, 5.0, qrad_max_w * demand);
            t += dt;
        }
        let temp = room.temperature_c();
        assert!(
            (18.5..20.5).contains(&temp),
            "closed loop should settle near setpoint, got {temp}"
        );
    }
}
