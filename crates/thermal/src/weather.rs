//! Synthetic outdoor weather.
//!
//! Outdoor temperature is modelled as
//!
//! ```text
//! T(t) = annual_mean
//!      - seasonal_amplitude · cos(2π · (day - coldest_day)/365)   // season
//!      - diurnal_amplitude  · cos(2π · (hour - warmest_hour)/24)  // day cycle
//!      + OU(t)                                                    // weather noise
//! ```
//!
//! where `OU` is an Ornstein–Uhlenbeck process (mean-reverting, a few
//! days of correlation — cold snaps and mild spells). The trace is
//! pre-generated at a fixed resolution and linearly interpolated, so a
//! `Weather` lookup is pure and O(1), and the same seed always yields
//! the same winter — the property the paired experiments rely on.

use serde::{Deserialize, Serialize};
use simcore::dist::ou_step;
use simcore::time::{Calendar, SimDuration, SimTime};
use simcore::RngStreams;

/// Configuration of the synthetic climate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WeatherConfig {
    /// Calendar anchoring t = 0 to a month (phases the seasonal cycle).
    pub calendar: Calendar,
    /// Annual mean outdoor temperature, °C.
    pub annual_mean_c: f64,
    /// Half peak-to-peak of the seasonal cycle, °C.
    pub seasonal_amplitude_c: f64,
    /// Half peak-to-peak of the diurnal cycle, °C.
    pub diurnal_amplitude_c: f64,
    /// Day of (calendar) year that is coldest on average (mid-January).
    pub coldest_day_of_year: f64,
    /// Hour of day that is warmest on average.
    pub warmest_hour: f64,
    /// Stationary standard deviation of the OU noise, °C.
    pub noise_std_c: f64,
    /// Correlation time of the OU noise, days.
    pub noise_correlation_days: f64,
}

impl WeatherConfig {
    /// Paris-like climate (Qarnot's home market): annual mean ≈ 12 °C,
    /// January mean ≈ 4.5 °C, July mean ≈ 19.5 °C, ±2.5 °C weather noise
    /// with ~3-day correlation.
    pub fn paris(calendar: Calendar) -> Self {
        WeatherConfig {
            calendar,
            annual_mean_c: 12.0,
            seasonal_amplitude_c: 7.5,
            diurnal_amplitude_c: 3.5,
            coldest_day_of_year: 15.0, // Jan 16
            warmest_hour: 15.0,
            noise_std_c: 2.5,
            noise_correlation_days: 3.0,
        }
    }

    /// A colder, Nordic-like climate for sensitivity studies.
    pub fn stockholm(calendar: Calendar) -> Self {
        WeatherConfig {
            annual_mean_c: 7.0,
            seasonal_amplitude_c: 10.5,
            ..WeatherConfig::paris(calendar)
        }
    }

    /// Deterministic variant (no stochastic component) for analytic tests.
    pub fn deterministic(mut self) -> Self {
        self.noise_std_c = 0.0;
        self
    }

    /// The deterministic (noise-free) temperature at time `t`.
    pub fn baseline_at(&self, t: SimTime) -> f64 {
        // Calendar day-of-year: day index offset by the epoch month start.
        let epoch_day: f64 = simcore::time::MONTH_DAYS[..self.calendar.epoch_month as usize]
            .iter()
            .map(|&d| d as f64)
            .sum();
        let doy = (t.as_days_f64() + epoch_day) % 365.0;
        let season = -self.seasonal_amplitude_c
            * (2.0 * std::f64::consts::PI * (doy - self.coldest_day_of_year) / 365.0).cos();
        let diurnal = self.diurnal_amplitude_c
            * (2.0 * std::f64::consts::PI * (t.hour_of_day() - self.warmest_hour) / 24.0).cos();
        self.annual_mean_c + season + diurnal
    }
}

/// A pre-generated weather trace, queryable at any time within its span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Weather {
    config: WeatherConfig,
    /// OU noise samples at `resolution` spacing (baseline added at query).
    noise: Vec<f64>,
    resolution: SimDuration,
    span: SimDuration,
}

impl Weather {
    /// Default sampling resolution of the noise component.
    pub const DEFAULT_RESOLUTION: SimDuration = SimDuration::HOUR;

    /// Generate a trace covering `[0, span]`.
    pub fn generate(config: WeatherConfig, span: SimDuration, streams: &RngStreams) -> Self {
        Self::generate_with_resolution(config, span, Self::DEFAULT_RESOLUTION, streams)
    }

    /// Generate with an explicit noise resolution.
    pub fn generate_with_resolution(
        config: WeatherConfig,
        span: SimDuration,
        resolution: SimDuration,
        streams: &RngStreams,
    ) -> Self {
        assert!(span > SimDuration::ZERO && resolution > SimDuration::ZERO);
        let mut rng = streams.stream("weather");
        let steps = (span.as_secs_f64() / resolution.as_secs_f64()).ceil() as usize + 1;
        let theta = 1.0 / (config.noise_correlation_days * 86_400.0); // 1/s
                                                                      // Stationary std sigma_stat = sigma / sqrt(2 theta) → sigma:
        let sigma = config.noise_std_c * (2.0 * theta).sqrt();
        let dt = resolution.as_secs_f64();
        let mut noise = Vec::with_capacity(steps);
        let mut x = 0.0;
        for _ in 0..steps {
            noise.push(x);
            x = ou_step(&mut rng, x, 0.0, theta, sigma, dt);
        }
        Weather {
            config,
            noise,
            resolution,
            span,
        }
    }

    pub fn config(&self) -> &WeatherConfig {
        &self.config
    }

    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// Sampling resolution of the noise trace.
    pub fn resolution(&self) -> SimDuration {
        self.resolution
    }

    /// Outdoor temperature at `t` (°C). The seasonal/diurnal baseline is
    /// periodic by construction; queries past the generated span wrap
    /// the noise trace onto its sample grid, so long horizons see the
    /// trace repeat rather than freeze at the last sample or panic.
    pub fn outdoor_c(&self, t: SimTime) -> f64 {
        assert!(t >= SimTime::ZERO, "weather queried at negative time {t}");
        let period = (self.noise.len() - 1) as f64;
        let mut pos = t.as_secs_f64() / self.resolution.as_secs_f64();
        if pos >= period {
            pos %= period;
        }
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        let n = self.noise[i] * (1.0 - frac) + self.noise[i + 1] * frac;
        self.config.baseline_at(t) + n
    }

    /// Mean outdoor temperature over `[from, to]`, sampled at the noise
    /// resolution.
    pub fn mean_outdoor_c(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from);
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut t = from;
        while t <= to {
            sum += self.outdoor_c(t);
            count += 1;
            t += self.resolution;
        }
        sum / count as f64
    }

    /// Heating degree-hours below `base_c` over `[from, to]` — the
    /// standard proxy for heating demand.
    pub fn degree_hours(&self, base_c: f64, from: SimTime, to: SimTime) -> f64 {
        let mut dh = 0.0;
        let mut t = from;
        let step_h = self.resolution.as_hours_f64();
        while t < to {
            dh += (base_c - self.outdoor_c(t)).max(0.0) * step_h;
            t += self.resolution;
        }
        dh
    }
}

/// A flat tabulation of a [`Weather`] trace: the full seasonal +
/// diurnal + noise temperature pre-evaluated at the trace's sample
/// resolution, queried with a wrap + linear interpolation.
///
/// `Weather::outdoor_c` pays two `cos` calls plus the noise lerp on
/// every query; on the platform hot path that query runs per control
/// tick and per worker wake. A `WeatherTable` replaces it with two
/// loads and a lerp. At grid points the table is exact (it stores
/// `Weather::outdoor_c(i·res)` verbatim); between grid points it
/// deviates only by the curvature of the diurnal cosine across one
/// sample interval (< 0.05 °C at hourly resolution), which is far
/// below the weather-noise floor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherTable {
    /// Total outdoor temperature at `resolution` spacing over the span.
    samples: Vec<f64>,
    resolution: SimDuration,
    span: SimDuration,
}

impl WeatherTable {
    /// Tabulate `weather` at its own noise resolution: one sample per
    /// noise sample, baseline evaluated at the grid point (identical to
    /// what `Weather::outdoor_c` returns there).
    pub fn tabulate(weather: &Weather) -> Self {
        let resolution = weather.resolution();
        let mut samples = Vec::with_capacity(weather.noise.len());
        for (i, &noise) in weather.noise.iter().enumerate() {
            let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * resolution.as_secs_f64());
            samples.push(weather.config.baseline_at(t) + noise);
        }
        WeatherTable {
            samples,
            resolution,
            span: weather.span(),
        }
    }

    pub fn span(&self) -> SimDuration {
        self.span
    }

    pub fn resolution(&self) -> SimDuration {
        self.resolution
    }

    /// Outdoor temperature at `t` (°C): two loads and a lerp. Queries
    /// past the span wrap, mirroring [`Weather::outdoor_c`].
    #[inline]
    pub fn outdoor_c(&self, t: SimTime) -> f64 {
        debug_assert!(t >= SimTime::ZERO, "weather queried at negative time {t}");
        let period = (self.samples.len() - 1) as f64;
        let mut pos = t.as_secs_f64() / self.resolution.as_secs_f64();
        if pos >= period {
            pos %= period;
        }
        let i = pos as usize;
        let frac = pos - i as f64;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams() -> RngStreams {
        RngStreams::new(2024)
    }

    #[test]
    fn january_colder_than_july() {
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH);
        let w = Weather::generate(cfg, SimDuration::YEAR, &streams());
        let jan = w.mean_outdoor_c(SimTime::ZERO, SimTime::ZERO + SimDuration::from_days(31));
        let jul_start = SimTime::ZERO + SimDuration::from_days(181);
        let jul = w.mean_outdoor_c(jul_start, jul_start + SimDuration::from_days(31));
        assert!(jan < 8.0, "January mean {jan} should be cold");
        assert!(jul > 16.0, "July mean {jul} should be warm");
        assert!(jul - jan > 10.0);
    }

    #[test]
    fn november_epoch_phases_season_correctly() {
        // With a November epoch, month 2 (January) must be the coldest of
        // the Nov..May window — this is what anchors Figure 4's dip.
        let cfg = WeatherConfig::paris(Calendar::NOVEMBER_EPOCH).deterministic();
        let w = Weather::generate(cfg, SimDuration::from_days(212), &streams());
        let cal = Calendar::NOVEMBER_EPOCH;
        let mut means = Vec::new();
        for m in 0..7 {
            let a = cal.month_start(m);
            let b = cal.month_start(m + 1);
            means.push(w.mean_outdoor_c(a, b - SimDuration::HOUR));
        }
        // months: Nov Dec Jan Feb Mar Apr May
        let coldest = means
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            coldest == 2 || coldest == 3,
            "coldest month should be Jan/Feb, got index {coldest}, means {means:?}"
        );
        assert!(means[6] > means[0], "May should be warmer than November");
    }

    #[test]
    fn diurnal_cycle_peaks_mid_afternoon() {
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH).deterministic();
        let day = SimTime::ZERO + SimDuration::from_days(100);
        let at = |h: i64| cfg.baseline_at(day + SimDuration::from_hours(h));
        assert!(at(15) > at(4), "3pm warmer than 4am");
        assert!((at(15) - at(3)) > 5.0, "diurnal swing should be visible");
    }

    #[test]
    fn noise_has_requested_magnitude() {
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH);
        let w = Weather::generate(cfg, SimDuration::YEAR, &streams());
        let det = cfg.deterministic();
        let mut dev = simcore::metrics::Summary::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + SimDuration::YEAR {
            dev.observe(w.outdoor_c(t) - det.baseline_at(t));
            t += SimDuration::from_hours(6);
        }
        assert!(
            dev.mean().abs() < 1.0,
            "noise mean {} should be ~0",
            dev.mean()
        );
        assert!(
            (dev.std() - 2.5).abs() < 1.0,
            "noise std {} should be ~2.5",
            dev.std()
        );
    }

    #[test]
    fn same_seed_same_weather() {
        let cfg = WeatherConfig::paris(Calendar::NOVEMBER_EPOCH);
        let a = Weather::generate(cfg, SimDuration::from_days(30), &RngStreams::new(5));
        let b = Weather::generate(cfg, SimDuration::from_days(30), &RngStreams::new(5));
        let t = SimTime::ZERO + SimDuration::from_days(12) + SimDuration::from_hours(7);
        assert_eq!(a.outdoor_c(t), b.outdoor_c(t));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WeatherConfig::paris(Calendar::NOVEMBER_EPOCH);
        let a = Weather::generate(cfg, SimDuration::from_days(30), &RngStreams::new(5));
        let b = Weather::generate(cfg, SimDuration::from_days(30), &RngStreams::new(6));
        let t = SimTime::ZERO + SimDuration::from_days(12);
        assert_ne!(a.outdoor_c(t), b.outdoor_c(t));
    }

    #[test]
    fn degree_hours_winter_exceed_summer() {
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH);
        let w = Weather::generate(cfg, SimDuration::YEAR, &streams());
        let jan = w.degree_hours(
            18.0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(31),
        );
        let jul_start = SimTime::ZERO + SimDuration::from_days(181);
        let jul = w.degree_hours(18.0, jul_start, jul_start + SimDuration::from_days(31));
        assert!(jan > 3.0 * jul.max(1.0), "jan={jan} jul={jul}");
    }

    #[test]
    fn query_past_span_wraps_instead_of_panicking() {
        // Regression: horizons longer than the generated trace used to
        // panic (and Platform::finalise_energy clamped to dodge it).
        // Past the span the noise trace wraps; the seasonal baseline is
        // periodic anyway, so values stay physical.
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH);
        let w = Weather::generate(cfg, SimDuration::from_days(10), &streams());
        let past = w.outdoor_c(SimTime::ZERO + SimDuration::from_days(11));
        assert!((-30.0..45.0).contains(&past), "wrapped query gave {past}");
        // The wrapped noise is the start-of-trace noise, one period back.
        let wrapped_noise = past - cfg.baseline_at(SimTime::ZERO + SimDuration::from_days(11));
        let origin_noise = w.outdoor_c(SimTime::ZERO + SimDuration::from_days(1))
            - cfg.baseline_at(SimTime::ZERO + SimDuration::from_days(1));
        assert!(
            (wrapped_noise - origin_noise).abs() < 1e-9,
            "noise must wrap onto its own grid: {wrapped_noise} vs {origin_noise}"
        );
    }

    #[test]
    fn table_is_exact_on_grid_and_close_between() {
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH);
        let w = Weather::generate(cfg, SimDuration::from_days(60), &streams());
        let table = WeatherTable::tabulate(&w);
        // Exact at in-span grid points (the table stores outdoor_c
        // verbatim).
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + SimDuration::from_days(60) {
            assert_eq!(table.outdoor_c(t).to_bits(), w.outdoor_c(t).to_bits());
            t += SimDuration::HOUR;
        }
        // Between grid points the lerp misses only diurnal curvature.
        let mut max_dev = 0.0f64;
        let mut q = SimTime::ZERO + SimDuration::from_secs(930);
        while q < SimTime::ZERO + SimDuration::from_days(60) {
            max_dev = max_dev.max((table.outdoor_c(q) - w.outdoor_c(q)).abs());
            q += SimDuration::from_secs(2_711);
        }
        assert!(max_dev < 0.05, "table deviates {max_dev} °C from analytic");
    }

    #[test]
    fn table_wraps_past_span() {
        let cfg = WeatherConfig::paris(Calendar::JANUARY_EPOCH);
        let w = Weather::generate(cfg, SimDuration::from_days(10), &streams());
        let table = WeatherTable::tabulate(&w);
        let lo = table.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = table
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        // Past-span queries wrap onto the sample grid: a lerp of stored
        // samples, so always within the trace's range — never frozen at
        // the last sample, never a panic.
        let mut t = SimTime::ZERO + SimDuration::from_days(10);
        while t < SimTime::ZERO + SimDuration::from_days(25) {
            let v = table.outdoor_c(t);
            assert!((lo..=hi).contains(&v), "wrapped query {v} outside trace");
            t += SimDuration::from_hours(3) + SimDuration::from_secs(511);
        }
    }

    #[test]
    fn stockholm_colder_than_paris() {
        let cal = Calendar::JANUARY_EPOCH;
        let p = WeatherConfig::paris(cal).deterministic();
        let s = WeatherConfig::stockholm(cal).deterministic();
        let t = SimTime::ZERO + SimDuration::from_days(15); // mid-January
        assert!(s.baseline_at(t) < p.baseline_at(t));
    }
}
