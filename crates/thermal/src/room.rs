//! Lumped-capacitance (1R1C) room model.
//!
//! A room is one thermal node with capacitance `C` (J/K) coupled to the
//! outdoors through resistance `R` (K/W), receiving heater power `P_h`
//! and free internal gains `P_g` (occupants, appliances, sun):
//!
//! ```text
//! C · dT/dt = (T_out − T)/R + P_h + P_g
//! ```
//!
//! Over an interval with constant inputs the ODE has the closed form
//!
//! ```text
//! T(t+Δ) = T∞ + (T(t) − T∞)·exp(−Δ/(R·C)),   T∞ = T_out + R·(P_h + P_g)
//! ```
//!
//! which we integrate **exactly** — the simulation is therefore accurate
//! at any step size, and a step is O(1).

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Thermal parameters of a room.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoomParams {
    /// Thermal resistance to outdoors, K/W. Smaller = leakier.
    pub resistance_k_per_w: f64,
    /// Thermal capacitance, J/K. Larger = slower.
    pub capacitance_j_per_k: f64,
    /// Constant internal free gains, W (occupants, appliances).
    pub internal_gains_w: f64,
}

impl RoomParams {
    /// A typical ~20 m² insulated French apartment room: steady-state
    /// loss ≈ 500 W at ΔT = 15 K (matching one Q.rad's 500 W output —
    /// the paper notes the Q.rad draw "corresponds to consumption quite
    /// reasonable if not reduced for electric heating"), time constant
    /// R·C ≈ 17 h.
    pub fn typical_apartment_room() -> Self {
        RoomParams {
            resistance_k_per_w: 0.030,  // 500 W sustains ΔT = 15 K
            capacitance_j_per_k: 2.0e6, // τ = 0.03 × 2e6 s ≈ 16.7 h
            internal_gains_w: 60.0,
        }
    }

    /// A poorly insulated room: loses heat twice as fast.
    pub fn leaky_room() -> Self {
        RoomParams {
            resistance_k_per_w: 0.015,
            ..Self::typical_apartment_room()
        }
    }

    /// A well-insulated new-build room.
    pub fn insulated_room() -> Self {
        RoomParams {
            resistance_k_per_w: 0.050,
            capacitance_j_per_k: 3.0e6,
            internal_gains_w: 60.0,
        }
    }

    /// Thermal time constant R·C.
    pub fn time_constant(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.resistance_k_per_w * self.capacitance_j_per_k)
    }

    /// Steady-state heater power needed to hold `indoor_c` against
    /// `outdoor_c` (zero if gains already suffice).
    pub fn steady_state_power_w(&self, indoor_c: f64, outdoor_c: f64) -> f64 {
        ((indoor_c - outdoor_c) / self.resistance_k_per_w - self.internal_gains_w).max(0.0)
    }
}

/// A room's thermal state.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Room {
    pub params: RoomParams,
    temperature_c: f64,
}

impl Room {
    pub fn new(params: RoomParams, initial_c: f64) -> Self {
        assert!(params.resistance_k_per_w > 0.0);
        assert!(params.capacitance_j_per_k > 0.0);
        Room {
            params,
            temperature_c: initial_c,
        }
    }

    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Advance the room by `dt` with constant `outdoor_c` and constant
    /// heater output `heater_w`. Returns the new temperature.
    pub fn step(&mut self, dt: SimDuration, outdoor_c: f64, heater_w: f64) -> f64 {
        assert!(heater_w >= 0.0, "heater power cannot be negative");
        assert!(!dt.is_negative());
        let p = self.params;
        let t_inf = outdoor_c + p.resistance_k_per_w * (heater_w + p.internal_gains_w);
        let tau = p.resistance_k_per_w * p.capacitance_j_per_k;
        let decay = (-dt.as_secs_f64() / tau).exp();
        self.temperature_c = t_inf + (self.temperature_c - t_inf) * decay;
        self.temperature_c
    }

    /// Instantaneous heat loss to outdoors, W (negative means gaining).
    pub fn loss_w(&self, outdoor_c: f64) -> f64 {
        (self.temperature_c - outdoor_c) / self.params.resistance_k_per_w
    }

    /// The equilibrium temperature under constant conditions.
    pub fn equilibrium_c(&self, outdoor_c: f64, heater_w: f64) -> f64 {
        outdoor_c + self.params.resistance_k_per_w * (heater_w + self.params.internal_gains_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room_at(temp: f64) -> Room {
        Room::new(RoomParams::typical_apartment_room(), temp)
    }

    #[test]
    fn converges_to_equilibrium() {
        let mut r = room_at(10.0);
        let eq = r.equilibrium_c(5.0, 500.0);
        for _ in 0..1000 {
            r.step(SimDuration::HOUR, 5.0, 500.0);
        }
        assert!((r.temperature_c() - eq).abs() < 1e-6);
        // 500 W into a 0.03 K/W room over 5 °C outdoor: eq = 5 + 0.03*560 = 21.8
        assert!((eq - 21.8).abs() < 1e-9);
    }

    #[test]
    fn exact_integration_is_step_size_invariant() {
        let mut coarse = room_at(18.0);
        let mut fine = room_at(18.0);
        coarse.step(SimDuration::from_hours(6), 0.0, 400.0);
        for _ in 0..360 {
            fine.step(SimDuration::MINUTE, 0.0, 400.0);
        }
        assert!(
            (coarse.temperature_c() - fine.temperature_c()).abs() < 1e-9,
            "closed-form integration must not depend on step size"
        );
    }

    #[test]
    fn unheated_room_decays_toward_outdoor_plus_gains() {
        let mut r = room_at(20.0);
        for _ in 0..2000 {
            r.step(SimDuration::HOUR, 2.0, 0.0);
        }
        // Equilibrium = 2 + 0.03*60 = 3.8 °C.
        assert!((r.temperature_c() - 3.8).abs() < 1e-6);
    }

    #[test]
    fn time_constant_magnitude() {
        let tau = RoomParams::typical_apartment_room().time_constant();
        let h = tau.as_hours_f64();
        assert!((10.0..30.0).contains(&h), "τ = {h} h should be realistic");
    }

    #[test]
    fn steady_state_power_matches_qrad_sizing() {
        let p = RoomParams::typical_apartment_room();
        // Holding 20 °C against 5 °C needs ~(15/0.03 - 60) = 440 W — within
        // one 500 W Q.rad, as the paper's deployment assumes.
        let need = p.steady_state_power_w(20.0, 5.0);
        assert!((need - 440.0).abs() < 1e-9);
        assert!(need < 500.0);
        // Freezing conditions exceed a single Q.rad in a leaky room.
        let leaky = RoomParams::leaky_room().steady_state_power_w(20.0, -5.0);
        assert!(leaky > 500.0, "leaky room at -5 °C needs {leaky} W");
    }

    #[test]
    fn steady_state_power_clamps_at_zero() {
        let p = RoomParams::typical_apartment_room();
        assert_eq!(p.steady_state_power_w(15.0, 25.0), 0.0);
    }

    #[test]
    fn loss_balances_heater_at_equilibrium() {
        let mut r = room_at(15.0);
        for _ in 0..2000 {
            r.step(SimDuration::HOUR, 5.0, 300.0);
        }
        let loss = r.loss_w(5.0);
        assert!(
            (loss - (300.0 + 60.0)).abs() < 1e-6,
            "at equilibrium, loss {loss} = heater + gains"
        );
    }

    #[test]
    fn insulated_room_needs_less_power() {
        let a = RoomParams::typical_apartment_room().steady_state_power_w(20.0, 0.0);
        let b = RoomParams::insulated_room().steady_state_power_w(20.0, 0.0);
        assert!(b < a);
    }

    #[test]
    fn zero_duration_step_is_identity() {
        let mut r = room_at(17.3);
        r.step(SimDuration::ZERO, -10.0, 1000.0);
        assert_eq!(r.temperature_c(), 17.3);
    }

    #[test]
    #[should_panic]
    fn negative_heater_power_panics() {
        room_at(20.0).step(SimDuration::HOUR, 5.0, -1.0);
    }
}
