//! Urban heat island (UHI) district model — §III-A / experiment E8.
//!
//! The paper's urban-integration worry: "a broad deployment of DF servers
//! could create or increase the intensity of urban heat island", citing
//! air-conditioner exhaust [10] and always-hot boilers. The counter-
//! argument is that *on-demand* heat delivery ("the heat is only produced
//! according to comfort constraints") minimises waste heat.
//!
//! We model a district as a 2-D grid of surface cells. Each cell carries
//! a temperature **anomaly** θ (K above the rural baseline) governed by
//!
//! ```text
//! dθ/dt = q/(ρ·c_p·h)  −  θ/τ  +  D·∇²θ
//! ```
//!
//! - `q`: anthropogenic *waste* heat flux into the canopy, W/m². Heat
//!   that stays inside a building (serving a comfort request that would
//!   otherwise be served by an electric heater) contributes **zero**
//!   here; only rejected/waste heat counts. This is exactly the paper's
//!   distinction between on-demand DF heating and always-on boilers or
//!   summer-mode e-radiators.
//! - `ρ·c_p·h`: heat capacity of the urban canopy air column.
//! - `τ`: dissipation time constant (radiative cooling + ventilation).
//! - `D`: horizontal eddy-diffusion coefficient.
//!
//! The solver is forward-Euler with a stability guard; the UHI intensity
//! is the mean anomaly over urban cells — the quantity the statistics
//! of Zhou et al. [9] describe.

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Physical parameters of the canopy model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UhiParams {
    /// Cell edge length, m.
    pub cell_size_m: f64,
    /// Effective canopy air-column height, m.
    pub canopy_height_m: f64,
    /// Dissipation time constant, s.
    pub dissipation_tau_s: f64,
    /// Horizontal eddy diffusivity, m²/s.
    pub diffusivity_m2_s: f64,
}

impl UhiParams {
    /// Plausible mid-latitude city values: 100 m cells, 50 m canopy,
    /// ~6 h dissipation, 50 m²/s eddy diffusion.
    pub fn city() -> Self {
        UhiParams {
            cell_size_m: 100.0,
            canopy_height_m: 50.0,
            dissipation_tau_s: 6.0 * 3600.0,
            diffusivity_m2_s: 50.0,
        }
    }

    /// Volumetric heat capacity of the air column per unit area, J/(K·m²).
    fn column_capacity(&self) -> f64 {
        const RHO_AIR: f64 = 1.2; // kg/m³
        const CP_AIR: f64 = 1005.0; // J/(kg·K)
        RHO_AIR * CP_AIR * self.canopy_height_m
    }

    /// Largest stable forward-Euler step for this configuration.
    pub fn max_stable_step(&self) -> SimDuration {
        let diff_limit = self.cell_size_m * self.cell_size_m / (4.0 * self.diffusivity_m2_s);
        let s = diff_limit.min(self.dissipation_tau_s) * 0.5;
        SimDuration::from_secs_f64(s)
    }
}

/// A rectangular district grid of temperature anomalies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistrictGrid {
    params: UhiParams,
    width: usize,
    height: usize,
    /// Temperature anomaly per cell, K.
    theta: Vec<f64>,
    /// Waste-heat flux per cell, W/m².
    flux: Vec<f64>,
    scratch: Vec<f64>,
}

impl DistrictGrid {
    pub fn new(params: UhiParams, width: usize, height: usize) -> Self {
        assert!(width >= 3 && height >= 3, "grid too small for a stencil");
        DistrictGrid {
            params,
            width,
            height,
            theta: vec![0.0; width * height],
            flux: vec![0.0; width * height],
            scratch: vec![0.0; width * height],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Set the waste-heat flux of a cell, W/m².
    pub fn set_flux(&mut self, x: usize, y: usize, w_per_m2: f64) {
        assert!(w_per_m2 >= 0.0, "waste heat flux cannot be negative");
        let i = self.idx(x, y);
        self.flux[i] = w_per_m2;
    }

    /// Add waste heat expressed in watts to a cell (converted to flux).
    pub fn add_waste_watts(&mut self, x: usize, y: usize, watts: f64) {
        assert!(watts >= 0.0);
        let area = self.params.cell_size_m * self.params.cell_size_m;
        let i = self.idx(x, y);
        self.flux[i] += watts / area;
    }

    /// Clear all waste-heat fluxes (call between episodes).
    pub fn clear_flux(&mut self) {
        self.flux.iter_mut().for_each(|f| *f = 0.0);
    }

    pub fn anomaly(&self, x: usize, y: usize) -> f64 {
        self.theta[self.idx(x, y)]
    }

    /// Advance the grid by `dt`, internally sub-stepping to stay stable.
    pub fn step(&mut self, dt: SimDuration) {
        assert!(!dt.is_negative());
        let max_step = self.params.max_stable_step().as_secs_f64();
        let total = dt.as_secs_f64();
        if total == 0.0 {
            return;
        }
        let n_sub = (total / max_step).ceil().max(1.0) as usize;
        let h = total / n_sub as f64;
        for _ in 0..n_sub {
            self.euler_step(h);
        }
    }

    fn euler_step(&mut self, h: f64) {
        let p = self.params;
        let cap = p.column_capacity();
        let d_over_dx2 = p.diffusivity_m2_s / (p.cell_size_m * p.cell_size_m);
        let (w, ht) = (self.width, self.height);
        for y in 0..ht {
            for x in 0..w {
                let i = y * w + x;
                let t = self.theta[i];
                // Neumann boundaries: edge cells mirror inward (the city
                // edge exchanges with rural air through dissipation only).
                let left = self.theta[if x > 0 { i - 1 } else { i + 1 }];
                let right = self.theta[if x + 1 < w { i + 1 } else { i - 1 }];
                let up = self.theta[if y > 0 { i - w } else { i + w }];
                let down = self.theta[if y + 1 < ht { i + w } else { i - w }];
                let lap = left + right + up + down - 4.0 * t;
                let dtheta = self.flux[i] / cap - t / p.dissipation_tau_s + d_over_dx2 * lap;
                self.scratch[i] = t + h * dtheta;
            }
        }
        std::mem::swap(&mut self.theta, &mut self.scratch);
    }

    /// Mean anomaly over all cells — the UHI intensity.
    pub fn uhi_intensity(&self) -> f64 {
        self.theta.iter().sum::<f64>() / self.theta.len() as f64
    }

    /// Maximum anomaly (hot-spot severity).
    pub fn peak_anomaly(&self) -> f64 {
        self.theta.iter().copied().fold(0.0, f64::max)
    }

    /// Steady-state intensity for a uniform flux, from the analytic
    /// balance `θ* = q·τ/(ρ·c_p·h)` (diffusion vanishes when uniform).
    pub fn analytic_uniform_steady_state(&self, flux_w_m2: f64) -> f64 {
        flux_w_m2 * self.params.dissipation_tau_s / self.params.column_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> DistrictGrid {
        DistrictGrid::new(UhiParams::city(), 16, 16)
    }

    #[test]
    fn no_flux_means_no_island() {
        let mut g = grid();
        g.step(SimDuration::from_hours(24));
        assert_eq!(g.uhi_intensity(), 0.0);
    }

    #[test]
    fn uniform_flux_reaches_analytic_steady_state() {
        let mut g = grid();
        let q = 10.0; // W/m² — a realistic anthropogenic flux
        for y in 0..16 {
            for x in 0..16 {
                g.set_flux(x, y, q);
            }
        }
        // Run long past the 6 h dissipation constant.
        g.step(SimDuration::from_hours(72));
        let expected = g.analytic_uniform_steady_state(q);
        let got = g.uhi_intensity();
        assert!(
            (got - expected).abs() / expected < 0.02,
            "got {got}, expected {expected}"
        );
        // Magnitude check: 10 W/m², 6 h tau, 50 m canopy → ~3.6 K.
        assert!((3.0..4.5).contains(&expected), "expected={expected}");
    }

    #[test]
    fn hotspot_diffuses_to_neighbours() {
        let mut g = grid();
        g.add_waste_watts(8, 8, 2_000_000.0); // a 2 MW always-on boiler block
        g.step(SimDuration::from_hours(12));
        let centre = g.anomaly(8, 8);
        let near = g.anomaly(9, 8);
        let far = g.anomaly(15, 15);
        assert!(
            centre > near,
            "centre {centre} hotter than neighbour {near}"
        );
        assert!(near > far, "anomaly decays with distance: {near} vs {far}");
        assert!(centre > 0.1);
    }

    #[test]
    fn anomaly_decays_after_source_removed() {
        let mut g = grid();
        g.add_waste_watts(8, 8, 1_000_000.0);
        g.step(SimDuration::from_hours(12));
        let hot = g.peak_anomaly();
        g.clear_flux();
        g.step(SimDuration::from_hours(24));
        let cooled = g.peak_anomaly();
        assert!(
            cooled < hot * 0.1,
            "after 4 dissipation constants, {cooled} should be well below {hot}"
        );
    }

    #[test]
    fn intensity_scales_linearly_with_flux() {
        let mut a = grid();
        let mut b = grid();
        for y in 0..16 {
            for x in 0..16 {
                a.set_flux(x, y, 5.0);
                b.set_flux(x, y, 10.0);
            }
        }
        a.step(SimDuration::from_hours(48));
        b.step(SimDuration::from_hours(48));
        let ratio = b.uhi_intensity() / a.uhi_intensity();
        assert!((ratio - 2.0).abs() < 0.01, "linear system: ratio {ratio}");
    }

    #[test]
    fn step_size_insensitivity_via_substepping() {
        let mut coarse = grid();
        let mut fine = grid();
        for g in [&mut coarse, &mut fine] {
            g.add_waste_watts(5, 5, 500_000.0);
        }
        coarse.step(SimDuration::from_hours(10));
        for _ in 0..600 {
            fine.step(SimDuration::MINUTE);
        }
        let (c, f) = (coarse.uhi_intensity(), fine.uhi_intensity());
        assert!(
            (c - f).abs() / f.max(1e-9) < 0.05,
            "sub-stepped coarse {c} ≈ fine {f}"
        );
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        DistrictGrid::new(UhiParams::city(), 2, 2);
    }

    #[test]
    #[should_panic]
    fn negative_flux_rejected() {
        grid().set_flux(0, 0, -1.0);
    }
}
