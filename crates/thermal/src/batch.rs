//! Structure-of-arrays batched room kernel — the district-scale fast path.
//!
//! [`super::room::Room`] integrates one 1R1C node exactly, but every
//! `step` call pays an `exp(-Δ/(R·C))` even though the platform ticks
//! thousands of rooms with the *same* Δ at every control period. A
//! [`ThermalBatch`] keeps the whole fleet's thermal state in dense
//! parallel `Vec<f64>` columns and caches the decay factor per room,
//! keyed by the Δ it was computed for: on a fixed control tick the
//! steady-state loop is a pure multiply–add sweep — no transcendentals,
//! no per-room structs, no allocation.
//!
//! The arithmetic is *identical* to [`super::room::Room::step`] —
//! `T ← T∞ + (T − T∞)·exp(−Δ/τ)` with `τ = R·C` and
//! `T∞ = T_out + R·(P_h + P_g)` — and `exp` is deterministic, so cached
//! and uncached steps agree **bit-for-bit**. The scalar reference mode
//! ([`ThermalBatch::set_scalar_reference`]) literally materialises a
//! `Room` and calls `Room::step` per room per step, which is what the
//! platform A/B (`scalar-thermal` feature) and the property tests
//! compare against.
//!
//! Rooms within one tick are independent given the outdoor temperature,
//! so fleets at or above [`ThermalBatch::PAR_THRESHOLD`] rooms fan the
//! sweep across cores with the vendored order-preserving `par_iter`
//! (each chunk owns a disjoint slice of every column; results are
//! written in place, so parallel and serial sweeps are bit-identical).

use crate::room::{Room, RoomParams};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Dense batched thermal state for a fleet of 1R1C rooms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThermalBatch {
    /// Current temperature, °C.
    temp_c: Vec<f64>,
    /// Thermal resistance to outdoors, K/W.
    resistance: Vec<f64>,
    /// Constant internal free gains, W.
    gains_w: Vec<f64>,
    /// Time constant R·C, seconds (recomputed only when params change).
    tau_s: Vec<f64>,
    /// Cached decay factor `exp(-decay_dt_s / tau_s)`.
    decay: Vec<f64>,
    /// The Δ (seconds) the cached decay was computed for; NaN = dirty.
    decay_dt_s: Vec<f64>,
    /// Staged per-room step interval, seconds (0 = no step pending).
    dt_s: Vec<f64>,
    /// Staged per-room heater power, W.
    heater_w: Vec<f64>,
    /// Reference mode: route every step through `Room::step` (exp each
    /// time). Used by the `scalar-thermal` platform A/B.
    scalar_reference: bool,
}

/// One chunk of the batch columns, for the parallel sweep. Every slice
/// covers the same disjoint index range, so chunks are independent.
struct Lane<'a> {
    temp_c: &'a mut [f64],
    decay: &'a mut [f64],
    decay_dt_s: &'a mut [f64],
    dt_s: &'a mut [f64],
    resistance: &'a [f64],
    gains_w: &'a [f64],
    tau_s: &'a [f64],
    heater_w: &'a [f64],
}

impl Lane<'_> {
    /// The tight loop: mul-add only while Δ matches the cached decay.
    fn sweep(&mut self, outdoor_c: f64) {
        for i in 0..self.temp_c.len() {
            let dt = self.dt_s[i];
            if dt <= 0.0 {
                continue;
            }
            self.dt_s[i] = 0.0;
            if dt != self.decay_dt_s[i] {
                self.decay[i] = (-dt / self.tau_s[i]).exp();
                self.decay_dt_s[i] = dt;
            }
            let t_inf = outdoor_c + self.resistance[i] * (self.heater_w[i] + self.gains_w[i]);
            self.temp_c[i] = t_inf + (self.temp_c[i] - t_inf) * self.decay[i];
        }
    }
}

impl ThermalBatch {
    /// Fleet size at which the staged sweep fans across cores. Below
    /// this the serial mul-add loop beats thread-scope overhead.
    pub const PAR_THRESHOLD: usize = 16_384;
    /// Rooms per parallel chunk.
    const PAR_CHUNK: usize = 4_096;

    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        ThermalBatch {
            temp_c: Vec::with_capacity(n),
            resistance: Vec::with_capacity(n),
            gains_w: Vec::with_capacity(n),
            tau_s: Vec::with_capacity(n),
            decay: Vec::with_capacity(n),
            decay_dt_s: Vec::with_capacity(n),
            dt_s: Vec::with_capacity(n),
            heater_w: Vec::with_capacity(n),
            scalar_reference: false,
        }
    }

    /// Route every step through the scalar [`Room::step`] reference
    /// implementation (recomputes `exp` per room per step).
    pub fn set_scalar_reference(&mut self, scalar: bool) {
        self.scalar_reference = scalar;
    }

    pub fn is_scalar_reference(&self) -> bool {
        self.scalar_reference
    }

    /// Add a room; returns its dense index.
    pub fn push(&mut self, params: RoomParams, initial_c: f64) -> usize {
        assert!(params.resistance_k_per_w > 0.0);
        assert!(params.capacitance_j_per_k > 0.0);
        let i = self.temp_c.len();
        self.temp_c.push(initial_c);
        self.resistance.push(params.resistance_k_per_w);
        self.gains_w.push(params.internal_gains_w);
        self.tau_s
            .push(params.resistance_k_per_w * params.capacitance_j_per_k);
        self.decay.push(1.0);
        self.decay_dt_s.push(f64::NAN);
        self.dt_s.push(0.0);
        self.heater_w.push(0.0);
        i
    }

    pub fn len(&self) -> usize {
        self.temp_c.len()
    }

    pub fn is_empty(&self) -> bool {
        self.temp_c.is_empty()
    }

    pub fn temperature_c(&self, i: usize) -> f64 {
        self.temp_c[i]
    }

    pub fn temperatures(&self) -> &[f64] {
        &self.temp_c
    }

    /// Overwrite a room's temperature (tests, scenario setup).
    pub fn set_temperature_c(&mut self, i: usize, c: f64) {
        self.temp_c[i] = c;
    }

    pub fn params(&self, i: usize) -> RoomParams {
        RoomParams {
            resistance_k_per_w: self.resistance[i],
            capacitance_j_per_k: self.tau_s[i] / self.resistance[i],
            internal_gains_w: self.gains_w[i],
        }
    }

    /// Replace a room's thermal parameters; invalidates its decay cache.
    pub fn set_params(&mut self, i: usize, params: RoomParams) {
        assert!(params.resistance_k_per_w > 0.0);
        assert!(params.capacitance_j_per_k > 0.0);
        self.resistance[i] = params.resistance_k_per_w;
        self.gains_w[i] = params.internal_gains_w;
        self.tau_s[i] = params.resistance_k_per_w * params.capacitance_j_per_k;
        self.decay_dt_s[i] = f64::NAN;
    }

    /// Mean temperature across the fleet.
    pub fn mean_temperature_c(&self) -> f64 {
        assert!(!self.is_empty(), "batch has no rooms");
        self.temp_c.iter().sum::<f64>() / self.temp_c.len() as f64
    }

    /// Stage a pending step for room `i`: advance it by `dt` with
    /// heater power `heater_w` at the next [`ThermalBatch::step_staged`].
    #[inline]
    pub fn stage(&mut self, i: usize, dt: SimDuration, heater_w: f64) {
        debug_assert!(!dt.is_negative());
        assert!(heater_w >= 0.0, "heater power cannot be negative");
        self.dt_s[i] = dt.as_secs_f64();
        self.heater_w[i] = heater_w;
    }

    /// Step every staged room against a common outdoor temperature, in
    /// one sweep over the dense columns. Rooms with no staged Δ are
    /// untouched. Clears the staging buffers.
    pub fn step_staged(&mut self, outdoor_c: f64) {
        if self.scalar_reference {
            for i in 0..self.temp_c.len() {
                let dt = self.dt_s[i];
                if dt <= 0.0 {
                    continue;
                }
                self.dt_s[i] = 0.0;
                self.temp_c[i] =
                    self.step_room_scalar(i, SimDuration::from_secs_f64(dt), outdoor_c);
            }
            return;
        }
        if self.temp_c.len() >= Self::PAR_THRESHOLD {
            let _: Vec<()> = self
                .lanes()
                .into_par_iter()
                .map(|mut lane| lane.sweep(outdoor_c))
                .collect();
        } else {
            let mut lane = Lane {
                temp_c: &mut self.temp_c,
                decay: &mut self.decay,
                decay_dt_s: &mut self.decay_dt_s,
                dt_s: &mut self.dt_s,
                resistance: &self.resistance,
                gains_w: &self.gains_w,
                tau_s: &self.tau_s,
                heater_w: &self.heater_w,
            };
            lane.sweep(outdoor_c);
        }
    }

    /// Step a single room immediately (the off-cycle wake path). The
    /// per-room decay cache still applies, so a worker woken twice with
    /// the same Δ pays `exp` once. Returns the new temperature.
    pub fn step_one(&mut self, i: usize, dt: SimDuration, outdoor_c: f64, heater_w: f64) -> f64 {
        assert!(heater_w >= 0.0, "heater power cannot be negative");
        assert!(!dt.is_negative());
        let dt_s = dt.as_secs_f64();
        if dt_s <= 0.0 {
            return self.temp_c[i];
        }
        if self.scalar_reference {
            self.temp_c[i] = self.step_room_scalar_with(i, dt, outdoor_c, heater_w);
            return self.temp_c[i];
        }
        if dt_s != self.decay_dt_s[i] {
            self.decay[i] = (-dt_s / self.tau_s[i]).exp();
            self.decay_dt_s[i] = dt_s;
        }
        let t_inf = outdoor_c + self.resistance[i] * (heater_w + self.gains_w[i]);
        self.temp_c[i] = t_inf + (self.temp_c[i] - t_inf) * self.decay[i];
        self.temp_c[i]
    }

    /// Step *all* rooms by a uniform Δ with per-room heater powers —
    /// the microbench/property-test entry point, and the tightest form
    /// of the kernel: one fused pass, no staging-buffer traffic. The
    /// arithmetic and decay cache are exactly those of the staged
    /// sweep, so the two paths stay bit-identical.
    pub fn step_uniform(&mut self, dt: SimDuration, outdoor_c: f64, powers: &[f64]) {
        assert_eq!(powers.len(), self.len(), "power vector size mismatch");
        assert!(!dt.is_negative());
        if self.scalar_reference {
            for (i, &p) in powers.iter().enumerate() {
                self.stage(i, dt, p);
            }
            self.step_staged(outdoor_c);
            return;
        }
        let dt_s = dt.as_secs_f64();
        if dt_s <= 0.0 {
            return;
        }
        for (i, &p) in powers.iter().enumerate() {
            assert!(p >= 0.0, "heater power cannot be negative");
            if dt_s != self.decay_dt_s[i] {
                self.decay[i] = (-dt_s / self.tau_s[i]).exp();
                self.decay_dt_s[i] = dt_s;
            }
            let t_inf = outdoor_c + self.resistance[i] * (p + self.gains_w[i]);
            self.temp_c[i] = t_inf + (self.temp_c[i] - t_inf) * self.decay[i];
        }
    }

    /// The scalar reference: build a `Room` and call `Room::step` with
    /// the staged inputs.
    fn step_room_scalar(&self, i: usize, dt: SimDuration, outdoor_c: f64) -> f64 {
        self.step_room_scalar_with(i, dt, outdoor_c, self.heater_w[i])
    }

    fn step_room_scalar_with(
        &self,
        i: usize,
        dt: SimDuration,
        outdoor_c: f64,
        heater_w: f64,
    ) -> f64 {
        let mut room = Room::new(self.params(i), self.temp_c[i]);
        room.step(dt, outdoor_c, heater_w)
    }

    /// Split every column into aligned disjoint chunks for the parallel
    /// sweep.
    fn lanes(&mut self) -> Vec<Lane<'_>> {
        let mut lanes = Vec::with_capacity(self.temp_c.len().div_ceil(Self::PAR_CHUNK));
        let mut temp = self.temp_c.as_mut_slice();
        let mut decay = self.decay.as_mut_slice();
        let mut decay_dt = self.decay_dt_s.as_mut_slice();
        let mut dt = self.dt_s.as_mut_slice();
        let mut res = self.resistance.as_slice();
        let mut gains = self.gains_w.as_slice();
        let mut tau = self.tau_s.as_slice();
        let mut heat = self.heater_w.as_slice();
        while !temp.is_empty() {
            let n = temp.len().min(Self::PAR_CHUNK);
            let (t, t_rest) = temp.split_at_mut(n);
            let (d, d_rest) = decay.split_at_mut(n);
            let (dd, dd_rest) = decay_dt.split_at_mut(n);
            let (s, s_rest) = dt.split_at_mut(n);
            let (r, r_rest) = res.split_at(n);
            let (g, g_rest) = gains.split_at(n);
            let (ta, ta_rest) = tau.split_at(n);
            let (h, h_rest) = heat.split_at(n);
            lanes.push(Lane {
                temp_c: t,
                decay: d,
                decay_dt_s: dd,
                dt_s: s,
                resistance: r,
                gains_w: g,
                tau_s: ta,
                heater_w: h,
            });
            temp = t_rest;
            decay = d_rest;
            decay_dt = dd_rest;
            dt = s_rest;
            res = r_rest;
            gains = g_rest;
            tau = ta_rest;
            heat = h_rest;
        }
        lanes
    }
}

/// All eight columns checkpoint **verbatim** — including the decay
/// cache and its NaN "dirty" sentinels (`f64` travels as raw bits, so
/// NaN survives) — plus the reference-mode flag. Restoring mid-run must
/// not silently invalidate the cache: a recomputed `exp` is bit-equal
/// to the cached value, but keeping the bytes identical makes snapshot
/// equality checks exact rather than argued.
impl simcore::snapshot::Snapshot for ThermalBatch {
    fn encode(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.temp_c.encode(w);
        self.resistance.encode(w);
        self.gains_w.encode(w);
        self.tau_s.encode(w);
        self.decay.encode(w);
        self.decay_dt_s.encode(w);
        self.dt_s.encode(w);
        self.heater_w.encode(w);
        w.put_bool(self.scalar_reference);
    }

    fn decode(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        let temp_c = Vec::<f64>::decode(r)?;
        let resistance = Vec::<f64>::decode(r)?;
        let gains_w = Vec::<f64>::decode(r)?;
        let tau_s = Vec::<f64>::decode(r)?;
        let decay = Vec::<f64>::decode(r)?;
        let decay_dt_s = Vec::<f64>::decode(r)?;
        let dt_s = Vec::<f64>::decode(r)?;
        let heater_w = Vec::<f64>::decode(r)?;
        let scalar_reference = r.take_bool()?;
        let n = temp_c.len();
        if [
            resistance.len(),
            gains_w.len(),
            tau_s.len(),
            decay.len(),
            decay_dt_s.len(),
            dt_s.len(),
            heater_w.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(simcore::snapshot::SnapshotError::Corrupt(
                "thermal batch: column lengths disagree".into(),
            ));
        }
        Ok(ThermalBatch {
            temp_c,
            resistance,
            gains_w,
            tau_s,
            decay,
            decay_dt_s,
            dt_s,
            heater_w,
            scalar_reference,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(r: f64, c: f64, gains: f64) -> RoomParams {
        RoomParams {
            resistance_k_per_w: r,
            capacitance_j_per_k: c,
            internal_gains_w: gains,
        }
    }

    #[test]
    fn snapshot_roundtrip_continues_bit_identically() {
        use simcore::snapshot::{Snapshot, SnapshotReader, SnapshotWriter};
        let mut b = ThermalBatch::default();
        for i in 0..5 {
            b.push(params(0.005, 4.0e6, 100.0 + i as f64), 18.0 + i as f64);
        }
        // Warm the decay cache on some rooms, leave others dirty (NaN).
        for i in 0..3 {
            b.stage(i, SimDuration::from_secs(600), 500.0);
        }
        b.step_staged(-5.0);
        let mut w = SnapshotWriter::new();
        b.encode(&mut w);
        let bytes = w.into_bytes();
        let mut back = ThermalBatch::decode(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(back.temperatures(), b.temperatures());
        // Continue both: cached-decay and restored paths must agree to
        // the bit, across cached and dirty rooms alike.
        for step in 0..10 {
            for i in 0..5 {
                let dt = SimDuration::from_secs(if step % 3 == 0 { 600 } else { 900 });
                b.stage(i, dt, 250.0 * i as f64);
                back.stage(i, dt, 250.0 * i as f64);
            }
            b.step_staged(-2.0);
            back.step_staged(-2.0);
            for i in 0..5 {
                assert_eq!(
                    b.temperature_c(i).to_bits(),
                    back.temperature_c(i).to_bits(),
                    "room {i} diverged after restore"
                );
            }
        }
        for cut in 0..bytes.len() {
            assert!(ThermalBatch::decode(&mut SnapshotReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn batch_step_matches_room_step_bitwise() {
        let p = RoomParams::typical_apartment_room();
        let mut batch = ThermalBatch::new();
        let i = batch.push(p, 17.0);
        let mut room = Room::new(p, 17.0);
        let dt = SimDuration::from_secs(600);
        for k in 0..500 {
            let power = (k % 7) as f64 * 70.0;
            let outdoor = 5.0 + (k % 11) as f64;
            room.step(dt, outdoor, power);
            batch.step_one(i, dt, outdoor, power);
            assert_eq!(
                batch.temperature_c(i).to_bits(),
                room.temperature_c().to_bits(),
                "diverged at step {k}"
            );
        }
    }

    #[test]
    fn staged_sweep_matches_per_room_steps() {
        let mut a = ThermalBatch::new();
        let mut b = ThermalBatch::new();
        for i in 0..64 {
            let p = params(0.01 + i as f64 * 0.001, 1e6 + i as f64 * 1e4, 60.0);
            a.push(p, 14.0 + i as f64 * 0.1);
            b.push(p, 14.0 + i as f64 * 0.1);
        }
        let dt = SimDuration::from_secs(600);
        for k in 0..50 {
            let outdoor = -3.0 + k as f64 * 0.2;
            for i in 0..64 {
                let power = (i * k % 500) as f64;
                a.stage(i, dt, power);
                b.step_one(i, dt, outdoor, power);
            }
            a.step_staged(outdoor);
        }
        for i in 0..64 {
            assert_eq!(a.temperature_c(i).to_bits(), b.temperature_c(i).to_bits());
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // Above PAR_THRESHOLD the sweep fans across cores; rooms are
        // independent, so the result must be bit-identical to stepping
        // each room alone.
        let n = ThermalBatch::PAR_THRESHOLD + 1_000;
        let mut par = ThermalBatch::with_capacity(n);
        let mut one = ThermalBatch::with_capacity(n);
        for i in 0..n {
            let p = params(0.01 + (i % 50) as f64 * 1e-3, 1e6, (i % 3) as f64 * 40.0);
            let t0 = 12.0 + (i % 90) as f64 * 0.1;
            par.push(p, t0);
            one.push(p, t0);
        }
        let dt = SimDuration::from_secs(600);
        for k in 0..3 {
            let outdoor = 2.0 + k as f64;
            for i in 0..n {
                let power = ((i + k) % 500) as f64;
                par.stage(i, dt, power);
                one.step_one(i, dt, outdoor, power);
            }
            par.step_staged(outdoor);
        }
        for i in 0..n {
            assert_eq!(
                par.temperature_c(i).to_bits(),
                one.temperature_c(i).to_bits(),
                "room {i} diverged under the parallel sweep"
            );
        }
    }

    #[test]
    fn scalar_reference_mode_matches_batched() {
        let mut fast = ThermalBatch::new();
        let mut refr = ThermalBatch::new();
        refr.set_scalar_reference(true);
        for i in 0..32 {
            let p = params(0.02 + i as f64 * 0.002, 2e6, 50.0);
            fast.push(p, 16.0);
            refr.push(p, 16.0);
        }
        let powers: Vec<f64> = (0..32).map(|i| (i * 37 % 500) as f64).collect();
        for k in 0..200 {
            // Alternate Δ to force cache invalidation on the fast path.
            let dt = SimDuration::from_secs(if k % 3 == 0 { 300 } else { 600 });
            fast.step_uniform(dt, 4.0, &powers);
            refr.step_uniform(dt, 4.0, &powers);
        }
        for i in 0..32 {
            assert_eq!(
                fast.temperature_c(i).to_bits(),
                refr.temperature_c(i).to_bits()
            );
        }
    }

    #[test]
    fn set_params_invalidates_decay_cache() {
        let mut batch = ThermalBatch::new();
        let i = batch.push(RoomParams::typical_apartment_room(), 18.0);
        let dt = SimDuration::from_secs(600);
        batch.step_one(i, dt, 5.0, 200.0);
        // Same Δ, new params: the cached decay must not be reused.
        batch.set_params(i, RoomParams::leaky_room());
        let mut room = Room::new(RoomParams::leaky_room(), batch.temperature_c(i));
        room.step(dt, 5.0, 200.0);
        batch.step_one(i, dt, 5.0, 200.0);
        assert_eq!(
            batch.temperature_c(i).to_bits(),
            room.temperature_c().to_bits()
        );
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut batch = ThermalBatch::new();
        let i = batch.push(RoomParams::typical_apartment_room(), 17.3);
        batch.step_one(i, SimDuration::ZERO, -10.0, 1000.0);
        assert_eq!(batch.temperature_c(i), 17.3);
        batch.stage(i, SimDuration::ZERO, 1000.0);
        batch.step_staged(-10.0);
        assert_eq!(batch.temperature_c(i), 17.3);
    }

    #[test]
    #[should_panic]
    fn negative_heater_power_panics() {
        let mut batch = ThermalBatch::new();
        let i = batch.push(RoomParams::typical_apartment_room(), 17.0);
        batch.step_one(i, SimDuration::HOUR, 5.0, -1.0);
    }

    proptest! {
        /// Batched kernel ≡ scalar `Room::step` over randomized R, C,
        /// gains, outdoor, heater power, and step count — bit-identical.
        #[test]
        fn prop_batch_equals_scalar_room(
            r in 0.005f64..0.08,
            c in 5e5f64..5e6,
            gains in 0.0f64..200.0,
            start in -5.0f64..35.0,
            outdoor in -20.0f64..35.0,
            powers in proptest::collection::vec(0.0f64..1500.0, 1..40),
            dt_secs in 1.0f64..86_400.0,
        ) {
            let p = params(r, c, gains);
            let mut batch = ThermalBatch::new();
            let i = batch.push(p, start);
            let mut room = Room::new(p, start);
            let dt = SimDuration::from_secs_f64(dt_secs);
            for &power in &powers {
                room.step(dt, outdoor, power);
                batch.step_one(i, dt, outdoor, power);
                prop_assert_eq!(
                    batch.temperature_c(i).to_bits(),
                    room.temperature_c().to_bits()
                );
            }
        }

        /// The decay cache must invalidate when Δ changes mid-run: steps
        /// alternate between two intervals and must still match the
        /// scalar reference exactly.
        #[test]
        fn prop_decay_cache_survives_dt_changes(
            r in 0.005f64..0.08,
            c in 5e5f64..5e6,
            start in 0.0f64..30.0,
            outdoor in -15.0f64..30.0,
            dt_a in 1.0f64..7_200.0,
            dt_b in 1.0f64..7_200.0,
            flips in proptest::collection::vec(0u32..2, 2..30),
        ) {
            let p = params(r, c, 60.0);
            let mut batch = ThermalBatch::new();
            let i = batch.push(p, start);
            let mut room = Room::new(p, start);
            for (k, &flip) in flips.iter().enumerate() {
                let dt = SimDuration::from_secs_f64(if flip == 0 { dt_a } else { dt_b });
                let power = (k % 4) as f64 * 125.0;
                room.step(dt, outdoor, power);
                batch.step_one(i, dt, outdoor, power);
                prop_assert_eq!(
                    batch.temperature_c(i).to_bits(),
                    room.temperature_c().to_bits()
                );
            }
        }

        /// Staged sweeps with heterogeneous per-room Δ match per-room
        /// scalar stepping (the mixed wake-path + control-tick case).
        #[test]
        fn prop_staged_sweep_with_mixed_dt(
            n in 1usize..50,
            outdoor in -15.0f64..30.0,
            dt_base in 60.0f64..3_600.0,
        ) {
            let mut batch = ThermalBatch::new();
            let mut rooms = Vec::new();
            for i in 0..n {
                let p = params(0.01 + (i % 9) as f64 * 0.005, 1e6 + (i % 5) as f64 * 3e5, 60.0);
                let t0 = 13.0 + i as f64 * 0.3;
                batch.push(p, t0);
                rooms.push(Room::new(p, t0));
            }
            for round in 0..4u64 {
                for (i, room) in rooms.iter_mut().enumerate() {
                    // Some rooms skip a round (dt accumulates), like
                    // workers woken off-cycle.
                    if (i as u64 + round).is_multiple_of(3) && round != 3 {
                        continue;
                    }
                    let mult = 1 + (i as u64 + round) % 3;
                    let dt = SimDuration::from_secs_f64(dt_base * mult as f64);
                    let power = ((i as u64 * 97 + round * 31) % 500) as f64;
                    batch.stage(i, dt, power);
                    room.step(dt, outdoor, power);
                }
                batch.step_staged(outdoor);
            }
            for (i, room) in rooms.iter().enumerate() {
                prop_assert_eq!(
                    batch.temperature_c(i).to_bits(),
                    room.temperature_c().to_bits()
                );
            }
        }
    }
}
