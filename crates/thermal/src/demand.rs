//! Aggregate heat-demand synthesis (thermosensitivity).
//!
//! §III-C: "Several studies reveal that the thermosensitivity is in
//! general correlated to the external weather." We model a housing
//! stock's aggregate heat demand as a piecewise-linear function of
//! outdoor temperature (the classic *thermosensitivity* model used by
//! French grid operators), modulated by an occupancy profile and noise:
//!
//! ```text
//! D(t) = n_homes · slope_w_per_k · max(0, base_c − T_out(t)) · occ(t) · (1 + ε)
//! ```
//!
//! The `predict` crate recovers `slope` and `base` from traces generated
//! here (experiment E7); the `df3_core` hybrid platform uses the demand
//! to size available DF compute capacity (experiment E6).

use crate::weather::Weather;

use serde::{Deserialize, Serialize};
use simcore::dist::normal;
use simcore::time::{SimDuration, SimTime};
use simcore::RngStreams;

/// Parameters of the aggregate-demand model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DemandModel {
    /// Number of homes in the stock.
    pub n_homes: usize,
    /// Per-home thermosensitivity below the heating threshold, W/K.
    pub slope_w_per_k: f64,
    /// Heating threshold: no demand above this outdoor temperature, °C.
    pub base_c: f64,
    /// Relative noise (lognormal-ish multiplicative, std of ε).
    pub noise_rel_std: f64,
}

impl DemandModel {
    /// Per-home thermosensitivity of ~55 W/K with an 16 °C threshold —
    /// scaled-down residential values consistent with the Q.rad sizing
    /// (one room's loss of 1/0.03 ≈ 33 W/K plus hot water and envelope).
    pub fn residential(n_homes: usize) -> Self {
        DemandModel {
            n_homes,
            slope_w_per_k: 55.0,
            base_c: 16.0,
            noise_rel_std: 0.08,
        }
    }

    /// Expected (noise-free) demand at outdoor temperature `t_out`, W,
    /// with occupancy factor `occ ∈ [0,1]` applied.
    pub fn expected_w(&self, t_out_c: f64, occ: f64) -> f64 {
        self.n_homes as f64 * self.slope_w_per_k * (self.base_c - t_out_c).max(0.0) * occ
    }
}

/// Daily occupancy profile: demand is higher when residents are home and
/// awake (morning and evening peaks — the shape of residential heating).
pub fn occupancy_factor(t: SimTime) -> f64 {
    let h = t.hour_of_day();
    if (6.0..9.0).contains(&h) {
        1.0 // morning peak
    } else if (9.0..17.0).contains(&h) {
        0.6 // workday trough
    } else if (17.0..23.0).contains(&h) {
        1.0 // evening peak
    } else {
        0.45 // night setback
    }
}

/// One sample of a synthetic demand trace.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DemandSample {
    pub t: SimTime,
    /// Outdoor temperature at the sample, °C.
    pub outdoor_c: f64,
    /// Aggregate demand, W.
    pub demand_w: f64,
}

/// Generate a demand trace at `step` resolution across the weather span.
pub fn generate_trace(
    model: DemandModel,
    weather: &Weather,
    step: SimDuration,
    streams: &RngStreams,
) -> Vec<DemandSample> {
    assert!(step > SimDuration::ZERO);
    let mut rng = streams.stream("heat-demand");
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + weather.span();
    while t <= end {
        let t_out = weather.outdoor_c(t);
        let occ = occupancy_factor(t);
        let eps = normal(&mut rng, 0.0, model.noise_rel_std);
        let demand = (model.expected_w(t_out, occ) * (1.0 + eps)).max(0.0);
        out.push(DemandSample {
            t,
            outdoor_c: t_out,
            demand_w: demand,
        });
        t += step;
    }
    out
}

/// Peak demand of a trace, W.
pub fn peak_w(trace: &[DemandSample]) -> f64 {
    trace.iter().map(|s| s.demand_w).fold(0.0, f64::max)
}

/// Mean demand of a trace, W.
pub fn mean_w(trace: &[DemandSample]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().map(|s| s.demand_w).sum::<f64>() / trace.len() as f64
}

/// Check a demand sample stream for the obvious invariant violations.
/// Used by property tests and the trace importer.
pub fn validate(trace: &[DemandSample]) -> Result<(), String> {
    let mut last = None;
    for (i, s) in trace.iter().enumerate() {
        if s.demand_w < 0.0 {
            return Err(format!("sample {i}: negative demand {}", s.demand_w));
        }
        if s.demand_w.is_nan() || s.outdoor_c.is_nan() {
            return Err(format!("sample {i}: NaN"));
        }
        if let Some(prev) = last {
            if s.t < prev {
                return Err(format!("sample {i}: time goes backwards"));
            }
        }
        last = Some(s.t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weather::WeatherConfig;
    use simcore::time::Calendar;

    fn trace_for_year() -> Vec<DemandSample> {
        let streams = RngStreams::new(7);
        let w = Weather::generate(
            WeatherConfig::paris(Calendar::JANUARY_EPOCH),
            SimDuration::YEAR,
            &streams,
        );
        generate_trace(
            DemandModel::residential(500),
            &w,
            SimDuration::HOUR,
            &streams,
        )
    }

    #[test]
    fn winter_demand_dwarfs_summer() {
        let trace = trace_for_year();
        let jan: f64 = trace
            .iter()
            .filter(|s| s.t.day_index() < 31)
            .map(|s| s.demand_w)
            .sum();
        let jul: f64 = trace
            .iter()
            .filter(|s| (181..212).contains(&s.t.day_index()))
            .map(|s| s.demand_w)
            .sum();
        assert!(jan > 5.0 * jul.max(1.0), "jan={jan:.0} jul={jul:.0}");
    }

    #[test]
    fn demand_is_thermosensitive() {
        // Colder samples should have systematically higher demand.
        let trace = trace_for_year();
        let cold: Vec<f64> = trace
            .iter()
            .filter(|s| s.outdoor_c < 5.0)
            .map(|s| s.demand_w)
            .collect();
        let mild: Vec<f64> = trace
            .iter()
            .filter(|s| (10.0..15.0).contains(&s.outdoor_c))
            .map(|s| s.demand_w)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&cold) > 1.5 * mean(&mild));
    }

    #[test]
    fn occupancy_shapes_the_day() {
        assert_eq!(
            occupancy_factor(SimTime::ZERO + SimDuration::from_hours(7)),
            1.0
        );
        assert!(occupancy_factor(SimTime::ZERO + SimDuration::from_hours(12)) < 1.0);
        assert!(occupancy_factor(SimTime::ZERO + SimDuration::from_hours(2)) < 0.5);
    }

    #[test]
    fn expected_w_clamps_above_base() {
        let m = DemandModel::residential(100);
        assert_eq!(m.expected_w(20.0, 1.0), 0.0);
        assert!(m.expected_w(0.0, 1.0) > 0.0);
        // Linear in deficit.
        let a = m.expected_w(6.0, 1.0);
        let b = m.expected_w(-4.0, 1.0);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trace_validates() {
        let trace = trace_for_year();
        assert!(validate(&trace).is_ok());
        assert!(peak_w(&trace) > mean_w(&trace));
    }

    #[test]
    fn validate_catches_negative() {
        let mut trace = trace_for_year();
        trace[10].demand_w = -5.0;
        assert!(validate(&trace).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = trace_for_year();
        let b = trace_for_year();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[100].demand_w, b[100].demand_w);
    }
}
