//! Comfort accounting.
//!
//! §III-A: "with DF servers, we can reach the same level of comfort than
//! with other heating systems (See Figure 4 for the average temperature
//! in room heated by Qarnot heater in winter)." Comfort here is measured
//! as (a) the monthly mean temperature series of Figure 4 and (b) the
//! fraction of occupied time the room stays inside a comfort band, plus
//! the degree-hour deficit when it does not.

use serde::{Deserialize, Serialize};
use simcore::metrics::Summary;
use simcore::time::{SimDuration, SimTime};

/// Streaming comfort statistics over a room-temperature signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComfortStats {
    /// Comfort band lower edge, °C.
    pub band_lo_c: f64,
    /// Comfort band upper edge, °C.
    pub band_hi_c: f64,
    in_band_s: f64,
    total_s: f64,
    /// Degree-hours spent below the band (severity-weighted discomfort).
    cold_degree_hours: f64,
    /// Degree-hours spent above the band (overheating — relevant to the
    /// §III-A waste-heat discussion).
    hot_degree_hours: f64,
    temps: Summary,
    last: Option<(SimTime, f64)>,
}

impl ComfortStats {
    /// The comfort band used by the experiment suite, 18–25 °C — wide
    /// enough to cover night setback, tight enough to flag failures.
    pub fn standard() -> Self {
        Self::new(18.0, 25.0)
    }

    pub fn new(band_lo_c: f64, band_hi_c: f64) -> Self {
        assert!(band_hi_c > band_lo_c);
        ComfortStats {
            band_lo_c,
            band_hi_c,
            in_band_s: 0.0,
            total_s: 0.0,
            cold_degree_hours: 0.0,
            hot_degree_hours: 0.0,
            temps: Summary::new(),
            last: None,
        }
    }

    /// Record the room temperature at `t`. Time between consecutive
    /// samples is attributed to the *earlier* sample's temperature
    /// (piecewise-constant interpretation).
    pub fn sample(&mut self, t: SimTime, temp_c: f64) {
        if let Some((t0, v0)) = self.last {
            assert!(t >= t0, "comfort samples out of order");
            let dt_s = (t - t0).as_secs_f64();
            let dt_h = dt_s / 3600.0;
            self.total_s += dt_s;
            if v0 >= self.band_lo_c && v0 <= self.band_hi_c {
                self.in_band_s += dt_s;
            } else if v0 < self.band_lo_c {
                self.cold_degree_hours += (self.band_lo_c - v0) * dt_h;
            } else {
                self.hot_degree_hours += (v0 - self.band_hi_c) * dt_h;
            }
        }
        self.temps.observe(temp_c);
        self.last = Some((t, temp_c));
    }

    /// Fraction of observed time inside the band, in `[0, 1]`.
    pub fn in_band_fraction(&self) -> f64 {
        if self.total_s == 0.0 {
            return 0.0;
        }
        self.in_band_s / self.total_s
    }

    pub fn cold_degree_hours(&self) -> f64 {
        self.cold_degree_hours
    }

    pub fn hot_degree_hours(&self) -> f64 {
        self.hot_degree_hours
    }

    /// Summary of sampled temperatures (mean is the Figure 4 quantity).
    pub fn temperatures(&self) -> &Summary {
        &self.temps
    }

    /// Observation window covered so far.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.total_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: i64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(h)
    }

    #[test]
    fn in_band_fraction_piecewise() {
        let mut c = ComfortStats::new(18.0, 25.0);
        c.sample(t(0), 20.0); // in band for [0,1)
        c.sample(t(1), 16.0); // below for [1,3)
        c.sample(t(3), 21.0); // in band for [3,4)
        c.sample(t(4), 21.0);
        assert!((c.in_band_fraction() - 0.5).abs() < 1e-12);
        // Cold deficit: 2 K × 2 h = 4 degree-hours.
        assert!((c.cold_degree_hours() - 4.0).abs() < 1e-12);
        assert_eq!(c.hot_degree_hours(), 0.0);
    }

    #[test]
    fn hot_hours_accumulate() {
        let mut c = ComfortStats::new(18.0, 25.0);
        c.sample(t(0), 27.0);
        c.sample(t(2), 20.0);
        assert!((c.hot_degree_hours() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let c = ComfortStats::standard();
        assert_eq!(c.in_band_fraction(), 0.0);
        assert_eq!(c.window(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_has_no_duration() {
        let mut c = ComfortStats::standard();
        c.sample(t(5), 20.0);
        assert_eq!(c.in_band_fraction(), 0.0);
        assert_eq!(c.temperatures().count(), 1);
    }

    #[test]
    fn mean_temperature_tracks_samples() {
        let mut c = ComfortStats::standard();
        for temp in [19.0, 20.0, 21.0] {
            c.sample(t(0), temp);
        }
        assert!((c.temperatures().mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_order_samples_panic() {
        let mut c = ComfortStats::standard();
        c.sample(t(2), 20.0);
        c.sample(t(1), 20.0);
    }
}
